#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== build (examples) =="
cargo build --workspace --examples

echo "== test (workspace) =="
cargo test --workspace -q

echo "== rustdoc (no-deps) =="
cargo doc --workspace --no-deps -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt (check) =="
cargo fmt --all -- --check

echo "== swctl (design x lang) compatibility matrix =="
# One tiny region per legal pair; illegal pairs (the log-free native
# model off eADR-class designs) must be rejected with exit code 2.
SWCTL=target/release/swctl
usage=$({ "$SWCTL" 2>&1 || true; })
designs=$(sed -n 's/^designs: //p' <<<"$usage")
langs=$(sed -n 's/^langs: //p' <<<"$usage")
test -n "$designs" && test -n "$langs"
for design in $designs; do
  for lang in $langs; do
    status=0
    "$SWCTL" run queue --lang "$lang" --design "$design" \
      --threads 1 --regions 1 --ops 1 >/dev/null 2>&1 || status=$?
    if [ "$lang" = native ] && [ "$design" != eadr ]; then
      if [ "$status" != 2 ]; then
        echo "ci: $lang on $design exited $status, expected rejection with 2" >&2
        exit 1
      fi
    elif [ "$status" != 0 ]; then
      echo "ci: $lang on $design exited $status, expected 0" >&2
      exit 1
    fi
  done
done
echo "compatibility matrix ok"

echo "== swctl faults (fixed-seed injection smoke) =="
# Deterministic campaign: every injected fault (including the bitflip
# class — checksum corruption) must be detected at its exact location,
# and any Strict rejection of an uninjected control image would fail the
# whole campaign (zero false positives).
faults_out=$("$SWCTL" faults queue --lang txn --design strandweaver \
  --threads 2 --regions 16 --ops 2 --rounds 9 --seed 42 --json)
if ! grep -q '"fully_detected":true' <<<"$faults_out"; then
  echo "ci: fault campaign missed an injection: $faults_out" >&2
  exit 1
fi
if ! grep -q '"class":"bitflip","injected":3,"detected":3' <<<"$faults_out"; then
  echo "ci: bitflip (checksum corruption) tally unexpected: $faults_out" >&2
  exit 1
fi
echo "fault smoke ok"

echo "== swctl faults --heap (allocator-metadata injection smoke) =="
# Same classes aimed at the allocator's journal slots: tears must stay
# benign, corruption/poison must Strict-reject with exact (pool, slot)
# location and Salvage-quarantine exactly the damaged pool.
heap_faults_out=$("$SWCTL" faults queue --heap --lang txn --design strandweaver \
  --threads 2 --regions 16 --ops 2 --rounds 9 --seed 42 --json)
for probe in '"fully_detected":true' '"class":"bitflip","injected":3,"detected":3' \
             '"alloc_faults.detected":9'; do
  if ! grep -q "$probe" <<<"$heap_faults_out"; then
    echo "ci: heap fault campaign: expected $probe in: $heap_faults_out" >&2
    exit 1
  fi
done
echo "heap fault smoke ok"

echo "== swctl heap --verify (allocator crash/reclaim smoke) =="
# Fixed-seed churn -> crash -> recover -> reclaim loop on the log-free
# native model (eADR), where only the root sweep stands between a crash
# and a leak: every rooted block must survive live (use-after-free
# check), every unrooted dynamic block must be reclaimed, and a Strict
# recovery of each un-injected crash image doubles as the false-positive
# control. The seed is pinned so the leak count is a known quantity.
heap_smoke_out=$("$SWCTL" heap hashmap --verify --lang native --design eadr \
  --threads 2 --regions 40 --ops 2 --rounds 40 --seed 7 --json)
for probe in '"zero_leaks":true' '"reclaimed_blocks":20' '"rounds":40'; do
  if ! grep -q "$probe" <<<"$heap_smoke_out"; then
    echo "ci: allocator smoke: expected $probe in: $heap_smoke_out" >&2
    exit 1
  fi
done
echo "allocator smoke ok (20 leaked blocks reclaimed, zero remain)"

echo "== figures bit-identical to committed outputs =="
# The allocator migration must not move a single byte of the paper
# artifacts at the pinned CI scale; expected/ holds the committed
# outputs (regenerate with the same env + redirect if a change is ever
# intended, and say so in the PR).
figs_env=(SW_BENCH_THREADS=2 SW_BENCH_REGIONS=24 SW_BENCH_OPS_PER_REGION=2)
for target in fig7 fig8 fig9 fig10 table2 summary; do
  diff expected/$target.txt <(env "${figs_env[@]}" "$SWCTL" "$target") \
    || { echo "ci: $target drifted from expected/$target.txt" >&2; exit 1; }
done
echo "figures bit-identical"

echo "== swctl chaos (fixed-seed online-fault smoke) =="
# Deterministic online-fault campaign: every device-fault class must fire
# (transient write failures, permanent media errors, read poison), at
# least one retry must heal and one line must be remapped, both machine
# checks must be delivered, and the persisted state must show zero silent
# corruptions with every recovery leg reconverging.
chaos_out=$("$SWCTL" chaos queue --lang txn --design strandweaver \
  --threads 2 --regions 24 --ops 2 --rounds 3 --seed 1 --json)
chaos_field() { sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p" <<<"$chaos_out"; }
for k in faults.online.transient_failures faults.online.retries_succeeded \
         faults.online.permanent_errors faults.online.lines_remapped \
         faults.online.reads_poisoned faults.online.spares_exhausted mce_traps; do
  v=$(chaos_field "$k")
  if [ -z "$v" ] || [ "$v" -lt 1 ]; then
    echo "ci: chaos smoke: $k did not fire (got '${v:-missing}'): $chaos_out" >&2
    exit 1
  fi
done
for probe in '"silent_corruptions":0' '"reconverged_strict":3' \
             '"reconverged_salvage":3' '"mce_strict_aborted":true'; do
  if ! grep -q "$probe" <<<"$chaos_out"; then
    echo "ci: chaos smoke: expected $probe in: $chaos_out" >&2
    exit 1
  fi
done
echo "chaos smoke ok"

echo "== swctl serve (fixed-seed degraded-mode smoke) =="
# Open-loop serving under the engineered chaos-under-load schedules: at
# least one breaker must trip, spare-pool exhaustion must fail a shard
# over, every quarantine's crash/recover leg must reconverge with zero
# silent corruptions, and the JSON must round-trip byte-identically
# through the in-workspace parser.
serve_out=$("$SWCTL" serve queue --lang txn --design strandweaver \
  --threads 2 --regions 24 --ops 2 --seed 1234 --json)
serve_field() { sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p" <<<"$serve_out"; }
for k in breaker_trips failovers recovery_legs reconverged_salvage; do
  v=$(serve_field "$k")
  if [ -z "$v" ] || [ "$v" -lt 1 ]; then
    echo "ci: serve smoke: $k did not fire (got '${v:-missing}'): $serve_out" >&2
    exit 1
  fi
done
if ! grep -q '"silent_corruptions":0' <<<"$serve_out"; then
  echo "ci: serve smoke: silent corruption reported: $serve_out" >&2
  exit 1
fi
printf '%s\n' "$serve_out" | target/debug/examples/serve_roundtrip
echo "serve smoke ok"

echo "== swctl bench (perf trajectory + regression gate) =="
# Fixed small scale so one pass finishes quickly on a 1-CPU container; the
# committed BENCH_baseline.json records the same scale and benchcmp refuses
# to compare mismatched scales. SW_PERF_GATE=off skips only the comparison:
# the BENCH_ci.json artifact is emitted either way.
bench_env=(SW_BENCH_THREADS=2 SW_BENCH_REGIONS=24 SW_BENCH_OPS_PER_REGION=2)
# Profiling must not change simulated results: stdout byte-identical with
# the ambient profiler on (phase table goes to stderr).
diff <(env "${bench_env[@]}" "$SWCTL" table2) \
     <(env "${bench_env[@]}" SW_PERF=1 "$SWCTL" table2 2>/dev/null)
diff <(env "${bench_env[@]}" "$SWCTL" fig7 --design strandweaver) \
     <(env "${bench_env[@]}" SW_PERF=1 "$SWCTL" fig7 --design strandweaver 2>/dev/null)
echo "profiled outputs bit-identical"
env "${bench_env[@]}" "$SWCTL" bench --label ci --warmup 1 --repeat 3
if [ "${SW_PERF_GATE:-on}" = off ]; then
  echo "perf gate skipped (SW_PERF_GATE=off); BENCH_ci.json still emitted"
elif [ ! -f BENCH_baseline.json ]; then
  echo "perf gate skipped (no BENCH_baseline.json); BENCH_ci.json still emitted"
else
  # Tolerance tightened to 15% after the monomorphized hot-path rebuild;
  # the floor pins fig7 at 2x the pre-rebuild baseline (463787 events/s)
  # so the speedup cannot be ratcheted away by re-recording baselines.
  "$SWCTL" benchcmp BENCH_ci.json BENCH_baseline.json --tolerance 15 --floor fig7:927573
  # Self-test: the gate must actually fire on a slowed run (3x wall time).
  if "$SWCTL" benchcmp BENCH_ci.json BENCH_baseline.json --scale-wall 3 2>/dev/null; then
    echo "ci: perf gate failed to detect a 3x slowdown" >&2
    exit 1
  fi
  echo "perf gate self-test ok (3x slowdown detected)"
fi

echo "ci: all gates passed"
