#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, workspace) =="
cargo build --release --workspace

echo "== build (examples) =="
cargo build --workspace --examples

echo "== test (workspace) =="
cargo test --workspace -q

echo "== rustdoc (no-deps) =="
cargo doc --workspace --no-deps -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt (check) =="
cargo fmt --all -- --check

echo "ci: all gates passed"
