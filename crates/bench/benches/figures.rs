//! Regenerates every table and figure in one pass. Not a statistical
//! benchmark: `harness = false` is used so `cargo bench` executes the full
//! evaluation in release mode and prints the paper-style reports.
use sw_bench::*;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== StrandWeaver evaluation (threads={}, regions={}, ops/region={}) ==\n",
        scale.threads, scale.regions, scale.ops_per_region
    );
    println!("{}", table1());
    println!("{}", fig1_report());
    println!("{}", fig2_report());
    let rows = table2(scale);
    println!("{}", table2_report(&rows));
    let cells = full_sweep(scale);
    println!("{}", fig7_report(&cells));
    println!("{}", fig8_report(&cells));
    println!("{}", fig9_report(scale));
    println!("{}", fig10_report(scale));
    println!("{}", summary_report(&cells));
    println!("{}", lang_sensitivity_report(&cells));
    println!("{}", native_bound_report(&native_bound(scale)));
}
