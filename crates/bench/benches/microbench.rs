//! Criterion micro-benchmarks for the reproduction's hot paths: PMO
//! computation, crash-state sampling, undo-log appends, litmus evaluation,
//! and a small end-to-end simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use strandweaver::experiment::Experiment;
use strandweaver::lang::{FuncCtx, LangModel, RuntimeConfig, ThreadRuntime};
use strandweaver::model::isa::LockId;
use strandweaver::model::{crash, litmus, MemoryModel, OpKind, Pmo, Program};
use strandweaver::pmem::{Addr, PmLayout};
use strandweaver::{BenchmarkId, HwDesign};

/// A single-threaded program with `n` log/update pairs under strands.
fn strand_program(n: usize) -> Program {
    let mut p = Program::new(1);
    for k in 0..n as u64 {
        p.push(0, OpKind::store(Addr(0x1000_0000 + k * 128), 1));
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::store(Addr(0x1000_0040 + k * 128), 1));
        p.push(0, OpKind::NewStrand);
    }
    p.push(0, OpKind::JoinStrand);
    p
}

fn bench_pmo(c: &mut Criterion) {
    let exec = strand_program(200).single_threaded_execution();
    c.bench_function("pmo_compute_400_stores", |b| {
        b.iter(|| Pmo::compute(&exec, MemoryModel::StrandWeaver))
    });
}

fn bench_crash_sampling(c: &mut Criterion) {
    let exec = strand_program(200).single_threaded_execution();
    let pmo = Pmo::compute(&exec, MemoryModel::StrandWeaver);
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("crash_sample_400_stores", |b| {
        b.iter(|| crash::sample_state(&pmo, &mut rng))
    });
}

fn bench_log_append(c: &mut Criterion) {
    let layout = PmLayout::new(1, 4096);
    let heap = layout.heap_base();
    c.bench_function("undo_log_region_8_stores", |b| {
        b.iter_batched(
            || {
                let ctx = FuncCtx::new(layout.clone(), 1);
                let rt = ThreadRuntime::new(
                    &layout,
                    0,
                    RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
                );
                (ctx, rt)
            },
            |(mut ctx, mut rt)| {
                rt.region_begin(&mut ctx, &[LockId(0)]);
                for k in 0..8u64 {
                    rt.store(&mut ctx, heap.offset_words(k * 8), k);
                }
                rt.region_end(&mut ctx);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_litmus(c: &mut Criterion) {
    c.bench_function("litmus_fig2_suite", |b| {
        b.iter(|| {
            for l in litmus::all() {
                l.check(MemoryModel::StrandWeaver).unwrap();
            }
        })
    });
}

fn bench_small_simulation(c: &mut Criterion) {
    c.bench_function("sim_queue_txn_2x16_regions", |b| {
        b.iter(|| {
            Experiment::new(BenchmarkId::Queue, LangModel::Txn, HwDesign::StrandWeaver)
                .threads(2)
                .total_regions(16)
                .run_timing()
        })
    });
}

criterion_group!(
    benches,
    bench_pmo,
    bench_crash_sampling,
    bench_log_append,
    bench_litmus,
    bench_small_simulation
);
criterion_main!(benches);
