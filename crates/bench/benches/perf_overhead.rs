//! Overhead check for the `sw-perf` wiring: a timing run with the profiler
//! disabled (the default) must cost no more than the same run with the
//! profiler enabled — the disabled path is one `Option` discriminant check
//! per phase boundary, while the enabled path reads the monotonic clock at
//! each of the eight boundaries per cycle.
//!
//! Run with `cargo bench -p sw-bench --bench perf_overhead`. The assert
//! uses a generous tolerance so scheduler noise on loaded machines does not
//! produce false failures.

use criterion::{criterion_group, criterion_main, Criterion};
use strandweaver::experiment::Experiment;
use strandweaver::{BenchmarkId, HwDesign, LangModel};

fn cell() -> Experiment {
    Experiment::new(BenchmarkId::Queue, LangModel::Txn, HwDesign::StrandWeaver)
        .threads(2)
        .total_regions(16)
}

fn bench_disabled_vs_profiled(c: &mut Criterion) {
    c.bench_function("run_timing_profiler_disabled", |b| {
        b.iter(|| cell().run_timing())
    });
    c.bench_function("run_timing_profiler_enabled", |b| {
        b.iter(|| cell().with_profiling().run_timing())
    });
    let disabled = c
        .median_of("run_timing_profiler_disabled")
        .expect("disabled variant ran");
    let enabled = c
        .median_of("run_timing_profiler_enabled")
        .expect("profiled variant ran");
    let ratio = disabled.as_secs_f64() / enabled.as_secs_f64();
    println!("disabled/profiled time ratio: {ratio:.3}");
    assert!(
        ratio < 1.25,
        "the disabled profiler path should add no measurable cost over an \
         unprofiled run (disabled {disabled:?} vs profiled {enabled:?}, ratio {ratio:.3})"
    );
}

criterion_group!(benches, bench_disabled_vs_profiled);
criterion_main!(benches);
