//! Overhead check for the `sw-perf` wiring: a timing run with the profiler
//! disabled (the default) must cost no more than the same run with the
//! profiler enabled — the disabled path is one `Option` discriminant check
//! per phase boundary, while the enabled path reads the monotonic clock at
//! each of the eight boundaries per cycle.
//!
//! Run with `cargo bench -p sw-bench --bench perf_overhead`. The assert
//! uses a generous tolerance so scheduler noise on loaded machines does not
//! produce false failures.

use criterion::{criterion_group, criterion_main, Criterion};
use strandweaver::experiment::Experiment;
use strandweaver::faults::{DeviceFault, DeviceFaultClass, DeviceFaultSchedule, FaultTrigger};
use strandweaver::{BenchmarkId, HwDesign, LangModel};

fn cell() -> Experiment {
    Experiment::new(BenchmarkId::Queue, LangModel::Txn, HwDesign::StrandWeaver)
        .threads(2)
        .total_regions(16)
}

/// An armed fault unit whose trigger can never fire: the worst-case
/// "fault layer present but quiet" configuration (the default
/// `device_faults: None` path short-circuits even earlier).
fn idle_schedule() -> DeviceFaultSchedule {
    let mut s = DeviceFaultSchedule::none();
    s.faults.push(DeviceFault {
        class: DeviceFaultClass::TransientWriteFail,
        trigger: FaultTrigger::NthWrite(u64::MAX),
        sticky: false,
    });
    s
}

fn bench_disabled_vs_profiled(c: &mut Criterion) {
    c.bench_function("run_timing_profiler_disabled", |b| {
        b.iter(|| cell().run_timing())
    });
    c.bench_function("run_timing_profiler_enabled", |b| {
        b.iter(|| cell().with_profiling().run_timing())
    });
    let disabled = c
        .median_of("run_timing_profiler_disabled")
        .expect("disabled variant ran");
    let enabled = c
        .median_of("run_timing_profiler_enabled")
        .expect("profiled variant ran");
    let ratio = disabled.as_secs_f64() / enabled.as_secs_f64();
    println!("disabled/profiled time ratio: {ratio:.3}");
    assert!(
        ratio < 1.25,
        "the disabled profiler path should add no measurable cost over an \
         unprofiled run (disabled {disabled:?} vs profiled {enabled:?}, ratio {ratio:.3})"
    );
}

/// The online device-fault layer must be free when not in use: a run with
/// no fault schedule (the default) may cost no more than the same run with
/// an armed-but-never-firing fault unit installed. The disabled path is
/// one `Option` discriminant check per PM write.
fn bench_fault_layer_disabled_cost(c: &mut Criterion) {
    c.bench_function("run_timing_no_fault_layer", |b| {
        b.iter(|| cell().run_timing())
    });
    c.bench_function("run_timing_idle_fault_layer", |b| {
        b.iter(|| {
            let mut e = cell();
            e.sim = e.sim.clone().with_device_faults(idle_schedule());
            e.run_timing()
        })
    });
    let none = c
        .median_of("run_timing_no_fault_layer")
        .expect("no-fault variant ran");
    let idle = c
        .median_of("run_timing_idle_fault_layer")
        .expect("idle-fault variant ran");
    let ratio = none.as_secs_f64() / idle.as_secs_f64();
    println!("no-fault/idle-fault time ratio: {ratio:.3}");
    assert!(
        ratio < 1.25,
        "the fault-free PM write path should cost no more than an idle armed \
         fault unit (none {none:?} vs idle {idle:?}, ratio {ratio:.3})"
    );
}

criterion_group!(
    benches,
    bench_disabled_vs_profiled,
    bench_fault_layer_disabled_cost
);
criterion_main!(benches);
