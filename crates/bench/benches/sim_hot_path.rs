//! Criterion micro-benchmarks for the simulator's per-cycle hot path:
//! dirty-owner directory lookups, strand-buffer enqueue/drain, and a full
//! engine step (a small end-to-end machine run per design).
//!
//! These guard the monomorphized, allocation-free cycle loop: the
//! directory and strand buffer are probed several times per core per
//! executed cycle, and the machine run exercises the static engine
//! dispatch plus skip-ahead scheduling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use strandweaver::model::isa::{FenceKind, IsaOp};
use strandweaver::pmem::{LineAddr, PmLayout};
use strandweaver::sim::{Directory, Machine, Sbu, SimConfig};
use strandweaver::HwDesign;

fn bench_directory(c: &mut Criterion) {
    let layout = PmLayout::new(2, 1024);
    let base = layout.heap_base().line();
    let mut dir = Directory::for_layout(&layout);
    for k in 0..256 {
        dir.set_dirty_owner(LineAddr(base.0 + 2 * k), (k % 2) as usize);
    }
    c.bench_function("directory_lookup_512", |b| {
        b.iter(|| {
            let mut owned = 0usize;
            for k in 0..512 {
                if dir.dirty_owner(LineAddr(base.0 + k)).is_some() {
                    owned += 1;
                }
            }
            owned
        })
    });
}

fn bench_sbu_enqueue_drain(c: &mut Criterion) {
    c.bench_function("sbu_enqueue_drain_16", |b| {
        b.iter_batched(
            || Sbu::new(4, 4),
            |mut sbu| {
                // Fill four strands with CLWB/PB pairs, then issue and
                // retire everything — the steady-state Sbu cycle.
                for s in 0..4u64 {
                    for k in 0..2u64 {
                        sbu.push_clwb(LineAddr(0x40_0000 + s * 16 + k));
                        sbu.push_pb();
                    }
                    sbu.new_strand();
                }
                let mut cycle = 0u64;
                while !sbu.is_empty() {
                    let mut issues = Vec::new();
                    sbu.for_each_issuable(|bidx, k, _line| issues.push((bidx, k)));
                    for (bidx, k) in issues {
                        sbu.mark_pending(bidx, k, cycle + 2);
                    }
                    let _ = sbu.tick_retire(cycle);
                    cycle += 1;
                    assert!(cycle < 1000, "sbu drain did not converge");
                }
                cycle
            },
            BatchSize::SmallInput,
        )
    });
}

/// A two-core producer/consumer trace with stores, CLWBs, and strand
/// fences — enough to exercise every backend stage.
fn step_traces(layout: &PmLayout) -> Vec<Vec<IsaOp>> {
    let heap = layout.heap_base();
    (0..2u64)
        .map(|t| {
            let mut ops = Vec::new();
            for k in 0..32u64 {
                let a = strandweaver::pmem::Addr(heap.raw() + (t * 64 + k) * 64);
                ops.push(IsaOp::Store(a));
                ops.push(IsaOp::Clwb(a));
                if k % 4 == 3 {
                    ops.push(IsaOp::Fence(FenceKind::JoinStrand));
                } else {
                    ops.push(IsaOp::Fence(FenceKind::NewStrand));
                }
            }
            ops
        })
        .collect()
}

fn bench_engine_step(c: &mut Criterion) {
    let layout = PmLayout::new(2, 1024);
    for design in [HwDesign::StrandWeaver, HwDesign::IntelX86, HwDesign::Eadr] {
        c.bench_function(&format!("engine_step_{design:?}"), |b| {
            b.iter_batched(
                || {
                    Machine::new(
                        SimConfig::table_i().with_cores(2),
                        design,
                        layout.clone(),
                        step_traces(&layout),
                    )
                },
                |m| m.run(),
                BatchSize::SmallInput,
            )
        });
    }
}

/// The same end-to-end engine step with an armed-but-idle online fault
/// unit installed, for side-by-side comparison against
/// `engine_step_StrandWeaver`: the fault check on the PM write path must
/// not show up at this granularity.
fn bench_engine_step_idle_faults(c: &mut Criterion) {
    use strandweaver::faults::{DeviceFault, DeviceFaultClass, DeviceFaultSchedule, FaultTrigger};
    let layout = PmLayout::new(2, 1024);
    let mut idle = DeviceFaultSchedule::none();
    idle.faults.push(DeviceFault {
        class: DeviceFaultClass::TransientWriteFail,
        trigger: FaultTrigger::NthWrite(u64::MAX),
        sticky: false,
    });
    c.bench_function("engine_step_StrandWeaver_idle_faults", |b| {
        b.iter_batched(
            || {
                Machine::new(
                    SimConfig::table_i()
                        .with_cores(2)
                        .with_device_faults(idle.clone()),
                    HwDesign::StrandWeaver,
                    layout.clone(),
                    step_traces(&layout),
                )
            },
            |m| m.run(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    sim_hot_path,
    bench_directory,
    bench_sbu_enqueue_drain,
    bench_engine_step,
    bench_engine_step_idle_faults
);
criterion_main!(sim_hot_path);
