//! Overhead check for the `sw-trace` wiring: a timing run with no trace
//! sink installed (the default) must cost no more than the same run with a
//! [`NullSink`] — the disabled path is two `Option` discriminant checks per
//! instrument site, so it should be at or below the NullSink variant, which
//! additionally constructs and discards every event.
//!
//! Run with `cargo bench -p sw-bench --bench trace_overhead`. The assert
//! uses a generous tolerance so scheduler noise on loaded machines does not
//! produce false failures.

use criterion::{criterion_group, criterion_main, Criterion};
use strandweaver::experiment::Experiment;
use strandweaver::trace::NullSink;
use strandweaver::{BenchmarkId, HwDesign, LangModel};

fn cell() -> Experiment {
    Experiment::new(BenchmarkId::Queue, LangModel::Txn, HwDesign::StrandWeaver)
        .threads(2)
        .total_regions(16)
}

fn bench_disabled_vs_null_sink(c: &mut Criterion) {
    c.bench_function("run_timing_sink_disabled", |b| {
        b.iter(|| cell().run_timing())
    });
    c.bench_function("run_timing_null_sink", |b| {
        b.iter(|| cell().run_timing_with_sink(Some(Box::new(NullSink))))
    });
    let disabled = c
        .median_of("run_timing_sink_disabled")
        .expect("disabled variant ran");
    let null = c
        .median_of("run_timing_null_sink")
        .expect("null-sink variant ran");
    let ratio = disabled.as_secs_f64() / null.as_secs_f64();
    println!("disabled/null-sink time ratio: {ratio:.3}");
    assert!(
        ratio < 1.25,
        "disabled tracing should add no measurable cost over NullSink \
         (disabled {disabled:?} vs null {null:?}, ratio {ratio:.3})"
    );
}

criterion_group!(benches, bench_disabled_vs_null_sink);
criterion_main!(benches);
