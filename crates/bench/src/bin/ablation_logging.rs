//! Ablation (Section VII extension): undo vs. redo logging under strand
//! persistency. Redo removes the per-region durability drain — each
//! transaction lives on its own strand with a persist-barrier-ordered
//! commit record, and durability is deferred to group commits — so it
//! should recover most of the remaining gap to the non-atomic bound.
use strandweaver::experiment::Experiment;
use strandweaver::{BenchmarkId, HwDesign, LangModel};
use sw_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — undo vs. redo logging (speedup over Intel x86 + undo)");
    println!(
        "  {:12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "sw+undo", "sw+redo", "intel+redo", "non-atomic"
    );
    for bench in BenchmarkId::ALL {
        let mk = |design, redo| {
            let e = Experiment::new(bench, LangModel::Txn, design)
                .threads(scale.threads)
                .total_regions(scale.regions)
                .ops_per_region(scale.ops_per_region);
            let e = if redo { e.redo() } else { e };
            e.run_timing()
        };
        let intel_undo = mk(HwDesign::IntelX86, false).cycles as f64;
        let sw_undo = mk(HwDesign::StrandWeaver, false).cycles as f64;
        let sw_redo = mk(HwDesign::StrandWeaver, true).cycles as f64;
        let intel_redo = mk(HwDesign::IntelX86, true).cycles as f64;
        let na = mk(HwDesign::NonAtomic, false).cycles as f64;
        println!(
            "  {:12} {:>11.2}x {:>11.2}x {:>11.2}x {:>11.2}x",
            bench.label(),
            intel_undo / sw_undo,
            intel_undo / sw_redo,
            intel_undo / intel_redo,
            intel_undo / na,
        );
    }
}
