//! Regenerates Figure 10 (speedup vs. operations per SFR).
use sw_bench::{fig10_report, Scale};
fn main() {
    print!("{}", fig10_report(Scale::from_env()));
}
