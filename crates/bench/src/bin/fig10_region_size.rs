//! Regenerates Figure 10 (speedup vs. operations per SFR)
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Fig10.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
