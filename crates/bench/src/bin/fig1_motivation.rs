//! Regenerates the Figure 1(e,f) motivating-ordering comparison.
fn main() {
    print!("{}", sw_bench::fig1_report());
}
