//! Regenerates the Figure 1(e,f) motivating-ordering comparison
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Fig1.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
