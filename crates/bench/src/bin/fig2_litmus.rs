//! Runs the Figure 2 litmus suite under the strand persistency model
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Fig2.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
