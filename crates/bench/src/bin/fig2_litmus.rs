//! Runs the Figure 2 litmus suite under the strand persistency model.
fn main() {
    print!("{}", sw_bench::fig2_report());
}
