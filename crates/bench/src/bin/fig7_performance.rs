//! Regenerates Figure 7 (speedup over Intel x86 across designs)
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Fig7.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
