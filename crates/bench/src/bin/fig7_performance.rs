//! Regenerates Figure 7 (speedup over Intel x86 across designs).
use sw_bench::{fig7_report, full_sweep, Scale};
fn main() {
    let cells = full_sweep(Scale::from_env());
    print!("{}", fig7_report(&cells));
}
