//! Regenerates Figure 8 (persist-ordering CPU stalls).
use sw_bench::{fig8_report, full_sweep, Scale};
fn main() {
    let cells = full_sweep(Scale::from_env());
    print!("{}", fig8_report(&cells));
}
