//! Regenerates Figure 8 (persist-ordering CPU stalls)
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Fig8.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
