//! Regenerates Figure 9 (strand-buffer-unit sensitivity).
use sw_bench::{fig9_report, Scale};
fn main() {
    print!("{}", fig9_report(Scale::from_env()));
}
