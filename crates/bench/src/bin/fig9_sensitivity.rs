//! Regenerates Figure 9 (strand-buffer-unit sensitivity)
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Fig9.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
