//! Prints the paper's headline numbers next to the measured ones.
use sw_bench::{
    full_sweep, lang_sensitivity_report, native_bound, native_bound_report, summary_report, Scale,
};
fn main() {
    let scale = Scale::from_env();
    let cells = full_sweep(scale);
    print!("{}", summary_report(&cells));
    print!("{}", lang_sensitivity_report(&cells));
    print!("{}", native_bound_report(&native_bound(scale)));
}
