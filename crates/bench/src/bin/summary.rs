//! Prints the paper's headline numbers next to the measured ones
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Summary.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
