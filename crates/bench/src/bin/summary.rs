//! Prints the paper's headline numbers next to the measured ones.
use sw_bench::{full_sweep, lang_sensitivity_report, summary_report, Scale};
fn main() {
    let cells = full_sweep(Scale::from_env());
    print!("{}", summary_report(&cells));
    print!("{}", lang_sensitivity_report(&cells));
}
