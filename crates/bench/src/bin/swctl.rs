//! `swctl` — command-line driver for the StrandWeaver reproduction.
//!
//! ```text
//! swctl run   <benchmark> [--lang txn|sfr|atlas] [--design <d>] [--redo]
//!             [--threads N] [--regions N] [--ops N] [--sq N] [--pq N]
//!             [--stats] [--json]
//! swctl crash <benchmark> [--rounds N] [--design <d>] [--lang ...] [--redo]
//! swctl trace <benchmark> [--out <file.json>] [--jsonl] [run flags]
//! swctl litmus | fig1 | fig2 | table1
//! swctl table2|fig7|fig8|fig9|fig10|summary [--json]
//! ```
//!
//! `trace` writes a Chrome/Perfetto trace-event file (load it at
//! `ui.perfetto.dev`); `--jsonl` switches to flat JSON-lines. `--json`
//! emits machine-readable results instead of the formatted report.
//! Unknown flags are an error on every subcommand.

use strandweaver::experiment::Experiment;
use strandweaver::{BenchmarkId, HwDesign, LangModel};
use sw_bench::Scale;

fn parse_bench(s: &str) -> Option<BenchmarkId> {
    BenchmarkId::ALL.into_iter().find(|b| b.label() == s)
}

fn parse_design(s: &str) -> Option<HwDesign> {
    HwDesign::ALL.into_iter().find(|d| d.label() == s)
}

fn parse_lang(s: &str) -> Option<LangModel> {
    LangModel::ALL.into_iter().find(|l| l.label() == s)
}

fn usage() -> ! {
    eprintln!(
        "usage: swctl <command>\n\
         \n  run <benchmark>    simulate one cell (flags: --lang --design --redo --threads --regions --ops --sq --pq --stats --json)\
         \n  crash <benchmark>  crash-consistency campaign (flags as above plus --rounds)\
         \n  trace <benchmark>  simulate with event tracing, write a Perfetto timeline (--out FILE, --jsonl)\
         \n  litmus             run the Figure 2 litmus suite\
         \n  table1|table2|fig1|fig2|fig7|fig8|fig9|fig10|summary  regenerate a table/figure (--json where tabular)\
         \n\nbenchmarks: {}\ndesigns: {}\nlangs: {}",
        BenchmarkId::ALL.map(|b| b.label()).join(" "),
        HwDesign::ALL.map(|d| d.label()).join(" "),
        LangModel::ALL.map(|l| l.label()).join(" "),
    );
    std::process::exit(2);
}

struct Flags {
    lang: LangModel,
    design: HwDesign,
    redo: bool,
    threads: usize,
    regions: usize,
    ops: usize,
    rounds: usize,
    stats: bool,
    json: bool,
    jsonl: bool,
    out: Option<String>,
    sq: Option<usize>,
    pq: Option<usize>,
}

fn parse_flags(args: &[String]) -> Flags {
    let scale = Scale::from_env();
    let mut f = Flags {
        lang: LangModel::Txn,
        design: HwDesign::StrandWeaver,
        redo: false,
        threads: scale.threads,
        regions: scale.regions,
        ops: scale.ops_per_region,
        rounds: 100,
        stats: false,
        json: false,
        jsonl: false,
        out: None,
        sq: None,
        pq: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2)
                })
                .clone()
        };
        match a.as_str() {
            "--lang" => f.lang = parse_lang(&next("--lang")).unwrap_or_else(|| usage()),
            "--design" => f.design = parse_design(&next("--design")).unwrap_or_else(|| usage()),
            "--redo" => f.redo = true,
            "--stats" => f.stats = true,
            "--json" => f.json = true,
            "--jsonl" => f.jsonl = true,
            "--out" => f.out = Some(next("--out")),
            "--threads" => f.threads = next("--threads").parse().unwrap_or_else(|_| usage()),
            "--regions" => f.regions = next("--regions").parse().unwrap_or_else(|_| usage()),
            "--ops" => f.ops = next("--ops").parse().unwrap_or_else(|_| usage()),
            "--rounds" => f.rounds = next("--rounds").parse().unwrap_or_else(|_| usage()),
            "--sq" => f.sq = Some(next("--sq").parse().unwrap_or_else(|_| usage())),
            "--pq" => f.pq = Some(next("--pq").parse().unwrap_or_else(|_| usage())),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if f.threads == 0 || f.regions == 0 || f.ops == 0 {
        eprintln!("--threads, --regions, and --ops must be at least 1");
        std::process::exit(2);
    }
    f
}

fn experiment(bench: BenchmarkId, f: &Flags) -> Experiment {
    let mut e = Experiment::new(bench, f.lang, f.design)
        .threads(f.threads)
        .total_regions(f.regions)
        .ops_per_region(f.ops);
    if let Some(sq) = f.sq {
        e.sim.store_queue_entries = sq.max(1);
    }
    if let Some(pq) = f.pq {
        e.sim.persist_queue_entries = pq.max(1);
    }
    if f.redo {
        e.redo()
    } else {
        e
    }
}

/// Strict flag parser for the table/figure subcommands: `--json` where the
/// output is tabular, nothing else. Anything unrecognized is an error.
fn parse_figure_flags(args: &[String], json_ok: bool) -> bool {
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" if json_ok => json = true,
            other => {
                eprintln!("unknown flag for this subcommand: {other}");
                std::process::exit(2);
            }
        }
    }
    json
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "run" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let mut e = experiment(bench, &f);
            if f.json {
                e = e.with_metrics();
            }
            let stats = e.run_timing();
            if f.json {
                println!("{}", stats.to_json().render());
                return;
            }
            println!(
                "{bench} lang={} design={} redo={}: {} cycles, {} clwbs, ckc {:.2}, \
                 persist stalls {}, lock stalls {}",
                f.lang,
                f.design,
                f.redo,
                stats.cycles,
                stats.total_clwbs(),
                stats.ckc(),
                stats.persist_stall_cycles(),
                stats.lock_stall_cycles(),
            );
            if f.stats {
                print!("{}", stats.report());
            }
        }
        "crash" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            match experiment(bench, &f).run_crash_campaign(f.rounds) {
                Ok(()) => println!("{bench}: {} crash states recovered consistently", f.rounds),
                Err(e) => {
                    println!("{bench}: INCONSISTENT — {e}");
                    std::process::exit(1);
                }
            }
        }
        "trace" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let rec = strandweaver::trace::RingRecorder::new(1 << 20);
            let stats = experiment(bench, &f)
                .traced(rec.clone())
                .with_metrics()
                .run_timing();
            let path = f.out.as_deref().unwrap_or("trace.json");
            let events = rec.events();
            let body = if f.jsonl {
                strandweaver::trace::jsonl(&events)
            } else {
                strandweaver::trace::chrome_trace(&events).render()
            };
            std::fs::write(path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "{bench} lang={} design={}: {} cycles, {} events recorded ({} dropped) -> {path}",
                f.lang,
                f.design,
                stats.cycles,
                rec.recorded(),
                rec.dropped(),
            );
        }
        "litmus" | "fig2" => {
            parse_figure_flags(&args[1..], false);
            print!("{}", sw_bench::fig2_report());
        }
        "fig1" => {
            parse_figure_flags(&args[1..], false);
            print!("{}", sw_bench::fig1_report());
        }
        "table1" => {
            parse_figure_flags(&args[1..], false);
            print!("{}", sw_bench::table1());
        }
        "table2" => {
            let json = parse_figure_flags(&args[1..], true);
            let rows = sw_bench::table2(Scale::from_env());
            if json {
                println!("{}", sw_bench::table2_json(&rows).render());
            } else {
                print!("{}", sw_bench::table2_report(&rows));
            }
        }
        "fig7" => {
            let json = parse_figure_flags(&args[1..], true);
            let cells = sw_bench::full_sweep(Scale::from_env());
            if json {
                println!("{}", sw_bench::sweep_json(&cells).render());
            } else {
                print!("{}", sw_bench::fig7_report(&cells));
            }
        }
        "fig8" => {
            let json = parse_figure_flags(&args[1..], true);
            let cells = sw_bench::full_sweep(Scale::from_env());
            if json {
                println!("{}", sw_bench::sweep_json(&cells).render());
            } else {
                print!("{}", sw_bench::fig8_report(&cells));
            }
        }
        "fig9" => {
            let json = parse_figure_flags(&args[1..], true);
            let m = sw_bench::fig9_matrix(Scale::from_env());
            if json {
                println!("{}", m.to_json().render());
            } else {
                print!("{}", m.render());
            }
        }
        "fig10" => {
            let json = parse_figure_flags(&args[1..], true);
            let m = sw_bench::fig10_matrix(Scale::from_env());
            if json {
                println!("{}", m.to_json().render());
            } else {
                print!("{}", m.render());
            }
        }
        "summary" => {
            let json = parse_figure_flags(&args[1..], true);
            let cells = sw_bench::full_sweep(Scale::from_env());
            if json {
                println!("{}", sw_bench::summary_json(&cells).render());
            } else {
                print!("{}", sw_bench::summary_report(&cells));
                print!("{}", sw_bench::lang_sensitivity_report(&cells));
            }
        }
        _ => usage(),
    }
}
