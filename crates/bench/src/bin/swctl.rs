//! `swctl` — command-line driver for the StrandWeaver reproduction.
//!
//! ```text
//! swctl run    <benchmark> [--lang txn|sfr|atlas|native] [--design <d>] [--redo]
//!              [--threads N] [--regions N] [--ops N] [--sq N] [--pq N]
//!              [--stats] [--json] [--seed N]
//! swctl crash  <benchmark> [--rounds N] [--design <d>] [--lang ...] [--redo]
//! swctl faults <benchmark> [--rounds N] [--heap] [--json] [crash flags]
//! swctl chaos  <benchmark> [--rounds N] [--sweep] [--json] [crash flags]
//! swctl heap   <benchmark> [--churn] [--verify] [--json] [crash flags]
//! swctl serve  <benchmark> [--sweep] [--shards N] [--requests N] [--load F]
//!              [--arrival poisson|bursty] [--shed-policy drop-tail|deadline|token-bucket]
//!              [--queue-depth N] [--deadline-factor N] [--no-faults] [run flags]
//! swctl trace  <benchmark> [--out <file.json>] [--jsonl] [run flags]
//! swctl litmus | fig1 | fig2 | table1
//! swctl table2 [--json]
//! swctl summary [--json] [--lang <l>]
//! swctl fig7|fig8 [--json] [--design <d>]
//! swctl fig9|fig10 [--json] [--design <d>] [--lang <l>]
//! ```
//!
//! The log-free `native` model is legal only on eADR-class designs;
//! every subcommand rejects an illegal `--lang`/`--design` pair with
//! exit code 2.
//!
//! `trace` writes a Chrome/Perfetto trace-event file (load it at
//! `ui.perfetto.dev`); `--jsonl` switches to flat JSON-lines. `--json`
//! emits machine-readable results instead of the formatted report.
//! Unknown flags are an error on every subcommand.
//!
//! `faults` runs the fault-injection campaign: each sampled crash image is
//! perturbed (torn entry, bit flip, or poisoned line) and recovery must
//! detect every injection, salvage around it, and reconverge when itself
//! interrupted. A failure prints a one-line reproducer (seed + flags) and
//! exits 1. `--seed N` pins the whole campaign for replay.
//!
//! `faults --heap` retargets the campaign at the persistent allocator's
//! journal metadata: Strict must reject corrupt/poisoned pool records
//! before mutating anything and Salvage must quarantine exactly the
//! damaged pools.
//!
//! `heap` prints end-of-run heap-pool occupancy (arena, carved, live,
//! free, fragmentation, journal) plus the run's alloc/free counters;
//! `--churn` uses the allocator-churn workload variant (hashmap,
//! nstore-*), and `--verify` runs the allocator leak smoke instead:
//! sampled crash states must recover with every rooted block live and
//! every unreachable in-flight allocation reclaimed — zero leaks.
//!
//! `serve` drives the benchmark as a fault-tolerant open-loop service:
//! seeded Poisson/bursty arrivals at `--load` × calibrated capacity, a
//! bounded per-shard admission queue with a pluggable shed policy,
//! per-shard circuit breakers tripped by persist-retry exhaustion or
//! MCEs, Salvage recovery on quarantine while survivors keep serving,
//! and failover on spare-pool exhaustion. Reports p50/p99/p999 latency
//! plus goodput/shed/timeout/failover counts; `--sweep` walks every
//! legal design × lang pair across an offered-load grid. Every
//! mid-serve crash/recover leg is checked for durable-set equality and
//! PMO linear extension; violations embed a seeded reproducer.
//!
//! `chaos` runs the *online* device-fault campaign: the memory path takes
//! randomized transient write failures (retried with backoff), permanent
//! media errors (remapped to spare lines), and read poison (delivered as
//! machine checks) while the run is live, and every round checks for
//! silent corruption, PMO-order violations, and crash-recovery
//! reconvergence. `--sweep` runs it on every legal design × lang pair and
//! additionally requires that at least one retry healed and one line was
//! remapped somewhere in the sweep. Failures embed a seeded reproducer.

use strandweaver::experiment::Experiment;
use strandweaver::{BenchmarkId, HwDesign, LangModel};
use sw_bench::cli::{self, CliError, Flags};
use sw_bench::{Scale, Target, TargetFilters};
use sw_serve::{ArrivalKind, ServeConfig, ShedPolicy};

/// Unwraps a strict-parse result, exiting 2 the way the shared parser's
/// error asks: named message verbatim, or the full usage text.
fn or_exit<T>(r: Result<T, CliError>) -> T {
    r.unwrap_or_else(|e| match e {
        CliError::Message(m) => {
            eprintln!("{m}");
            std::process::exit(2);
        }
        CliError::Usage => usage(),
    })
}

fn parse_bench(s: &str) -> Option<BenchmarkId> {
    cli::parse_bench(s)
}

fn parse_design(s: &str) -> HwDesign {
    or_exit(cli::parse_design(s))
}

fn parse_lang(s: &str) -> LangModel {
    or_exit(cli::parse_lang(s))
}

fn check_legal(lang: LangModel, design: HwDesign) {
    or_exit(cli::check_legal(lang, design));
}

fn usage() -> ! {
    eprintln!(
        "usage: swctl <command>\n\
         \n  run <benchmark>    simulate one cell (flags: --lang --design --redo --threads --regions --ops --sq --pq --stats --json --seed)\
         \n  crash <benchmark>  crash-consistency campaign (flags as above plus --rounds)\
         \n  faults <benchmark> fault-injection campaign: inject torn/bitflip/poison damage into\
         \n                     sampled crash images and verify detection, salvage, and convergence\
         \n                     (crash flags plus --json; --heap targets allocator-journal metadata;\
         \n                     failures print a seeded reproducer)\
         \n  heap <benchmark>   end-of-run heap-pool occupancy and alloc/free counters (crash flags\
         \n                     plus --json; --churn enables allocator churn where supported;\
         \n                     --verify runs the allocator leak smoke: crash, recover, reclaim,\
         \n                     assert zero leaks)\
         \n  serve <benchmark>  fault-tolerant open-loop serving layer: seeded arrivals, bounded\
         \n                     admission queue, per-shard circuit breakers, Salvage recovery on\
         \n                     quarantine, failover on spare exhaustion; reports p50/p99/p999 and\
         \n                     goodput/shed/timeout/failover (run flags plus --shards --requests\
         \n                     --load --arrival --shed-policy --queue-depth --deadline-factor\
         \n                     --no-faults; --sweep walks legal design x lang across a load grid)\
         \n  chaos <benchmark>  online device-fault chaos campaign: live transient/permanent/poison\
         \n                     faults with retry, remap, and MCE delivery; checks silent corruption,\
         \n                     PMO order, and crash reconvergence (crash flags plus --json;\
         \n                     --sweep covers every legal design x lang pair)\
         \n  trace <benchmark>  simulate with event tracing, write a Perfetto timeline (--out FILE, --jsonl)\
         \n  litmus             run the Figure 2 litmus suite\
         \n  table1|table2|fig1|fig2|fig7|fig8|fig9|fig10|summary  regenerate a table/figure (--json where tabular)\
         \n                     fig7/fig8 take --design <d> to sweep only Intel + <d>;\
         \n                     fig9/fig10 take --design <d> to measure <d> instead of strandweaver\
         \n                     and --lang <l> to measure <l> instead of sfr;\
         \n                     summary takes --lang <l> to sweep only that model\
         \n                     (illegal lang x design pairs are rejected: native needs eadr)\
         \n  bench              time every simulation-heavy target, write BENCH_<label>.json\
         \n                     (--label <s> --warmup N --repeat N --out FILE --design <d> --lang <l>)\
         \n  perf <benchmark>   one profiled run, print the per-phase wall-time table (run flags)\
         \n  benchcmp <cur> <base>  compare two BENCH_*.json reports; exit 1 past the tolerance\
         \n                     (--tolerance PCT, default 25; --scale-wall X multiplies <cur>;\
         \n                      --floor <target>:<events_per_sec> absolute minimum, repeatable)\
         \n\nSW_PERF=1 profiles any subcommand and prints the phase table to stderr.\
         \n\nbenchmarks: {}\ndesigns: {}\nlangs: {}",
        BenchmarkId::ALL.map(|b| b.label()).join(" "),
        HwDesign::ALL.map(|d| d.label()).join(" "),
        LangModel::ALL.map(|l| l.label()).join(" "),
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> Flags {
    or_exit(cli::parse_flags(args))
}

fn experiment(bench: BenchmarkId, f: &Flags) -> Experiment {
    let mut e = Experiment::new(bench, f.lang, f.design)
        .threads(f.threads)
        .total_regions(f.regions)
        .ops_per_region(f.ops);
    if let Some(seed) = f.seed {
        e = e.seed(seed);
    }
    if let Some(sq) = f.sq {
        e.sim.store_queue_entries = sq.max(1);
    }
    if let Some(pq) = f.pq {
        e.sim.persist_queue_entries = pq.max(1);
    }
    if f.redo {
        e.redo()
    } else {
        e
    }
}

/// Flags accepted by the table/figure subcommands.
struct FigureFlags {
    json: bool,
    design: Option<HwDesign>,
    lang: Option<LangModel>,
}

/// Strict flag parser for the table/figure subcommands: `--json` where the
/// output is tabular, `--design <d>` where a figure can be narrowed to one
/// design, `--lang <l>` where it can be narrowed to one language model,
/// nothing else. Anything unrecognized is an error.
fn parse_figure_flags(
    args: &[String],
    json_ok: bool,
    design_ok: bool,
    lang_ok: bool,
) -> FigureFlags {
    let mut f = FigureFlags {
        json: false,
        design: None,
        lang: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" if json_ok => f.json = true,
            "--design" if design_ok => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--design needs a value");
                    std::process::exit(2)
                });
                f.design = Some(parse_design(v));
            }
            "--lang" if lang_ok => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--lang needs a value");
                    std::process::exit(2)
                });
                f.lang = Some(parse_lang(v));
            }
            other => {
                eprintln!("unknown flag for this subcommand: {other}");
                std::process::exit(2);
            }
        }
    }
    f
}

/// Validates the lang × design legality contract a figure target assumes
/// before [`Target::run`] is called (fig9/fig10 normalize the measured
/// design to the Intel baseline; the summary sweeps every design).
fn check_target_legal(t: Target, filters: &TargetFilters) {
    match t {
        Target::Fig9 | Target::Fig10 => {
            let measured = filters.design.unwrap_or(HwDesign::StrandWeaver);
            let lang = filters.lang.unwrap_or(LangModel::Sfr);
            check_legal(lang, HwDesign::IntelX86);
            check_legal(lang, measured);
        }
        Target::Summary => {
            if let Some(lang) = filters.lang {
                for d in HwDesign::ALL {
                    check_legal(lang, d);
                }
            }
        }
        _ => {}
    }
}

/// Flags of the `bench` subcommand.
struct BenchFlags {
    label: String,
    warmup: usize,
    repeat: usize,
    out: Option<String>,
    filters: TargetFilters,
}

fn parse_bench_flags(args: &[String]) -> BenchFlags {
    let mut f = BenchFlags {
        label: "local".to_string(),
        warmup: 1,
        repeat: 3,
        out: None,
        filters: TargetFilters::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2)
                })
                .clone()
        };
        match a.as_str() {
            "--label" => f.label = next("--label"),
            "--warmup" => f.warmup = next("--warmup").parse().unwrap_or_else(|_| usage()),
            "--repeat" => f.repeat = next("--repeat").parse().unwrap_or_else(|_| usage()),
            "--out" => f.out = Some(next("--out")),
            "--design" => f.filters.design = Some(parse_design(&next("--design"))),
            "--lang" => f.filters.lang = Some(parse_lang(&next("--lang"))),
            other => {
                eprintln!("unknown flag for bench: {other}");
                std::process::exit(2);
            }
        }
    }
    if f.repeat == 0 {
        eprintln!("--repeat must be at least 1");
        std::process::exit(2);
    }
    // The summary target sweeps every design, so a lang filter must be
    // legal everywhere (this also covers the fig9/10 measured design).
    if let Some(lang) = f.filters.lang {
        for d in HwDesign::ALL {
            check_legal(lang, d);
        }
    }
    f
}

fn main() {
    // SW_PERF=1 turns on the ambient profiler for any subcommand: every
    // Machine the run constructs self-profiles, and the aggregate phase
    // table prints to stderr on exit — stdout stays byte-identical.
    let profiling = std::env::var("SW_PERF")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if profiling {
        sw_perf::set_global_enabled(true);
    }
    dispatch();
    if profiling {
        let snap = sw_perf::global_take();
        if !snap.is_empty() {
            eprint!("{}", snap.render_table());
        }
    }
}

fn dispatch() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "run" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let mut e = experiment(bench, &f);
            if f.json {
                e = e.with_metrics();
            }
            let stats = e.run_timing();
            if f.json {
                println!("{}", stats.to_json().render());
                return;
            }
            println!(
                "{bench} lang={} design={} redo={}: {} cycles, {} clwbs, ckc {:.2}, \
                 persist stalls {}, lock stalls {}",
                f.lang,
                f.design,
                f.redo,
                stats.cycles,
                stats.total_clwbs(),
                stats.ckc(),
                stats.persist_stall_cycles(),
                stats.lock_stall_cycles(),
            );
            if f.stats {
                print!("{}", stats.report());
            }
        }
        "crash" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            match experiment(bench, &f).run_crash_campaign(f.rounds) {
                Ok(()) => println!("{bench}: {} crash states recovered consistently", f.rounds),
                Err(e) => {
                    println!("{bench}: INCONSISTENT — {e}");
                    std::process::exit(1);
                }
            }
        }
        "faults" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            // `--heap` retargets the campaign at allocator metadata; strip
            // it before the shared strict parser.
            let mut rest: Vec<String> = args[2..].to_vec();
            let heap = cli::take_switch(&mut rest, "--heap");
            let f = parse_flags(&rest);
            let e = experiment(bench, &f);
            let result = if heap {
                e.run_heap_fault_campaign(f.rounds)
            } else {
                e.run_fault_campaign(f.rounds)
            };
            match result {
                Ok(report) => {
                    if f.json {
                        println!("{}", report.to_json().render());
                    } else {
                        print!("{bench}: fault campaign passed\n{}", report.render());
                    }
                }
                Err(e) => {
                    println!("{bench}: FAULT CAMPAIGN FAILED — {e}");
                    std::process::exit(1);
                }
            }
        }
        "heap" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            // `heap`-only switches, stripped before the strict parser.
            let mut rest: Vec<String> = args[2..].to_vec();
            let churn = cli::take_switch(&mut rest, "--churn");
            let verify = cli::take_switch(&mut rest, "--verify");
            let f = parse_flags(&rest);
            if verify {
                match experiment(bench, &f).run_heap_smoke(f.rounds) {
                    Ok(report) => {
                        if f.json {
                            println!("{}", report.to_json().render());
                        } else {
                            print!("{bench}: allocator smoke passed\n{}", report.render());
                        }
                    }
                    Err(e) => {
                        println!("{bench}: ALLOCATOR SMOKE FAILED — {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                match experiment(bench, &f).run_heap_report(churn) {
                    Ok(report) => {
                        if f.json {
                            println!("{}", report.to_json().render());
                        } else {
                            print!("{bench}: heap occupancy\n{}", report.render());
                        }
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
        }
        "chaos" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            // `--sweep` is chaos-only; strip it before the shared strict
            // parser so the other subcommands keep rejecting it.
            let mut rest: Vec<String> = args[2..].to_vec();
            let sweep = cli::take_switch(&mut rest, "--sweep");
            let f = parse_flags(&rest);
            if sweep {
                match strandweaver::experiment::chaos_sweep(&experiment(bench, &f), f.rounds) {
                    Ok(report) => {
                        if f.json {
                            println!("{}", report.to_json().render());
                        } else {
                            print!("{bench}: chaos sweep passed\n{}", report.render());
                        }
                    }
                    Err(e) => {
                        println!("{bench}: CHAOS SWEEP FAILED — {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                match experiment(bench, &f).run_chaos_campaign(f.rounds) {
                    Ok(report) => {
                        if f.json {
                            println!("{}", report.to_json().render());
                        } else {
                            print!("{bench}: chaos campaign passed\n{}", report.render());
                        }
                    }
                    Err(e) => {
                        println!("{bench}: CHAOS CAMPAIGN FAILED — {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "serve" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            // Serve-only flags, stripped before the shared strict parser.
            let mut rest: Vec<String> = args[2..].to_vec();
            let sweep = cli::take_switch(&mut rest, "--sweep");
            let no_faults = cli::take_switch(&mut rest, "--no-faults");
            let shards = or_exit(cli::take_value(&mut rest, "--shards"));
            let requests = or_exit(cli::take_value(&mut rest, "--requests"));
            let load = or_exit(cli::take_value(&mut rest, "--load"));
            let arrival = or_exit(cli::take_value(&mut rest, "--arrival"));
            let shed = or_exit(cli::take_value(&mut rest, "--shed-policy"));
            let queue_depth = or_exit(cli::take_value(&mut rest, "--queue-depth"));
            let deadline = or_exit(cli::take_value(&mut rest, "--deadline-factor"));
            let f = parse_flags(&rest);

            let mut cfg = ServeConfig::new(bench, f.lang, f.design);
            cfg.redo = f.redo;
            cfg.threads = f.threads;
            cfg.regions = f.regions;
            cfg.ops = f.ops;
            cfg.faults = !no_faults;
            if let Some(seed) = f.seed {
                cfg.seed = seed;
            }
            if let Some(v) = shards {
                cfg.shards = v.parse().unwrap_or_else(|_| usage());
            }
            if let Some(v) = requests {
                cfg.requests = v.parse().unwrap_or_else(|_| usage());
            }
            if let Some(v) = load {
                cfg.offered_load = v.parse().unwrap_or_else(|_| usage());
            }
            if let Some(v) = queue_depth {
                cfg.queue_depth = v.parse().unwrap_or_else(|_| usage());
            }
            if let Some(v) = deadline {
                cfg.deadline_factor = v.parse().unwrap_or_else(|_| usage());
            }
            if let Some(v) = arrival {
                cfg.arrival = ArrivalKind::from_label(&v).unwrap_or_else(|| {
                    or_exit(Err(CliError::Message(format!(
                        "unknown arrival '{v}' (valid: {})",
                        ArrivalKind::ALL.map(|k| k.label()).join(" ")
                    ))))
                });
            }
            if let Some(v) = shed {
                cfg.shed = ShedPolicy::from_label(&v).unwrap_or_else(|| {
                    or_exit(Err(CliError::Message(format!(
                        "unknown shed policy '{v}' (valid: {})",
                        ShedPolicy::ALL.map(|p| p.label()).join(" ")
                    ))))
                });
            }
            if cfg.shards == 0 || cfg.requests == 0 || cfg.offered_load <= 0.0 {
                eprintln!("--shards, --requests, and --load must be positive");
                std::process::exit(2);
            }

            let result = if sweep {
                sw_serve::serve_sweep(&cfg)
            } else {
                sw_serve::serve_report(&cfg)
            };
            match result {
                Ok(report) => {
                    if f.json {
                        println!("{}", report.to_json().render());
                    } else {
                        print!("{bench}: serve ok\n{}", report.render());
                    }
                }
                Err(e) => {
                    println!("{bench}: SERVE FAILED — {e}");
                    std::process::exit(1);
                }
            }
        }
        "trace" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let rec = strandweaver::trace::RingRecorder::new(1 << 20);
            let stats = experiment(bench, &f)
                .traced(rec.clone())
                .with_metrics()
                .run_timing();
            let path = f.out.as_deref().unwrap_or("trace.json");
            let events = rec.events();
            let body = if f.jsonl {
                strandweaver::trace::jsonl(&events)
            } else {
                strandweaver::trace::chrome_trace(&events).render()
            };
            std::fs::write(path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "{bench} lang={} design={}: {} cycles, {} events recorded ({} dropped) -> {path}",
                f.lang,
                f.design,
                stats.cycles,
                rec.recorded(),
                rec.dropped(),
            );
        }
        "perf" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let stats = experiment(bench, &f).with_profiling().run_timing();
            let snap = stats
                .perf
                .as_ref()
                .expect("profiled run carries a snapshot");
            println!(
                "{bench} lang={} design={}: {} cycles, {} events processed",
                f.lang,
                f.design,
                stats.cycles,
                stats.events.total(),
            );
            print!("{}", snap.render_table());
        }
        "bench" => {
            let bf = parse_bench_flags(&args[1..]);
            let report = sw_bench::run_bench(
                Scale::from_env(),
                &bf.filters,
                &bf.label,
                bf.warmup,
                bf.repeat,
            );
            let path = bf.out.unwrap_or_else(|| format!("BENCH_{}.json", bf.label));
            std::fs::write(&path, report.to_json().render()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            print!("{}", report.render());
            println!("wrote {path}");
        }
        "benchcmp" => {
            let (mut cur, mut base) = (None, None);
            let mut tolerance = 25.0f64;
            let mut scale_wall = 1.0f64;
            let mut floors: Vec<(String, f64)> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut next = |name: &str| -> String {
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("{name} needs a value");
                            std::process::exit(2)
                        })
                        .clone()
                };
                match a.as_str() {
                    "--tolerance" => {
                        tolerance = next("--tolerance").parse().unwrap_or_else(|_| usage())
                    }
                    "--scale-wall" => {
                        scale_wall = next("--scale-wall").parse().unwrap_or_else(|_| usage())
                    }
                    "--floor" => {
                        let spec = next("--floor");
                        let Some((target, value)) = spec.split_once(':') else {
                            eprintln!("--floor expects <target>:<events_per_sec>");
                            std::process::exit(2);
                        };
                        let value: f64 = value.parse().unwrap_or_else(|_| usage());
                        floors.push((target.to_string(), value));
                    }
                    p if !p.starts_with('-') && cur.is_none() => cur = Some(p.to_string()),
                    p if !p.starts_with('-') && base.is_none() => base = Some(p.to_string()),
                    other => {
                        eprintln!("unknown flag for benchcmp: {other}");
                        std::process::exit(2);
                    }
                }
            }
            let (Some(cur), Some(base)) = (cur, base) else {
                usage()
            };
            let load = |path: &str| -> sw_bench::BenchReport {
                let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                sw_bench::perf_report::parse(&body).unwrap_or_else(|e| {
                    eprintln!("cannot parse {path}: {e}");
                    std::process::exit(1);
                })
            };
            match sw_bench::compare_reports(
                &load(&cur),
                &load(&base),
                tolerance,
                scale_wall,
                &floors,
            ) {
                Ok(summary) => {
                    println!("perf gate: ok (tolerance +{tolerance:.0}%)");
                    print!("{summary}");
                }
                Err(e) => {
                    eprintln!("perf gate: FAIL — {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            let Some(t) = Target::from_label(other) else {
                usage()
            };
            let f = parse_figure_flags(&args[1..], t.json_ok(), t.design_ok(), t.lang_ok());
            let filters = TargetFilters {
                design: f.design,
                lang: f.lang,
            };
            check_target_legal(t, &filters);
            let out = t.run(Scale::from_env(), &filters);
            if f.json {
                println!("{}", out.json.expect("tabular target").render());
            } else {
                print!("{}", out.text);
            }
        }
    }
}
