//! `swctl` — command-line driver for the StrandWeaver reproduction.
//!
//! ```text
//! swctl run   <benchmark> [--lang txn|sfr|atlas] [--design <d>] [--redo]
//!             [--threads N] [--regions N] [--ops N]
//! swctl crash <benchmark> [--rounds N] [--design <d>] [--lang ...] [--redo]
//! swctl litmus
//! swctl table1|table2|fig7|fig8|fig9|fig10|summary
//! ```

use strandweaver::experiment::Experiment;
use strandweaver::{BenchmarkId, HwDesign, LangModel};
use sw_bench::Scale;

fn parse_bench(s: &str) -> Option<BenchmarkId> {
    BenchmarkId::ALL.into_iter().find(|b| b.label() == s)
}

fn parse_design(s: &str) -> Option<HwDesign> {
    HwDesign::ALL.into_iter().find(|d| d.label() == s)
}

fn parse_lang(s: &str) -> Option<LangModel> {
    LangModel::ALL.into_iter().find(|l| l.label() == s)
}

fn usage() -> ! {
    eprintln!(
        "usage: swctl <command>\n\
         \n  run <benchmark>    simulate one cell (flags: --lang --design --redo --threads --regions --ops)\
         \n  crash <benchmark>  crash-consistency campaign (flags as above plus --rounds)\
         \n  litmus             run the Figure 2 litmus suite\
         \n  table1|table2|fig1|fig2|fig7|fig8|fig9|fig10|summary  regenerate a table/figure\
         \n\nbenchmarks: {}\ndesigns: {}\nlangs: {}",
        BenchmarkId::ALL.map(|b| b.label()).join(" "),
        HwDesign::ALL.map(|d| d.label()).join(" "),
        LangModel::ALL.map(|l| l.label()).join(" "),
    );
    std::process::exit(2);
}

struct Flags {
    lang: LangModel,
    design: HwDesign,
    redo: bool,
    threads: usize,
    regions: usize,
    ops: usize,
    rounds: usize,
    stats: bool,
}

fn parse_flags(args: &[String]) -> Flags {
    let scale = Scale::from_env();
    let mut f = Flags {
        lang: LangModel::Txn,
        design: HwDesign::StrandWeaver,
        redo: false,
        threads: scale.threads,
        regions: scale.regions,
        ops: scale.ops_per_region,
        rounds: 100,
        stats: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2)
                })
                .clone()
        };
        match a.as_str() {
            "--lang" => f.lang = parse_lang(&next("--lang")).unwrap_or_else(|| usage()),
            "--design" => f.design = parse_design(&next("--design")).unwrap_or_else(|| usage()),
            "--redo" => f.redo = true,
            "--stats" => f.stats = true,
            "--threads" => f.threads = next("--threads").parse().unwrap_or_else(|_| usage()),
            "--regions" => f.regions = next("--regions").parse().unwrap_or_else(|_| usage()),
            "--ops" => f.ops = next("--ops").parse().unwrap_or_else(|_| usage()),
            "--rounds" => f.rounds = next("--rounds").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if f.threads == 0 || f.regions == 0 || f.ops == 0 {
        eprintln!("--threads, --regions, and --ops must be at least 1");
        std::process::exit(2);
    }
    f
}

fn experiment(bench: BenchmarkId, f: &Flags) -> Experiment {
    let e = Experiment::new(bench, f.lang, f.design)
        .threads(f.threads)
        .total_regions(f.regions)
        .ops_per_region(f.ops);
    if f.redo {
        e.redo()
    } else {
        e
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "run" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let stats = experiment(bench, &f).run_timing();
            println!(
                "{bench} lang={} design={} redo={}: {} cycles, {} clwbs, ckc {:.2}, \
                 persist stalls {}, lock stalls {}",
                f.lang,
                f.design,
                f.redo,
                stats.cycles,
                stats.total_clwbs(),
                stats.ckc(),
                stats.persist_stall_cycles(),
                stats.lock_stall_cycles(),
            );
            if f.stats {
                print!("{}", stats.report());
            }
        }
        "crash" => {
            let Some(bench) = args.get(1).and_then(|s| parse_bench(s)) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            match experiment(bench, &f).run_crash_campaign(f.rounds) {
                Ok(()) => println!("{bench}: {} crash states recovered consistently", f.rounds),
                Err(e) => {
                    println!("{bench}: INCONSISTENT — {e}");
                    std::process::exit(1);
                }
            }
        }
        "litmus" | "fig2" => print!("{}", sw_bench::fig2_report()),
        "fig1" => print!("{}", sw_bench::fig1_report()),
        "table1" => print!("{}", sw_bench::table1()),
        "table2" => {
            let rows = sw_bench::table2(Scale::from_env());
            print!("{}", sw_bench::table2_report(&rows));
        }
        "fig7" => print!(
            "{}",
            sw_bench::fig7_report(&sw_bench::full_sweep(Scale::from_env()))
        ),
        "fig8" => print!(
            "{}",
            sw_bench::fig8_report(&sw_bench::full_sweep(Scale::from_env()))
        ),
        "fig9" => print!("{}", sw_bench::fig9_report(Scale::from_env())),
        "fig10" => print!("{}", sw_bench::fig10_report(Scale::from_env())),
        "summary" => {
            let cells = sw_bench::full_sweep(Scale::from_env());
            print!("{}", sw_bench::summary_report(&cells));
            print!("{}", sw_bench::lang_sensitivity_report(&cells));
        }
        _ => usage(),
    }
}
