//! Prints Table I (simulator configuration)
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Table1.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
