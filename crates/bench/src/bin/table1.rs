//! Prints Table I (simulator configuration).
fn main() {
    print!("{}", sw_bench::table1());
}
