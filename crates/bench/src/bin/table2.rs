//! Regenerates Table II (benchmarks and CKC write intensity).
use sw_bench::{table2, table2_report, Scale};
fn main() {
    let rows = table2(Scale::from_env());
    print!("{}", table2_report(&rows));
}
