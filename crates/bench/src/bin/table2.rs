//! Regenerates Table II (benchmarks and CKC write intensity)
//! (thin wrapper over [`sw_bench::Target`]).
use sw_bench::{Scale, Target, TargetFilters};
fn main() {
    let out = Target::Table2.run(Scale::from_env(), &TargetFilters::default());
    print!("{}", out.text);
}
