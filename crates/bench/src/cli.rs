//! Shared strict command-line parsing for `swctl` subcommands.
//!
//! Every workload-style subcommand (`run`, `crash`, `faults`, `heap`,
//! `chaos`, `trace`, `perf`, `serve`) accepts the same strict flag set:
//! `--lang`/`--design` resolved against the model/design registries,
//! numeric scale flags validated to be at least 1, `--seed` pinning
//! determinism, and *any* unknown flag rejected with exit code 2. Keeping
//! the parser here — instead of duplicated per subcommand — means new
//! subcommands get the contract for free and the error strings stay
//! reconciled.
//!
//! The library layer never exits the process: parsers return
//! [`CliError`], and the binary decides whether to print the message or
//! the full usage text before exiting 2.

use strandweaver::{BenchmarkId, HwDesign, LangModel};

use crate::Scale;

/// How a strict parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A named error the binary prints verbatim before exiting 2.
    Message(String),
    /// A malformed value: the binary falls back to the full usage text
    /// (still exit 2).
    Usage,
}

impl CliError {
    fn msg(m: impl Into<String>) -> Self {
        CliError::Message(m.into())
    }
}

/// Resolves a benchmark label.
pub fn parse_bench(s: &str) -> Option<BenchmarkId> {
    BenchmarkId::ALL.into_iter().find(|b| b.label() == s)
}

/// Resolves a `--design` value with a named error (not the generic usage
/// text) on an unknown label.
pub fn parse_design(s: &str) -> Result<HwDesign, CliError> {
    HwDesign::from_label(s).ok_or_else(|| {
        CliError::msg(format!(
            "unknown design '{s}' (valid: {})",
            HwDesign::ALL.map(|d| d.label()).join(" ")
        ))
    })
}

/// Resolves a `--lang` value with a named error (not the generic usage
/// text) on an unknown label.
pub fn parse_lang(s: &str) -> Result<LangModel, CliError> {
    LangModel::from_label(s).ok_or_else(|| {
        CliError::msg(format!(
            "unknown lang '{s}' (valid: {})",
            LangModel::ALL.map(|l| l.label()).join(" ")
        ))
    })
}

/// Rejects an illegal language model × hardware design combination (the
/// log-free Native model requires an eADR-class design).
pub fn check_legal(lang: LangModel, design: HwDesign) -> Result<(), CliError> {
    if lang.legal_on(design) {
        Ok(())
    } else {
        Err(CliError::msg(format!(
            "lang '{lang}' is not legal on design '{design}': it needs a design that \
             persists stores at visibility (eADR-class)"
        )))
    }
}

/// The strict flag set shared by the workload subcommands.
#[derive(Debug, Clone)]
pub struct Flags {
    /// Language-level persistency model (`--lang`).
    pub lang: LangModel,
    /// Hardware design (`--design`).
    pub design: HwDesign,
    /// Redo-log lowering (`--redo`).
    pub redo: bool,
    /// Simulated cores (`--threads`).
    pub threads: usize,
    /// Total failure-atomic regions (`--regions`).
    pub regions: usize,
    /// Operations per region (`--ops`).
    pub ops: usize,
    /// Campaign rounds (`--rounds`).
    pub rounds: usize,
    /// Print the per-core stats report (`--stats`).
    pub stats: bool,
    /// Machine-readable output (`--json`).
    pub json: bool,
    /// JSON-lines trace export (`--jsonl`).
    pub jsonl: bool,
    /// Output path (`--out`).
    pub out: Option<String>,
    /// Store-queue entries override (`--sq`).
    pub sq: Option<usize>,
    /// Persist-queue entries override (`--pq`).
    pub pq: Option<usize>,
    /// Deterministic seed (`--seed`).
    pub seed: Option<u64>,
}

fn next_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    name: &str,
) -> Result<&'a String, CliError> {
    it.next()
        .ok_or_else(|| CliError::msg(format!("{name} needs a value")))
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| CliError::Usage)
}

/// Parses the shared strict flag set. Unknown flags are an error; scale
/// flags must be at least 1; the lang × design pair must be legal.
/// Defaults come from [`Scale::from_env`].
pub fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let scale = Scale::from_env();
    let mut f = Flags {
        lang: LangModel::Txn,
        design: HwDesign::StrandWeaver,
        redo: false,
        threads: scale.threads,
        regions: scale.regions,
        ops: scale.ops_per_region,
        rounds: 100,
        stats: false,
        json: false,
        jsonl: false,
        out: None,
        sq: None,
        pq: None,
        seed: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--lang" => f.lang = parse_lang(next_value(&mut it, "--lang")?)?,
            "--design" => f.design = parse_design(next_value(&mut it, "--design")?)?,
            "--redo" => f.redo = true,
            "--stats" => f.stats = true,
            "--json" => f.json = true,
            "--jsonl" => f.jsonl = true,
            "--out" => f.out = Some(next_value(&mut it, "--out")?.clone()),
            "--threads" => f.threads = num(next_value(&mut it, "--threads")?)?,
            "--regions" => f.regions = num(next_value(&mut it, "--regions")?)?,
            "--ops" => f.ops = num(next_value(&mut it, "--ops")?)?,
            "--rounds" => f.rounds = num(next_value(&mut it, "--rounds")?)?,
            "--sq" => f.sq = Some(num(next_value(&mut it, "--sq")?)?),
            "--pq" => f.pq = Some(num(next_value(&mut it, "--pq")?)?),
            "--seed" => f.seed = Some(num(next_value(&mut it, "--seed")?)?),
            other => return Err(CliError::msg(format!("unknown flag: {other}"))),
        }
    }
    if f.threads == 0 || f.regions == 0 || f.ops == 0 {
        return Err(CliError::msg(
            "--threads, --regions, and --ops must be at least 1",
        ));
    }
    check_legal(f.lang, f.design)?;
    Ok(f)
}

/// Removes a boolean subcommand-specific switch (e.g. `--sweep`, `--heap`)
/// from `args` before they reach [`parse_flags`], which would otherwise
/// reject it. Returns whether the switch was present.
pub fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Removes a subcommand-specific `name <value>` flag pair from `args`
/// before they reach [`parse_flags`]. Returns the value when present,
/// an error when the flag is last (no value follows).
pub fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            if i < args.len() {
                Ok(Some(args.remove(i)))
            } else {
                Err(CliError::msg(format!("{name} needs a value")))
            }
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn defaults_and_overrides_parse() {
        let f = parse_flags(&argv(
            "--lang sfr --design intel-x86 --threads 3 --regions 9 --ops 2 --seed 7",
        ))
        .expect("valid flags");
        assert_eq!(f.lang, LangModel::Sfr);
        assert_eq!(f.design, HwDesign::IntelX86);
        assert_eq!((f.threads, f.regions, f.ops), (3, 9, 2));
        assert_eq!(f.seed, Some(7));
        assert!(!f.json && !f.redo);
    }

    #[test]
    fn unknown_flag_is_a_named_error() {
        let e = parse_flags(&argv("--bogus")).unwrap_err();
        assert_eq!(e, CliError::Message("unknown flag: --bogus".into()));
    }

    #[test]
    fn missing_value_is_a_named_error() {
        let e = parse_flags(&argv("--seed")).unwrap_err();
        assert_eq!(e, CliError::Message("--seed needs a value".into()));
    }

    #[test]
    fn malformed_number_falls_back_to_usage() {
        assert_eq!(
            parse_flags(&argv("--threads two")).unwrap_err(),
            CliError::Usage
        );
    }

    #[test]
    fn zero_scale_is_rejected() {
        let e = parse_flags(&argv("--threads 0")).unwrap_err();
        assert!(matches!(e, CliError::Message(m) if m.contains("at least 1")));
    }

    #[test]
    fn illegal_lang_design_pair_is_rejected() {
        // The log-free native model needs an eADR-class design.
        let e = parse_flags(&argv("--lang native --design intel-x86")).unwrap_err();
        assert!(matches!(e, CliError::Message(m) if m.contains("not legal")));
        assert!(parse_flags(&argv("--lang native --design eadr")).is_ok());
    }

    #[test]
    fn unknown_lang_and_design_name_their_valid_sets() {
        let e = parse_lang("pascal").unwrap_err();
        assert!(matches!(e, CliError::Message(m) if m.contains("valid:")));
        let e = parse_design("vax").unwrap_err();
        assert!(matches!(e, CliError::Message(m) if m.contains("valid:")));
    }

    #[test]
    fn take_switch_strips_only_its_flag() {
        let mut args = argv("--sweep --json");
        assert!(take_switch(&mut args, "--sweep"));
        assert!(!take_switch(&mut args, "--sweep"));
        assert_eq!(args, argv("--json"));
    }

    #[test]
    fn take_value_strips_flag_and_value() {
        let mut args = argv("--load 0.9 --json");
        assert_eq!(take_value(&mut args, "--load").unwrap(), Some("0.9".into()));
        assert_eq!(args, argv("--json"));
        assert_eq!(take_value(&mut args, "--load").unwrap(), None);
        let mut dangling = argv("--json --load");
        let e = take_value(&mut dangling, "--load").unwrap_err();
        assert_eq!(e, CliError::Message("--load needs a value".into()));
    }

    #[test]
    fn bench_labels_resolve() {
        assert_eq!(parse_bench("queue"), Some(BenchmarkId::Queue));
        assert_eq!(parse_bench("no-such-bench"), None);
    }
}
