//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (Section VI).
//!
//! Each `fig*`/`table*` function runs the corresponding experiment and
//! returns a formatted report; the binaries in `src/bin/` are thin wrappers
//! and `benches/figures.rs` regenerates everything in one pass (run with
//! `cargo bench -p sw-bench --bench figures`).
//!
//! Scale: the paper simulates 50 K operations in gem5; these runs default
//! to 240 regions × 4 operations so a full table/figure sweep completes in
//! minutes. Set `SW_BENCH_REGIONS` / `SW_BENCH_THREADS` /
//! `SW_BENCH_OPS_PER_REGION` to change the scale — relative results (who
//! wins, by what factor) are stable across scales.

#![warn(missing_docs)]

pub mod cli;
pub mod perf_report;
pub mod targets;

pub use perf_report::{compare_reports, run_bench, BenchPhase, BenchReport, BenchTargetResult};
pub use targets::{sweep_designs, Target, TargetFilters, TargetOutput};

use std::fmt::Write as _;

use strandweaver::experiment::{design_sweep_of, Experiment};
use strandweaver::model::litmus;
use strandweaver::{BenchmarkId, HwDesign, LangModel, MemoryModel, SimConfig, SimStats};
use sw_trace::Json;

/// Run scale shared by all figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Threads (= cores).
    pub threads: usize,
    /// Total failure-atomic regions per run.
    pub regions: usize,
    /// Operations per region.
    pub ops_per_region: usize,
}

impl Scale {
    /// Reads the scale from the environment (defaults: 8 threads, 240
    /// regions, 4 ops/region).
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Self {
            threads: get("SW_BENCH_THREADS", 8),
            regions: get("SW_BENCH_REGIONS", 240),
            ops_per_region: get("SW_BENCH_OPS_PER_REGION", 4),
        }
    }

    fn experiment(&self, bench: BenchmarkId, lang: LangModel, design: HwDesign) -> Experiment {
        Experiment::new(bench, lang, design)
            .threads(self.threads)
            .total_regions(self.regions)
            .ops_per_region(self.ops_per_region)
    }
}

/// Table I: the simulated machine configuration.
pub fn table1() -> String {
    let c = SimConfig::table_i();
    let mut s = String::new();
    let _ = writeln!(s, "Table I — Simulator specifications");
    let _ = writeln!(
        s,
        "  Core        {} cores, 2 GHz, in-order issue w/ OoO fence semantics",
        c.cores
    );
    let _ = writeln!(
        s,
        "              {}-entry store queue, {}-entry persist queue",
        c.store_queue_entries, c.persist_queue_entries
    );
    let _ = writeln!(
        s,
        "  D-Cache     32kB {}-way 64B, {} cycles hit, {} flush slots (MSHRs)",
        c.l1_ways, c.l1_hit_cycles, c.intel_flush_slots
    );
    let _ = writeln!(s, "  L2-Cache    shared, {} cycles hit", c.l2_hit_cycles);
    let _ = writeln!(
        s,
        "  Strand unit {} buffers x {} entries",
        c.strand_buffers, c.strand_buffer_entries
    );
    let _ = writeln!(
        s,
        "  PM          {}-cycle read (346ns), {}-cycle write-to-controller ack (96ns),",
        c.pm_read_cycles, c.pm_write_ack_cycles
    );
    let _ = writeln!(
        s,
        "              {}-entry ADR write queue, 1 media write / {} cycles",
        c.pm_write_queue, c.pm_drain_interval
    );
    let _ = writeln!(s, "  DRAM        {} cycles access", c.dram_cycles);
    s
}

/// One Table II row: benchmark and measured write intensity.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark.
    pub bench: BenchmarkId,
    /// CLWBs per thousand cycles on the non-atomic design.
    pub ckc: f64,
    /// The paper's reported CKC.
    pub paper_ckc: f64,
    /// Simulated cycles of the measuring run.
    pub cycles: u64,
    /// Discrete events processed by the measuring run.
    pub events_processed: u64,
}

/// The paper's Table II CKC values, in `BenchmarkId::ALL` order.
pub const PAPER_CKC: [f64; 8] = [0.78, 4.83, 4.45, 3.46, 1.58, 4.41, 8.06, 10.05];

/// Table II: benchmarks and their write intensity (CKC, measured on the
/// non-atomic design under failure-atomic transactions).
pub fn table2(scale: Scale) -> Vec<Table2Row> {
    BenchmarkId::ALL
        .iter()
        .zip(PAPER_CKC)
        .map(|(&bench, paper_ckc)| {
            let stats = scale
                .experiment(bench, LangModel::Txn, HwDesign::NonAtomic)
                .run_timing();
            Table2Row {
                bench,
                ckc: stats.ckc(),
                paper_ckc,
                cycles: stats.cycles,
                events_processed: stats.events.total(),
            }
        })
        .collect()
}

/// Formats Table II.
pub fn table2_report(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table II — Benchmarks and write intensity (CKC = CLWBs / kilocycle)"
    );
    let _ = writeln!(s, "  {:12} {:>10} {:>10}", "benchmark", "measured", "paper");
    for r in rows {
        let _ = writeln!(
            s,
            "  {:12} {:>10.2} {:>10.2}",
            r.bench.label(),
            r.ckc,
            r.paper_ckc
        );
    }
    s
}

/// One Figure 7/8 cell: every design's stats for a benchmark × language
/// model, with identical logical work.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Benchmark.
    pub bench: BenchmarkId,
    /// Language model.
    pub lang: LangModel,
    /// `(design, stats)` for every swept design, in sweep order (all
    /// registered designs by default; a `--design` filter narrows it).
    pub designs: Vec<(HwDesign, SimStats)>,
}

impl SweepCell {
    /// Cycles of `design`.
    pub fn cycles(&self, design: HwDesign) -> u64 {
        self.designs
            .iter()
            .find(|(d, _)| *d == design)
            .expect("design present")
            .1
            .cycles
    }

    /// Speedup of `design` over the Intel x86 baseline.
    pub fn speedup(&self, design: HwDesign) -> f64 {
        self.cycles(HwDesign::IntelX86) as f64 / self.cycles(design) as f64
    }

    /// Discrete events processed across every design's run of this cell.
    pub fn events_processed(&self) -> u64 {
        self.designs.iter().map(|(_, s)| s.events.total()).sum()
    }

    /// Simulated cycles summed across every design's run of this cell.
    pub fn sim_cycles(&self) -> u64 {
        self.designs.iter().map(|(_, s)| s.cycles).sum()
    }

    /// Persist-ordering stall cycles of `design`, normalized to Intel x86
    /// (the Figure 8 metric).
    pub fn stall_ratio(&self, design: HwDesign) -> f64 {
        let intel = self
            .designs
            .iter()
            .find(|(d, _)| *d == HwDesign::IntelX86)
            .expect("intel present")
            .1
            .persist_stall_cycles() as f64;
        let d = self
            .designs
            .iter()
            .find(|(x, _)| *x == design)
            .expect("design present")
            .1
            .persist_stall_cycles() as f64;
        if intel == 0.0 {
            0.0
        } else {
            d / intel
        }
    }
}

/// Runs the full Figure 7/8 sweep: every benchmark × language model ×
/// design. This is the workhorse; Figures 7, 8 and the summary all read
/// from its output.
pub fn full_sweep(scale: Scale) -> Vec<SweepCell> {
    full_sweep_of(scale, &HwDesign::ALL)
}

/// As [`full_sweep`], restricted to `designs` (the `swctl --design`
/// filter), sweeping every language model legal on all of them.
pub fn full_sweep_of(scale: Scale, designs: &[HwDesign]) -> Vec<SweepCell> {
    full_sweep_matrix(scale, designs, &LangModel::ALL)
}

/// The fully-filtered sweep: `designs` × the subset of `langs` legal on
/// every swept design (a [`SweepCell`] holds one language model's stats
/// for *all* designs, so a model that cannot run on one of them — the
/// log-free Native model off eADR — is skipped; `swctl` validates explicit
/// filters before calling, so a skip here is never silent). The (language
/// model × benchmark) cells run on concurrent threads — each cell
/// regenerates its own workload from the shared seed and owns its
/// machines, so the cells are independent — and each cell's design sweep
/// fans out further inside [`design_sweep_of`].
pub fn full_sweep_matrix(
    scale: Scale,
    designs: &[HwDesign],
    langs: &[LangModel],
) -> Vec<SweepCell> {
    let mut pairs = Vec::new();
    for &lang in langs {
        if !designs.iter().all(|&d| lang.legal_on(d)) {
            continue;
        }
        for &bench in &BenchmarkId::ALL {
            pairs.push((lang, bench));
        }
    }
    let cell = |(lang, bench): (LangModel, BenchmarkId)| {
        let proto_design = *designs.first().unwrap_or(&HwDesign::StrandWeaver);
        let proto = scale.experiment(bench, lang, proto_design);
        SweepCell {
            bench,
            lang,
            designs: design_sweep_of(designs, bench, lang, &proto),
        }
    };
    // Threads cannot overlap compute on a single hardware thread; run the
    // cells inline there (identical results either way).
    if !strandweaver::experiment::host_is_multicore() {
        return pairs.into_iter().map(cell).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .iter()
            .map(|&pair| s.spawn(move || cell(pair)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep cell thread panicked"))
            .collect()
    })
}

/// The designs the cells were swept over, in sweep order. The report
/// columns derive from this, so a registered design (or a `--design`
/// filter) shows up without touching the formatters.
fn swept_designs(cells: &[SweepCell]) -> Vec<HwDesign> {
    cells
        .first()
        .map(|c| c.designs.iter().map(|(d, _)| *d).collect())
        .unwrap_or_default()
}

/// Figure 7: speedup over Intel x86 per benchmark, language model, design.
pub fn fig7_report(cells: &[SweepCell]) -> String {
    let designs = swept_designs(cells);
    let mut s = String::new();
    let _ = writeln!(s, "Figure 7 — Speedup over the Intel x86 design");
    for &lang in &LangModel::ALL {
        if !cells.iter().any(|c| c.lang == lang) {
            continue;
        }
        let _ = writeln!(s, "  [{}]", lang.label());
        let _ = write!(s, "  {:12}", "benchmark");
        for d in &designs {
            let _ = write!(s, " {:>w$}", d.label(), w = col_width(*d));
        }
        let _ = writeln!(s);
        for cell in cells.iter().filter(|c| c.lang == lang) {
            let _ = write!(s, "  {:12}", cell.bench.label());
            for d in &designs {
                let _ = write!(s, " {:>w$.2}x", cell.speedup(*d), w = col_width(*d) - 1);
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Column width for a design's figure column: wide enough for its label
/// and for a `{:>8.2}x` value.
fn col_width(d: HwDesign) -> usize {
    d.label().len().max(9)
}

/// Figure 8: persist-ordering CPU stalls, normalized to Intel x86. The
/// non-atomic design is the no-ordering bound and is omitted, as in the
/// paper.
pub fn fig8_report(cells: &[SweepCell]) -> String {
    let designs: Vec<HwDesign> = swept_designs(cells)
        .into_iter()
        .filter(|d| *d != HwDesign::NonAtomic)
        .collect();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 8 — Persist-ordering CPU stalls (normalized to Intel x86)"
    );
    for &lang in &LangModel::ALL {
        if !cells.iter().any(|c| c.lang == lang) {
            continue;
        }
        let _ = writeln!(s, "  [{}]", lang.label());
        let _ = write!(s, "  {:12}", "benchmark");
        for d in &designs {
            let _ = write!(s, " {:>w$}", d.label(), w = col_width(*d));
        }
        let _ = writeln!(s);
        for cell in cells.iter().filter(|c| c.lang == lang) {
            let _ = write!(s, "  {:12}", cell.bench.label());
            for d in &designs {
                let _ = write!(s, " {:>w$.2}", cell.stall_ratio(*d), w = col_width(*d));
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// The Figure 9 strand-buffer-unit shapes `(buffers, entries per buffer)`.
pub const FIG9_SHAPES: [(usize, usize); 5] = [(2, 2), (4, 2), (2, 4), (4, 4), (8, 8)];

/// The four microbenchmarks swept by Figures 9 and 10.
const MICROBENCHES: [BenchmarkId; 4] = [
    BenchmarkId::Queue,
    BenchmarkId::Hashmap,
    BenchmarkId::ArraySwap,
    BenchmarkId::RbTree,
];

/// A labelled numeric matrix — benchmark rows × configuration columns with
/// a geometric-mean footer. Figures 9 and 10 share this shape; it renders
/// as the figures' plain-text table or serializes for `--json`.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Report heading.
    pub title: String,
    /// One label per column.
    pub col_labels: Vec<String>,
    /// `(row label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Geometric mean of each column across the rows.
    pub geomean: Vec<f64>,
    /// Discrete events processed across every run behind the matrix
    /// (baseline and measured), for events/sec accounting.
    pub events_processed: u64,
    /// Simulated cycles summed across every run behind the matrix.
    pub sim_cycles: u64,
}

impl MatrixReport {
    fn from_rows(title: &str, col_labels: Vec<String>, rows: Vec<(String, Vec<f64>)>) -> Self {
        let mut geomean = vec![1.0f64; col_labels.len()];
        for (_, vals) in &rows {
            for (g, v) in geomean.iter_mut().zip(vals) {
                *g *= v;
            }
        }
        let n = rows.len().max(1) as f64;
        for g in &mut geomean {
            *g = g.powf(1.0 / n);
        }
        Self {
            title: title.to_string(),
            col_labels,
            rows,
            geomean,
            events_processed: 0,
            sim_cycles: 0,
        }
    }

    /// Plain-text table in the figures' house style.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.title);
        let _ = write!(s, "  {:12}", "benchmark");
        for c in &self.col_labels {
            let _ = write!(s, " {c:>9}");
        }
        let _ = writeln!(s);
        let mut row = |label: &str, vals: &[f64]| {
            let _ = write!(s, "  {label:12}");
            for v in vals {
                let _ = write!(s, " {v:>8.2}x");
            }
            let _ = writeln!(s);
        };
        for (label, vals) in &self.rows {
            row(label, vals);
        }
        row("geomean", &self.geomean);
        s
    }

    /// JSON object (`swctl fig9 --json`, `swctl fig10 --json`).
    pub fn to_json(&self) -> Json {
        let f64s = |xs: &[f64]| Json::Arr(xs.iter().map(|v| Json::F64(*v)).collect());
        Json::obj([
            ("title", Json::Str(self.title.clone())),
            (
                "columns",
                Json::Arr(
                    self.col_labels
                        .iter()
                        .map(|c| Json::Str(c.clone()))
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(l, vals)| {
                            Json::obj([("label", Json::Str(l.clone())), ("values", f64s(vals))])
                        })
                        .collect(),
                ),
            ),
            ("geomean", f64s(&self.geomean)),
            ("events_processed", Json::U64(self.events_processed)),
            ("sim_cycles", Json::U64(self.sim_cycles)),
        ])
    }
}

/// Figure 9 data: sensitivity to the strand-buffer-unit configuration,
/// speedup over Intel x86 per microbenchmark. `measured` picks the design
/// on the y axis (the paper measures StrandWeaver; designs without strand
/// buffers are flat across the shapes) and `lang` the language model (the
/// paper's figure uses SFR; the `swctl --lang` filter swaps it). The
/// caller validates `lang` legality on both `measured` and the Intel
/// baseline.
pub fn fig9_matrix(scale: Scale, measured: HwDesign, lang: LangModel) -> MatrixReport {
    let cols = FIG9_SHAPES
        .into_iter()
        .map(|(b, e)| format!("({b},{e})"))
        .collect();
    let mut events_processed = 0u64;
    let mut sim_cycles = 0u64;
    let rows = MICROBENCHES
        .into_iter()
        .map(|bench| {
            let intel = scale
                .experiment(bench, lang, HwDesign::IntelX86)
                .run_timing();
            events_processed += intel.events.total();
            sim_cycles += intel.cycles;
            let vals = FIG9_SHAPES
                .into_iter()
                .map(|(b, e)| {
                    let stats = scale
                        .experiment(bench, lang, measured)
                        .strand_buffers(b, e)
                        .run_timing();
                    events_processed += stats.events.total();
                    sim_cycles += stats.cycles;
                    intel.cycles as f64 / stats.cycles as f64
                })
                .collect();
            (bench.label().to_string(), vals)
        })
        .collect();
    let mut m = MatrixReport::from_rows(
        &format!(
            "Figure 9 — Sensitivity to (strand buffers, entries per buffer), {}, {}",
            lang.label().to_uppercase(),
            measured.label()
        ),
        cols,
        rows,
    );
    m.events_processed = events_processed;
    m.sim_cycles = sim_cycles;
    m
}

/// Figure 9 rendered as text (the paper's StrandWeaver/SFR measurement).
pub fn fig9_report(scale: Scale) -> String {
    fig9_matrix(scale, HwDesign::StrandWeaver, LangModel::Sfr).render()
}

/// Figure 10 data: speedup over Intel x86 as operations per region vary,
/// for the `measured` design under `lang` (the paper measures StrandWeaver
/// under SFR). The caller validates `lang` legality on both `measured` and
/// the Intel baseline.
pub fn fig10_matrix(scale: Scale, measured: HwDesign, lang: LangModel) -> MatrixReport {
    let ops_axis = [2usize, 4, 8, 16, 32];
    let cols = ops_axis.into_iter().map(|o| format!("{o} ops")).collect();
    let mut events_processed = 0u64;
    let mut sim_cycles = 0u64;
    let rows = MICROBENCHES
        .into_iter()
        .map(|bench| {
            let vals = ops_axis
                .into_iter()
                .map(|ops| {
                    // Hold total logical work constant across the axis.
                    let regions = (scale.regions * scale.ops_per_region / ops).max(scale.threads);
                    let mk = |design| {
                        Experiment::new(bench, lang, design)
                            .threads(scale.threads)
                            .total_regions(regions)
                            .ops_per_region(ops)
                    };
                    let sw = mk(measured).run_timing();
                    let intel = mk(HwDesign::IntelX86).run_timing();
                    events_processed += sw.events.total() + intel.events.total();
                    sim_cycles += sw.cycles + intel.cycles;
                    intel.cycles as f64 / sw.cycles as f64
                })
                .collect();
            (bench.label().to_string(), vals)
        })
        .collect();
    let mut m = MatrixReport::from_rows(
        &format!(
            "Figure 10 — Speedup vs. operations per failure-atomic {}, {}",
            lang.label().to_uppercase(),
            measured.label()
        ),
        cols,
        rows,
    );
    m.events_processed = events_processed;
    m.sim_cycles = sim_cycles;
    m
}

/// Figure 10 rendered as text (the paper's StrandWeaver/SFR measurement).
pub fn fig10_report(scale: Scale) -> String {
    fig10_matrix(scale, HwDesign::StrandWeaver, LangModel::Sfr).render()
}

/// Figure 2: litmus outcomes under the strand persistency model.
pub fn fig2_report() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 2 — Strand persistency litmus tests");
    for l in litmus::all() {
        let out = l.run(MemoryModel::StrandWeaver);
        let _ = writeln!(
            s,
            "  {:28} reachable states: {:3}  forbidden hit: {}  required missing: {}  => {}",
            l.name,
            out.reachable.len(),
            out.violations.len(),
            out.missing.len(),
            if out.passed() { "PASS" } else { "FAIL" }
        );
    }
    s
}

/// Figure 1 companion: the motivating ordering example — under an epoch
/// model the independent persist C serializes behind A; under strands it
/// does not.
pub fn fig1_report() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 1(e,f) — desired order A -> B with C independent");
    let strand = litmus::fig1_ef_strand();
    let out = strand.run(MemoryModel::StrandWeaver);
    let _ = writeln!(
        s,
        "  strand persistency: C-before-A state reachable: {} (concurrency preserved)",
        out.reachable.contains(&vec![0, 0, 1])
    );
    // The same intent under an epoch model: C after the barrier.
    let mut p = strandweaver::model::Program::new(1);
    use strandweaver::model::OpKind;
    p.push(0, OpKind::store(litmus::loc_a(), 1));
    p.push(0, OpKind::Sfence);
    p.push(0, OpKind::store(litmus::loc_b(), 1));
    p.push(0, OpKind::store(litmus::loc_c(), 1));
    let epoch = strandweaver::model::litmus::Litmus {
        name: "fig1f-epoch".into(),
        program: p,
        observe: vec![litmus::loc_a(), litmus::loc_b(), litmus::loc_c()],
        forbidden: vec![],
        required: vec![],
        vmo_filter: None,
    };
    let out = epoch.run(MemoryModel::IntelX86);
    let _ = writeln!(
        s,
        "  epoch persistency:  C-before-A state reachable: {} (C serialized after A)",
        out.reachable.contains(&vec![0, 0, 1])
    );
    s
}

/// Headline numbers (Section VI-B): average/max speedups of StrandWeaver
/// over Intel x86 and HOPS, stall reduction, distance to non-atomic.
pub fn summary_report(cells: &[SweepCell]) -> String {
    let geo = |xs: &[f64]| xs.iter().product::<f64>().powf(1.0 / xs.len() as f64);
    let over_intel: Vec<f64> = cells
        .iter()
        .map(|c| c.speedup(HwDesign::StrandWeaver))
        .collect();
    let over_hops: Vec<f64> = cells
        .iter()
        .map(|c| c.cycles(HwDesign::Hops) as f64 / c.cycles(HwDesign::StrandWeaver) as f64)
        .collect();
    let below_na: Vec<f64> = cells
        .iter()
        .map(|c| c.cycles(HwDesign::StrandWeaver) as f64 / c.cycles(HwDesign::NonAtomic) as f64)
        .collect();
    let stall: Vec<f64> = cells
        .iter()
        .map(|c| c.stall_ratio(HwDesign::StrandWeaver))
        .collect();
    let eadr: Vec<f64> = cells.iter().map(|c| c.speedup(HwDesign::Eadr)).collect();
    let sw_vs_eadr: Vec<f64> = cells
        .iter()
        .map(|c| c.cycles(HwDesign::StrandWeaver) as f64 / c.cycles(HwDesign::Eadr) as f64)
        .collect();
    let max = |xs: &[f64]| xs.iter().cloned().fold(f64::MIN, f64::max);
    let mut s = String::new();
    let _ = writeln!(s, "Headline numbers (paper values in parentheses)");
    let _ = writeln!(
        s,
        "  StrandWeaver over Intel x86: {:.2}x avg (1.45x), {:.2}x max (1.97x)",
        geo(&over_intel),
        max(&over_intel)
    );
    let _ = writeln!(
        s,
        "  StrandWeaver over HOPS:      {:.2}x avg (1.20x), {:.2}x max (1.55x)",
        geo(&over_hops),
        max(&over_hops)
    );
    let _ = writeln!(
        s,
        "  Persist-stall cycles vs Intel: {:.1}% of baseline (paper: 62.4% fewer)",
        geo(&stall) * 100.0
    );
    let _ = writeln!(
        s,
        "  Slowdown vs non-atomic bound: {:.1}% (paper: 3.1-5.7%)",
        (geo(&below_na) - 1.0) * 100.0
    );
    let _ = writeln!(
        s,
        "  eADR (battery-backed caches) over Intel x86: {:.2}x avg, {:.2}x max",
        geo(&eadr),
        max(&eadr)
    );
    let _ = writeln!(
        s,
        "  StrandWeaver within {:.1}% of the eADR persistent-cache bound",
        (geo(&sw_vs_eadr) - 1.0) * 100.0
    );
    s
}

/// Table II as JSON (`swctl table2 --json`).
pub fn table2_json(rows: &[Table2Row]) -> Json {
    Json::obj([(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("benchmark", Json::Str(r.bench.label().to_string())),
                        ("ckc", Json::F64(r.ckc)),
                        ("paper_ckc", Json::F64(r.paper_ckc)),
                        ("cycles", Json::U64(r.cycles)),
                        ("events_processed", Json::U64(r.events_processed)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// The Figure 7/8 sweep as JSON: one object per cell with raw cycles and
/// the derived speedup / stall-ratio metrics per design
/// (`swctl fig7 --json`, `swctl fig8 --json`).
pub fn sweep_json(cells: &[SweepCell]) -> Json {
    Json::obj([(
        "cells",
        Json::Arr(
            cells
                .iter()
                .map(|cell| {
                    Json::obj([
                        ("benchmark", Json::Str(cell.bench.label().to_string())),
                        ("lang", Json::Str(cell.lang.label().to_string())),
                        (
                            "designs",
                            Json::Arr(
                                cell.designs
                                    .iter()
                                    .map(|(design, stats)| {
                                        Json::obj([
                                            ("design", Json::Str(design.label().to_string())),
                                            ("cycles", Json::U64(stats.cycles)),
                                            ("events_processed", Json::U64(stats.events.total())),
                                            (
                                                "persist_stall_cycles",
                                                Json::U64(stats.persist_stall_cycles()),
                                            ),
                                            (
                                                "speedup_over_intel",
                                                Json::F64(cell.speedup(*design)),
                                            ),
                                            ("stall_ratio", Json::F64(cell.stall_ratio(*design))),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// One Native-bound row: cycles of one benchmark on the three runs that
/// decompose the eADR bound — Intel/TXN (the software+hardware baseline),
/// eADR/TXN (hardware only: persist-at-visibility caches, log retained),
/// and eADR/Native (hardware plus the log deleted).
#[derive(Debug, Clone)]
pub struct NativeBoundRow {
    /// Benchmark.
    pub bench: BenchmarkId,
    /// Cycles under TXN on the Intel x86 design.
    pub intel_txn: u64,
    /// Cycles under TXN on eADR (same logging, no flush/fence lowering).
    pub eadr_txn: u64,
    /// Cycles under log-free Native on eADR.
    pub eadr_native: u64,
    /// Discrete events processed across the row's three runs.
    pub events_processed: u64,
}

impl NativeBoundRow {
    /// Total eADR+Native speedup over the Intel/TXN baseline.
    pub fn total(&self) -> f64 {
        self.intel_txn as f64 / self.eadr_native as f64
    }

    /// The hardware share: what eADR buys while the log is kept.
    pub fn hardware(&self) -> f64 {
        self.intel_txn as f64 / self.eadr_txn as f64
    }

    /// The software share: what deleting the log buys on top, on eADR.
    pub fn log_deletion(&self) -> f64 {
        self.eadr_txn as f64 / self.eadr_native as f64
    }
}

/// Runs the Native-bound decomposition for every benchmark: Intel/TXN vs
/// eADR/TXN vs eADR/Native, with identical logical work. TXN is the
/// logged comparison point because Native shares its `sync_cost`, so the
/// eADR/TXN → eADR/Native delta isolates the logging code itself.
pub fn native_bound(scale: Scale) -> Vec<NativeBoundRow> {
    BenchmarkId::ALL
        .iter()
        .map(|&bench| {
            let intel = scale
                .experiment(bench, LangModel::Txn, HwDesign::IntelX86)
                .run_timing();
            let eadr = scale
                .experiment(bench, LangModel::Txn, HwDesign::Eadr)
                .run_timing();
            let native = scale
                .experiment(bench, LangModel::Native, HwDesign::Eadr)
                .run_timing();
            NativeBoundRow {
                bench,
                intel_txn: intel.cycles,
                eadr_txn: eadr.cycles,
                eadr_native: native.cycles,
                events_processed: intel.events.total()
                    + eadr.events.total()
                    + native.events.total(),
            }
        })
        .collect()
}

/// Formats the Native-bound decomposition (the paper bounds eADR at 2.40x
/// over Intel x86; this splits that bound into its hardware and software
/// halves).
pub fn native_bound_report(rows: &[NativeBoundRow]) -> String {
    let geo = |xs: &[f64]| xs.iter().product::<f64>().powf(1.0 / xs.len() as f64);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Native on eADR — decomposing the persistent-cache bound (speedup over Intel x86/TXN)"
    );
    let _ = writeln!(
        s,
        "  {:12} {:>10} {:>10} {:>10}",
        "benchmark", "hardware", "log-free", "total"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:12} {:>9.2}x {:>9.2}x {:>9.2}x",
            r.bench.label(),
            r.hardware(),
            r.log_deletion(),
            r.total()
        );
    }
    let hw: Vec<f64> = rows.iter().map(NativeBoundRow::hardware).collect();
    let lf: Vec<f64> = rows.iter().map(NativeBoundRow::log_deletion).collect();
    let tot: Vec<f64> = rows.iter().map(NativeBoundRow::total).collect();
    let _ = writeln!(
        s,
        "  {:12} {:>9.2}x {:>9.2}x {:>9.2}x",
        "geomean",
        geo(&hw),
        geo(&lf),
        geo(&tot)
    );
    s
}

/// The Native-bound decomposition as JSON (the `native_on_eadr` section of
/// `swctl summary --json`).
pub fn native_bound_json(rows: &[NativeBoundRow]) -> Json {
    let geo = |xs: &[f64]| xs.iter().product::<f64>().powf(1.0 / xs.len() as f64);
    let hw: Vec<f64> = rows.iter().map(NativeBoundRow::hardware).collect();
    let lf: Vec<f64> = rows.iter().map(NativeBoundRow::log_deletion).collect();
    let tot: Vec<f64> = rows.iter().map(NativeBoundRow::total).collect();
    Json::obj([
        ("lang", Json::Str(LangModel::Native.label().to_string())),
        ("design", Json::Str(HwDesign::Eadr.label().to_string())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("benchmark", Json::Str(r.bench.label().to_string())),
                            ("intel_txn_cycles", Json::U64(r.intel_txn)),
                            ("eadr_txn_cycles", Json::U64(r.eadr_txn)),
                            ("eadr_native_cycles", Json::U64(r.eadr_native)),
                            ("events_processed", Json::U64(r.events_processed)),
                            ("hardware_speedup", Json::F64(r.hardware())),
                            ("log_free_speedup", Json::F64(r.log_deletion())),
                            ("total_speedup", Json::F64(r.total())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("hardware_speedup_geomean", Json::F64(geo(&hw))),
        ("log_free_speedup_geomean", Json::F64(geo(&lf))),
        ("total_speedup_geomean", Json::F64(geo(&tot))),
    ])
}

/// The headline numbers as JSON (`swctl summary --json`); the
/// Native-bound decomposition lands under `native_on_eadr`.
pub fn summary_json(cells: &[SweepCell], native: &[NativeBoundRow]) -> Json {
    let geo = |xs: &[f64]| xs.iter().product::<f64>().powf(1.0 / xs.len() as f64);
    let max = |xs: &[f64]| xs.iter().cloned().fold(f64::MIN, f64::max);
    let over_intel: Vec<f64> = cells
        .iter()
        .map(|c| c.speedup(HwDesign::StrandWeaver))
        .collect();
    let over_hops: Vec<f64> = cells
        .iter()
        .map(|c| c.cycles(HwDesign::Hops) as f64 / c.cycles(HwDesign::StrandWeaver) as f64)
        .collect();
    let below_na: Vec<f64> = cells
        .iter()
        .map(|c| c.cycles(HwDesign::StrandWeaver) as f64 / c.cycles(HwDesign::NonAtomic) as f64)
        .collect();
    let stall: Vec<f64> = cells
        .iter()
        .map(|c| c.stall_ratio(HwDesign::StrandWeaver))
        .collect();
    let eadr: Vec<f64> = cells.iter().map(|c| c.speedup(HwDesign::Eadr)).collect();
    // Models absent from the sweep (Native is not legal on the full
    // design matrix) are skipped rather than reported as an empty mean.
    let per_lang = LangModel::ALL
        .iter()
        .filter_map(|&lang| {
            let xs: Vec<f64> = cells
                .iter()
                .filter(|c| c.lang == lang)
                .map(|c| c.speedup(HwDesign::StrandWeaver))
                .collect();
            if xs.is_empty() {
                return None;
            }
            Some(Json::obj([
                ("lang", Json::Str(lang.label().to_string())),
                ("speedup_geomean", Json::F64(geo(&xs))),
            ]))
        })
        .collect();
    Json::obj([
        ("speedup_over_intel_geomean", Json::F64(geo(&over_intel))),
        ("speedup_over_intel_max", Json::F64(max(&over_intel))),
        ("speedup_over_hops_geomean", Json::F64(geo(&over_hops))),
        ("speedup_over_hops_max", Json::F64(max(&over_hops))),
        ("stall_ratio_vs_intel_geomean", Json::F64(geo(&stall))),
        (
            "slowdown_vs_non_atomic_pct",
            Json::F64((geo(&below_na) - 1.0) * 100.0),
        ),
        ("eadr_speedup_over_intel_geomean", Json::F64(geo(&eadr))),
        (
            "events_processed",
            Json::U64(
                cells.iter().map(SweepCell::events_processed).sum::<u64>()
                    + native.iter().map(|r| r.events_processed).sum::<u64>(),
            ),
        ),
        ("per_lang", Json::Arr(per_lang)),
        ("native_on_eadr", native_bound_json(native)),
    ])
}

/// Per-language-model speedup averages (Section VI-B "sensitivity to
/// language-level persistency model": SFR 1.50x > TXN 1.45x > ATLAS 1.40x).
/// Models absent from the sweep — the log-free Native model cannot run on
/// the StrandWeaver/Intel designs this report normalizes over — are noted
/// with a pointer to the Native-bound decomposition instead of a mean.
pub fn lang_sensitivity_report(cells: &[SweepCell]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Per-language-model average speedup of StrandWeaver over Intel x86"
    );
    for &lang in &LangModel::ALL {
        let xs: Vec<f64> = cells
            .iter()
            .filter(|c| c.lang == lang)
            .map(|c| c.speedup(HwDesign::StrandWeaver))
            .collect();
        if xs.is_empty() {
            // Absent because it cannot run here (vs. filtered out by the
            // caller): only the former deserves a note.
            if !lang.legal_on(HwDesign::StrandWeaver) {
                let _ = writeln!(
                    s,
                    "  {:6} (eADR-only; see the Native-on-eADR decomposition)",
                    lang.label()
                );
            }
            continue;
        }
        let geo = xs.iter().product::<f64>().powf(1.0 / xs.len() as f64);
        let _ = writeln!(s, "  {:6} {:.2}x", lang.label(), geo);
    }
    s
}
