//! Performance trajectory: timed runs of the figure targets, the
//! `BENCH_<label>.json` artifact, and the regression comparison behind the
//! CI gate.
//!
//! [`run_bench`] times each simulation-heavy target ([`Target::BENCH`])
//! with warmup passes and repeated measurements, then takes one profiled
//! pass to attribute wall time to simulator phases (via the `sw-perf`
//! ambient profiler). The result serializes to JSON with the in-workspace
//! writer and parses back with [`parse`], so a committed
//! `BENCH_baseline.json` can be compared against a fresh run by
//! [`compare_reports`]: the gate fails when any target's best wall time
//! regresses past the tolerance, and *refuses* to compare reports taken at
//! different scales or repeat counts (a comparison across scales would be
//! noise dressed as signal).
//!
//! Wall-time gating uses the **minimum** over repeats, not the mean: on a
//! loaded CI container the minimum is the best estimate of the code's
//! intrinsic cost, while the mean absorbs scheduler jitter.

use std::fmt::Write as _;
use std::time::Instant;

use sw_trace::Json;

use crate::targets::{Target, TargetFilters};
use crate::Scale;

/// Wall time and phase attribution for one timed target.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTargetResult {
    /// Target label (`fig7`, `table2`, ...).
    pub target: String,
    /// Best wall time over the repeats, seconds (the gated metric).
    pub wall_secs_min: f64,
    /// Mean wall time over the repeats, seconds.
    pub wall_secs_mean: f64,
    /// Discrete events the target processed (identical across repeats —
    /// the simulator is deterministic).
    pub events_processed: u64,
    /// Simulated cycles summed across the target's runs.
    pub sim_cycles: u64,
    /// Events per second of wall time, at the best repeat.
    pub events_per_sec: f64,
    /// Per-phase attribution from the profiled pass, every phase present.
    pub phases: Vec<BenchPhase>,
    /// The hottest phases by share of attributed time, descending.
    pub hot_phases: Vec<String>,
}

/// One simulator phase's share of a profiled target run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPhase {
    /// Phase label (`engine`, `frontend`, ...).
    pub phase: String,
    /// Nanoseconds attributed to the phase.
    pub nanos: u64,
    /// Boundary crossings recorded for the phase.
    pub calls: u64,
    /// Percentage of all attributed time.
    pub pct: f64,
}

/// A full benchmark run: the `BENCH_<label>.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Artifact label (`ci`, `baseline`, a branch name...).
    pub label: String,
    /// The scale every target ran at.
    pub scale: Scale,
    /// Warmup passes per target (untimed).
    pub warmup: usize,
    /// Timed repeats per target.
    pub repeats: usize,
    /// One result per timed target, in [`Target::BENCH`] order.
    pub targets: Vec<BenchTargetResult>,
}

/// How many hot phases a result names.
const HOT_N: usize = 3;

/// Times every [`Target::BENCH`] target at `scale` under `filters`.
///
/// Each target gets `warmup` untimed passes, `repeats` timed passes
/// (minimum one), and a final profiled pass that is *not* timed into the
/// wall figures — profiling costs a clock read per phase boundary, so the
/// gated numbers come from unprofiled runs only.
pub fn run_bench(
    scale: Scale,
    filters: &TargetFilters,
    label: &str,
    warmup: usize,
    repeats: usize,
) -> BenchReport {
    let repeats = repeats.max(1);
    let targets = Target::BENCH
        .into_iter()
        .map(|t| {
            for _ in 0..warmup {
                let _ = t.run(scale, filters);
            }
            let mut walls = Vec::with_capacity(repeats);
            let mut events_processed = 0u64;
            let mut sim_cycles = 0u64;
            for _ in 0..repeats {
                let start = Instant::now();
                let out = t.run(scale, filters);
                walls.push(start.elapsed().as_secs_f64());
                events_processed = out.events_processed;
                sim_cycles = out.sim_cycles;
            }
            sw_perf::set_global_enabled(true);
            let _ = sw_perf::global_take();
            let _ = t.run(scale, filters);
            let snap = sw_perf::global_take();
            sw_perf::set_global_enabled(false);

            let wall_secs_min = walls.iter().copied().fold(f64::INFINITY, f64::min);
            let wall_secs_mean = walls.iter().sum::<f64>() / walls.len() as f64;
            let phases = snap
                .phases
                .iter()
                .map(|p| BenchPhase {
                    phase: p.phase.to_string(),
                    nanos: p.nanos,
                    calls: p.calls,
                    pct: snap.pct(p.phase),
                })
                .collect();
            let hot_phases = snap
                .hot_phases(HOT_N)
                .into_iter()
                .map(|(name, _)| name.to_string())
                .collect();
            BenchTargetResult {
                target: t.label().to_string(),
                wall_secs_min,
                wall_secs_mean,
                events_processed,
                sim_cycles,
                events_per_sec: if wall_secs_min > 0.0 {
                    events_processed as f64 / wall_secs_min
                } else {
                    0.0
                },
                phases,
                hot_phases,
            }
        })
        .collect();
    BenchReport {
        label: label.to_string(),
        scale,
        warmup,
        repeats,
        targets,
    }
}

impl BenchReport {
    /// Serializes the report (the `BENCH_<label>.json` body).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::Str(self.label.clone())),
            (
                "scale",
                Json::obj([
                    ("threads", Json::U64(self.scale.threads as u64)),
                    ("regions", Json::U64(self.scale.regions as u64)),
                    (
                        "ops_per_region",
                        Json::U64(self.scale.ops_per_region as u64),
                    ),
                ]),
            ),
            ("warmup", Json::U64(self.warmup as u64)),
            ("repeats", Json::U64(self.repeats as u64)),
            (
                "targets",
                Json::Arr(
                    self.targets
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("target", Json::Str(t.target.clone())),
                                ("wall_secs_min", Json::F64(t.wall_secs_min)),
                                ("wall_secs_mean", Json::F64(t.wall_secs_mean)),
                                ("events_processed", Json::U64(t.events_processed)),
                                ("sim_cycles", Json::U64(t.sim_cycles)),
                                ("events_per_sec", Json::F64(t.events_per_sec)),
                                (
                                    "phases",
                                    Json::Arr(
                                        t.phases
                                            .iter()
                                            .map(|p| {
                                                Json::obj([
                                                    ("phase", Json::Str(p.phase.clone())),
                                                    ("nanos", Json::U64(p.nanos)),
                                                    ("calls", Json::U64(p.calls)),
                                                    ("pct", Json::F64(p.pct)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "hot_phases",
                                    Json::Arr(
                                        t.hot_phases.iter().map(|h| Json::Str(h.clone())).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Formats the report as the `swctl bench` console table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "bench '{}': {} threads x {} regions x {} ops, warmup {}, repeats {}",
            self.label,
            self.scale.threads,
            self.scale.regions,
            self.scale.ops_per_region,
            self.warmup,
            self.repeats
        );
        let _ = writeln!(
            s,
            "  {:8} {:>10} {:>10} {:>12} {:>12}  hot phases",
            "target", "min (s)", "mean (s)", "events", "events/s"
        );
        for t in &self.targets {
            let _ = writeln!(
                s,
                "  {:8} {:>10.4} {:>10.4} {:>12} {:>12.0}  {}",
                t.target,
                t.wall_secs_min,
                t.wall_secs_mean,
                t.events_processed,
                t.events_per_sec,
                t.hot_phases.join(" ")
            );
        }
        s
    }
}

/// Extracts a float from any numeric [`Json`] variant.
fn num(j: &Json) -> Option<f64> {
    match j {
        Json::U64(v) => Some(*v as f64),
        Json::I64(v) => Some(*v as f64),
        Json::F64(v) => Some(*v),
        _ => None,
    }
}

fn get_num(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(num)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field '{key}'"))
}

fn get_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

/// Parses a report previously serialized by [`BenchReport::to_json`]
/// (e.g. a committed `BENCH_baseline.json`).
pub fn parse(text: &str) -> Result<BenchReport, String> {
    let j = sw_trace::json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let scale = j.get("scale").ok_or("missing 'scale'")?;
    let scale = Scale {
        threads: get_u64(scale, "threads")? as usize,
        regions: get_u64(scale, "regions")? as usize,
        ops_per_region: get_u64(scale, "ops_per_region")? as usize,
    };
    let targets = j
        .get("targets")
        .and_then(Json::as_arr)
        .ok_or("missing 'targets' array")?
        .iter()
        .map(|t| {
            let phases = t
                .get("phases")
                .and_then(Json::as_arr)
                .ok_or("missing 'phases' array")?
                .iter()
                .map(|p| {
                    Ok(BenchPhase {
                        phase: get_str(p, "phase")?,
                        nanos: get_u64(p, "nanos")?,
                        calls: get_u64(p, "calls")?,
                        pct: get_num(p, "pct")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let hot_phases = t
                .get("hot_phases")
                .and_then(Json::as_arr)
                .ok_or("missing 'hot_phases' array")?
                .iter()
                .map(|h| h.as_str().map(str::to_string).ok_or("non-string hot phase"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(BenchTargetResult {
                target: get_str(t, "target")?,
                wall_secs_min: get_num(t, "wall_secs_min")?,
                wall_secs_mean: get_num(t, "wall_secs_mean")?,
                events_processed: get_u64(t, "events_processed")?,
                sim_cycles: get_u64(t, "sim_cycles")?,
                events_per_sec: get_num(t, "events_per_sec")?,
                phases,
                hot_phases,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchReport {
        label: get_str(&j, "label")?,
        scale,
        warmup: get_u64(&j, "warmup")? as usize,
        repeats: get_u64(&j, "repeats")? as usize,
        targets,
    })
}

/// Compares a fresh report against a baseline; the CI regression gate.
///
/// Returns `Ok` with a per-target summary when every target's best wall
/// time stays within `tolerance_pct` percent of the baseline, `Err` with
/// the offending targets otherwise. `scale_wall` multiplies the current
/// report's wall times before comparison — `1.0` in normal use; the CI
/// self-test passes `3.0` to prove the gate actually fires.
///
/// `floors` are absolute `events_per_sec` minimums per target (the
/// `benchcmp --floor fig7:927573` form): unlike the relative tolerance —
/// which follows whatever baseline is committed — a floor pins a past
/// win's magnitude, so it cannot be ratcheted away by re-recording a
/// slower baseline.
///
/// Reports taken at different scales, warmup, or repeat counts are
/// incomparable and always rejected.
pub fn compare_reports(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance_pct: f64,
    scale_wall: f64,
    floors: &[(String, f64)],
) -> Result<String, String> {
    if current.scale != baseline.scale {
        return Err(format!(
            "scale mismatch: current {:?} vs baseline {:?} — wall times are incomparable",
            current.scale, baseline.scale
        ));
    }
    if current.warmup != baseline.warmup || current.repeats != baseline.repeats {
        return Err(format!(
            "methodology mismatch: current warmup={} repeats={} vs baseline warmup={} repeats={}",
            current.warmup, current.repeats, baseline.warmup, baseline.repeats
        ));
    }
    let mut summary = String::new();
    let mut regressions = Vec::new();
    for base in &baseline.targets {
        let Some(cur) = current.targets.iter().find(|t| t.target == base.target) else {
            return Err(format!(
                "target '{}' missing from current report",
                base.target
            ));
        };
        let adjusted = cur.wall_secs_min * scale_wall;
        let delta_pct = if base.wall_secs_min > 0.0 {
            (adjusted / base.wall_secs_min - 1.0) * 100.0
        } else {
            0.0
        };
        let verdict = if delta_pct > tolerance_pct {
            regressions.push(format!(
                "{}: {:.4}s vs baseline {:.4}s ({:+.1}% > +{:.0}% tolerance)",
                base.target, adjusted, base.wall_secs_min, delta_pct, tolerance_pct
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        let _ = writeln!(
            summary,
            "  {:8} {:>10.4}s vs {:>10.4}s baseline ({:+6.1}%) {}",
            base.target, adjusted, base.wall_secs_min, delta_pct, verdict
        );
    }
    for (target, floor) in floors {
        let Some(cur) = current.targets.iter().find(|t| &t.target == target) else {
            return Err(format!(
                "floor target '{target}' missing from current report"
            ));
        };
        let adjusted_wall = cur.wall_secs_min * scale_wall;
        let eps = if adjusted_wall > 0.0 {
            cur.events_processed as f64 / adjusted_wall
        } else {
            0.0
        };
        if eps < *floor {
            regressions.push(format!(
                "{target}: {eps:.0} events/s below floor {floor:.0}"
            ));
            let _ = writeln!(
                summary,
                "  {target:8} {eps:>10.0} events/s < floor {floor:.0} REGRESSED"
            );
        } else {
            let _ = writeln!(
                summary,
                "  {target:8} {eps:>10.0} events/s >= floor {floor:.0} ok"
            );
        }
    }
    if regressions.is_empty() {
        Ok(summary)
    } else {
        Err(format!(
            "{} target(s) regressed:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            threads: 2,
            regions: 4,
            ops_per_region: 2,
        }
    }

    fn sample() -> BenchReport {
        BenchReport {
            label: "test".into(),
            scale: tiny(),
            warmup: 1,
            repeats: 2,
            targets: vec![BenchTargetResult {
                target: "fig7".into(),
                wall_secs_min: 0.125,
                wall_secs_mean: 0.5,
                events_processed: 1000,
                sim_cycles: 2000,
                events_per_sec: 8000.0,
                phases: vec![BenchPhase {
                    phase: "engine".into(),
                    nanos: 42,
                    calls: 7,
                    pct: 100.0,
                }],
                hot_phases: vec!["engine".into()],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_workspace_json() {
        let r = sample();
        let parsed = parse(&r.to_json().render()).expect("parse back");
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"label\": \"x\"}").is_err());
    }

    #[test]
    fn compare_passes_identical_reports() {
        let r = sample();
        let summary = compare_reports(&r, &r, 25.0, 1.0, &[]).expect("identical reports pass");
        assert!(summary.contains("ok"));
    }

    #[test]
    fn compare_fails_on_artificial_slowdown() {
        let r = sample();
        let err = compare_reports(&r, &r, 25.0, 3.0, &[]).expect_err("3x slowdown must fail");
        assert!(err.contains("fig7"), "{err}");
        assert!(
            err.contains("REGRESSED") || err.contains("regressed"),
            "{err}"
        );
    }

    #[test]
    fn compare_refuses_scale_mismatch() {
        let mut other = sample();
        other.scale.regions = 999;
        let err = compare_reports(&other, &sample(), 25.0, 1.0, &[]).expect_err("scales differ");
        assert!(err.contains("scale mismatch"), "{err}");
    }

    #[test]
    fn compare_refuses_missing_target() {
        let mut cur = sample();
        cur.targets.clear();
        let err = compare_reports(&cur, &sample(), 25.0, 1.0, &[]).expect_err("target missing");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn compare_enforces_events_per_sec_floor() {
        // sample(): 1000 events over 0.125s = 8000 events/s.
        let r = sample();
        let ok = compare_reports(&r, &r, 25.0, 1.0, &[("fig7".into(), 5000.0)])
            .expect("above the floor passes");
        assert!(ok.contains(">= floor"), "{ok}");

        let err = compare_reports(&r, &r, 25.0, 1.0, &[("fig7".into(), 10_000.0)])
            .expect_err("below the floor fails");
        assert!(err.contains("below floor 10000"), "{err}");

        // A floor survives even when the wall-time tolerance would pass:
        // the relative gate compares a report to itself, the absolute
        // floor still fires.
        let err = compare_reports(&r, &r, 100.0, 1.0, &[("fig7".into(), 10_000.0)])
            .expect_err("floor is independent of tolerance");
        assert!(err.contains("fig7"), "{err}");
    }

    #[test]
    fn compare_rejects_floor_for_unknown_target() {
        let r = sample();
        let err = compare_reports(&r, &r, 25.0, 1.0, &[("nope".into(), 1.0)])
            .expect_err("unknown floor target");
        assert!(err.contains("floor target 'nope' missing"), "{err}");
    }

    #[test]
    fn run_bench_times_every_bench_target() {
        let report = run_bench(tiny(), &TargetFilters::default(), "unit", 0, 1);
        assert_eq!(report.targets.len(), Target::BENCH.len());
        for t in &report.targets {
            assert!(t.events_processed > 0, "{} processed no events", t.target);
            assert!(t.events_per_sec > 0.0);
            assert_eq!(t.phases.len(), sw_perf::Phase::ALL.len());
            let attributed: u64 = t.phases.iter().map(|p| p.nanos).sum();
            assert!(attributed > 0, "{} attributed no time", t.target);
            assert!(!t.hot_phases.is_empty());
        }
        // The artifact the harness writes must survive its own parser.
        let parsed = parse(&report.to_json().render()).expect("round-trip");
        assert_eq!(parsed, report);
    }
}
