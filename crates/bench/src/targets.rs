//! In-process figure/table targets: one enum routing every `fig*`/`table*`
//! report so `swctl`, `swctl bench`, and the CI harness all invoke the same
//! code path instead of each re-plumbing flags into the report functions.
//!
//! A [`Target`] names one artifact of the paper's evaluation (a figure, a
//! table, or the cross-model summary). [`Target::run`] executes it at a
//! given [`Scale`] under optional `--design`/`--lang` narrowing
//! ([`TargetFilters`]) and returns a [`TargetOutput`] carrying both the
//! human-readable report and (where the target is tabular) its JSON form,
//! plus the discrete-event and simulated-cycle totals the performance
//! harness divides wall time by.
//!
//! Legality of a filter pair (the log-free `native` model needs an
//! eADR-class design) is the caller's contract: `swctl` validates user
//! input before calling [`Target::run`], exactly as the individual
//! subcommand arms did before this module existed.

use strandweaver::{HwDesign, LangModel};
use sw_trace::Json;

use crate::Scale;

/// Optional `--design` / `--lang` narrowing applied to a target run.
///
/// `None` means the target's default breadth (all designs, all legal
/// language models, or the target's canonical measured pair).
#[derive(Debug, Clone, Copy, Default)]
pub struct TargetFilters {
    /// Narrow the sweep to one design (Figures 7/8) or pick the measured
    /// design (Figures 9/10).
    pub design: Option<HwDesign>,
    /// Narrow the sweep to one language model (summary) or pick the
    /// measured model (Figures 9/10).
    pub lang: Option<LangModel>,
}

/// The result of running one target: the formatted report, the JSON form
/// where the target is tabular, and the work totals of the run.
#[derive(Debug, Clone)]
pub struct TargetOutput {
    /// The human-readable report (what the non-`--json` subcommand prints).
    pub text: String,
    /// Machine-readable form, for targets that support `--json`.
    pub json: Option<Json>,
    /// Discrete events processed across every simulation the target ran
    /// (zero for targets that don't surface per-run stats).
    pub events_processed: u64,
    /// Simulated cycles summed across every simulation the target ran.
    pub sim_cycles: u64,
}

/// One artifact of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Figure 1: motivating persist-ordering example.
    Fig1,
    /// Figure 2: litmus-test suite.
    Fig2,
    /// Table I: simulated machine configuration.
    Table1,
    /// Table II: benchmark write intensity (CKC).
    Table2,
    /// Figure 7: speedup sweep over designs.
    Fig7,
    /// Figure 8: persist-ordering stall sweep.
    Fig8,
    /// Figure 9: strand-buffer sensitivity matrix.
    Fig9,
    /// Figure 10: region-size sensitivity matrix.
    Fig10,
    /// Cross-model summary (headline sweep + native bound).
    Summary,
    /// Fault-tolerant open-loop serving cell (fixed seed, default knobs).
    Serve,
}

impl Target {
    /// Every target, in presentation order.
    pub const ALL: [Target; 10] = [
        Target::Fig1,
        Target::Fig2,
        Target::Table1,
        Target::Table2,
        Target::Fig7,
        Target::Fig8,
        Target::Fig9,
        Target::Fig10,
        Target::Summary,
        Target::Serve,
    ];

    /// The targets `swctl bench` times: every simulation-heavy figure.
    /// (Figures 1/2 and Table I are litmus-scale or static and would only
    /// add noise to a performance trajectory.)
    pub const BENCH: [Target; 7] = [
        Target::Fig7,
        Target::Fig8,
        Target::Fig9,
        Target::Fig10,
        Target::Table2,
        Target::Summary,
        Target::Serve,
    ];

    /// The `swctl` subcommand label.
    pub fn label(self) -> &'static str {
        match self {
            Target::Fig1 => "fig1",
            Target::Fig2 => "fig2",
            Target::Table1 => "table1",
            Target::Table2 => "table2",
            Target::Fig7 => "fig7",
            Target::Fig8 => "fig8",
            Target::Fig9 => "fig9",
            Target::Fig10 => "fig10",
            Target::Summary => "summary",
            Target::Serve => "serve",
        }
    }

    /// Parses a subcommand label (`litmus` is an alias for the Figure 2
    /// suite, matching the `swctl` CLI).
    pub fn from_label(s: &str) -> Option<Target> {
        if s == "litmus" {
            return Some(Target::Fig2);
        }
        Target::ALL.into_iter().find(|t| t.label() == s)
    }

    /// Whether the target has a machine-readable (`--json`) form.
    pub fn json_ok(self) -> bool {
        !matches!(self, Target::Fig1 | Target::Fig2 | Target::Table1)
    }

    /// Whether the target accepts a `--design` filter.
    pub fn design_ok(self) -> bool {
        matches!(
            self,
            Target::Fig7 | Target::Fig8 | Target::Fig9 | Target::Fig10
        )
    }

    /// Whether the target accepts a `--lang` filter.
    pub fn lang_ok(self) -> bool {
        matches!(self, Target::Fig9 | Target::Fig10 | Target::Summary)
    }

    /// Runs the target at `scale` under `filters` and collects its output.
    ///
    /// Filters the target does not accept are ignored (the CLI rejects
    /// them before they get here); illegal lang × design pairs are the
    /// caller's responsibility to reject.
    pub fn run(self, scale: Scale, filters: &TargetFilters) -> TargetOutput {
        match self {
            Target::Fig1 => TargetOutput {
                text: crate::fig1_report(),
                json: None,
                events_processed: 0,
                sim_cycles: 0,
            },
            Target::Fig2 => TargetOutput {
                text: crate::fig2_report(),
                json: None,
                events_processed: 0,
                sim_cycles: 0,
            },
            Target::Table1 => TargetOutput {
                text: crate::table1(),
                json: None,
                events_processed: 0,
                sim_cycles: 0,
            },
            Target::Table2 => {
                let rows = crate::table2(scale);
                TargetOutput {
                    text: crate::table2_report(&rows),
                    json: Some(crate::table2_json(&rows)),
                    events_processed: rows.iter().map(|r| r.events_processed).sum(),
                    sim_cycles: rows.iter().map(|r| r.cycles).sum(),
                }
            }
            Target::Fig7 | Target::Fig8 => {
                let cells = crate::full_sweep_of(scale, &sweep_designs(filters.design));
                let text = if self == Target::Fig7 {
                    crate::fig7_report(&cells)
                } else {
                    crate::fig8_report(&cells)
                };
                TargetOutput {
                    text,
                    json: Some(crate::sweep_json(&cells)),
                    events_processed: cells.iter().map(crate::SweepCell::events_processed).sum(),
                    sim_cycles: cells.iter().map(crate::SweepCell::sim_cycles).sum(),
                }
            }
            Target::Fig9 | Target::Fig10 => {
                let measured = filters.design.unwrap_or(HwDesign::StrandWeaver);
                let lang = filters.lang.unwrap_or(LangModel::Sfr);
                let m = if self == Target::Fig9 {
                    crate::fig9_matrix(scale, measured, lang)
                } else {
                    crate::fig10_matrix(scale, measured, lang)
                };
                TargetOutput {
                    text: m.render(),
                    json: Some(m.to_json()),
                    events_processed: m.events_processed,
                    sim_cycles: m.sim_cycles,
                }
            }
            Target::Summary => {
                let langs = match filters.lang {
                    Some(lang) => vec![lang],
                    None => LangModel::ALL.to_vec(),
                };
                let cells = crate::full_sweep_matrix(scale, &HwDesign::ALL, &langs);
                let native = crate::native_bound(scale);
                let mut text = crate::summary_report(&cells);
                text.push_str(&crate::lang_sensitivity_report(&cells));
                text.push_str(&crate::native_bound_report(&native));
                TargetOutput {
                    text,
                    json: Some(crate::summary_json(&cells, &native)),
                    events_processed: cells
                        .iter()
                        .map(crate::SweepCell::events_processed)
                        .sum::<u64>()
                        + native.iter().map(|r| r.events_processed).sum::<u64>(),
                    sim_cycles: cells.iter().map(crate::SweepCell::sim_cycles).sum::<u64>()
                        + native
                            .iter()
                            .map(|r| r.intel_txn + r.eadr_txn + r.eadr_native)
                            .sum::<u64>(),
                }
            }
            Target::Serve => {
                let design = filters.design.unwrap_or(HwDesign::StrandWeaver);
                let lang = filters.lang.unwrap_or(LangModel::Txn);
                let mut cfg =
                    sw_serve::ServeConfig::new(strandweaver::BenchmarkId::NStoreBal, lang, design);
                cfg.threads = scale.threads;
                cfg.regions = scale.regions;
                cfg.ops = scale.ops_per_region;
                let report = sw_serve::serve_report(&cfg)
                    .unwrap_or_else(|e| panic!("serve target invariant failure: {e}"));
                TargetOutput {
                    text: report.render(),
                    json: Some(report.to_json()),
                    events_processed: report.cells.iter().map(|c| c.events_processed).sum(),
                    sim_cycles: report.cells.iter().map(|c| c.sim_cycles).sum(),
                }
            }
        }
    }
}

/// The design list for a `--design`-filtered Figure 7/8 sweep: the Intel
/// x86 baseline always runs (speedups and stall ratios normalize to it),
/// plus the requested design.
pub fn sweep_designs(filter: Option<HwDesign>) -> Vec<HwDesign> {
    match filter {
        None => HwDesign::ALL.to_vec(),
        Some(HwDesign::IntelX86) => vec![HwDesign::IntelX86],
        Some(d) => vec![HwDesign::IntelX86, d],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            threads: 2,
            regions: 6,
            ops_per_region: 2,
        }
    }

    #[test]
    fn labels_round_trip_and_litmus_aliases_fig2() {
        for t in Target::ALL {
            assert_eq!(Target::from_label(t.label()), Some(t));
        }
        assert_eq!(Target::from_label("litmus"), Some(Target::Fig2));
        assert_eq!(Target::from_label("fig99"), None);
    }

    #[test]
    fn bench_targets_are_all_tabular() {
        for t in Target::BENCH {
            assert!(t.json_ok(), "{} must support --json", t.label());
        }
    }

    #[test]
    fn table2_target_matches_direct_call() {
        let out = Target::Table2.run(tiny(), &TargetFilters::default());
        let rows = crate::table2(tiny());
        assert_eq!(out.text, crate::table2_report(&rows));
        assert!(out.events_processed > 0);
        assert!(out.sim_cycles > 0);
        assert!(out.json.is_some());
    }

    #[test]
    fn fig7_design_filter_narrows_sweep() {
        let filters = TargetFilters {
            design: Some(HwDesign::StrandWeaver),
            lang: None,
        };
        let out = Target::Fig7.run(tiny(), &filters);
        assert!(out.text.contains("strandweaver"));
        assert!(out.events_processed > 0);
        let json = out.json.expect("fig7 is tabular");
        let cells = json.get("cells").and_then(Json::as_arr).expect("cells");
        for cell in cells {
            let designs = cell.get("designs").and_then(Json::as_arr).expect("designs");
            assert_eq!(designs.len(), 2, "intel baseline + filtered design");
        }
    }

    #[test]
    fn static_targets_report_zero_events() {
        for t in [Target::Fig1, Target::Fig2, Target::Table1] {
            let out = t.run(tiny(), &TargetFilters::default());
            assert_eq!(out.events_processed, 0);
            assert!(out.json.is_none());
            assert!(!out.text.is_empty());
        }
    }
}
