//! Unit tests for the benchmark harness helpers.

use sw_bench::{Scale, PAPER_CKC};

#[test]
fn default_scale_is_sane() {
    let s = Scale::from_env();
    assert!(s.threads >= 1);
    assert!(s.regions >= 1);
    assert!(s.ops_per_region >= 1);
}

#[test]
fn paper_ckc_is_table_ii() {
    assert_eq!(PAPER_CKC.len(), 8);
    // Queue is the least write-intensive, N-Store wr-heavy the most.
    assert_eq!(PAPER_CKC[0], 0.78);
    assert_eq!(PAPER_CKC[7], 10.05);
    let max = PAPER_CKC.iter().cloned().fold(f64::MIN, f64::max);
    assert_eq!(max, 10.05);
}

#[test]
fn table1_text_mentions_all_structures() {
    let t = sw_bench::table1();
    for needle in [
        "store queue",
        "persist queue",
        "Strand unit",
        "ADR write queue",
    ] {
        assert!(t.contains(needle), "missing {needle} in Table I text");
    }
}

#[test]
fn fig2_report_passes_all_litmus() {
    let r = sw_bench::fig2_report();
    assert!(!r.contains("FAIL"), "{r}");
    assert!(r.matches("PASS").count() >= 13);
}

#[test]
fn fig1_report_shows_the_concurrency_difference() {
    let r = sw_bench::fig1_report();
    assert!(r.contains("strand persistency: C-before-A state reachable: true"));
    assert!(r.contains("epoch persistency:  C-before-A state reachable: false"));
}
