//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate implements the subset of the criterion API the workspace's
//! benchmarks use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simpler than upstream — a short warm-up, then a fixed
//! number of timed batches, reporting the median per-iteration time — but
//! the numbers are stable enough for the coarse comparisons the repo's
//! benches assert on.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is sized (accepted for compatibility; the shim
/// always runs one setup per timed call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Records one benchmark's samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    /// Target number of timed samples.
    sample_count: usize,
    /// Iterations folded into one sample (scaled so fast routines are not
    /// dominated by timer resolution).
    batch: u64,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            sample_count,
            batch: 1,
        }
    }

    /// Benchmarks `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & batch sizing: aim for samples of at least ~200us.
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_micros(200);
        self.batch = (target.as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.batch as u32);
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.batch = 1;
        for _ in 0..self.sample_count.max(10) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Median per-iteration time of the recorded samples.
    pub fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_count: usize,
    /// `(name, median)` pairs of every benchmark run so far.
    pub results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_count = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Self {
            sample_count,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        let med = b.median();
        println!("bench: {name:<44} median {:>12.3} us", as_us(med));
        self.results.push((name.to_string(), med));
        self
    }

    /// Median of a previously run benchmark, if any.
    pub fn median_of(&self, name: &str) -> Option<Duration> {
        self.results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
    }
}

fn as_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion {
            sample_count: 3,
            results: Vec::new(),
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        assert!(c.median_of("spin").is_some());
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(5);
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u64; 16]
            },
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(setups >= 5);
        assert!(b.median() > Duration::ZERO || b.samples.len() >= 5);
    }
}
