//! Online device-fault model: faults that fire *while the machine runs*.
//!
//! The crash-image `FaultPlan` in this crate perturbs memory after the
//! fact; this module models the device behaviors that cause such damage
//! in the first place:
//!
//! * [`DeviceFaultClass::TransientWriteFail`] — a write the media rejects
//!   once; the controller backs off and the retry succeeds.
//! * [`DeviceFaultClass::PermanentMediaError`] — a worn-out line; every
//!   write fails until the controller retires the line and redirects it
//!   to a spare through a crash-consistent [`RemapTable`].
//! * [`DeviceFaultClass::ReadPoison`] — an uncorrectable read: the data
//!   comes back poisoned and must surface as an MCE-style runtime error.
//!
//! [`DeviceFaultSchedule`] is the deterministic, seeded description of
//! *what* fires and *when* (write/read ordinals, cycles, or specific
//! lines); [`DeviceFaultUnit`] is the runtime state machine the PM
//! controller consults on every write and read. Retry pacing uses bounded
//! exponential backoff, and a per-line failure-count threshold escalates
//! transient faults to permanent ones (the classic wear-out path), so a
//! sticky transient fault always converges to a remap instead of wedging
//! the write queue.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sw_pmem::{FastMap, LineAddr, RemapTable};

/// A class of online device fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceFaultClass {
    /// A write the media rejects; a backed-off retry will succeed
    /// (unless the fault is sticky, in which case it keeps failing until
    /// the controller escalates it to a permanent error).
    TransientWriteFail,
    /// A dead line: writes can never succeed in place; the line must be
    /// retired and remapped to a spare.
    PermanentMediaError,
    /// An uncorrectable read error: the returned data is poisoned.
    ReadPoison,
}

impl DeviceFaultClass {
    /// All classes, in a stable order.
    pub const ALL: [DeviceFaultClass; 3] = [
        DeviceFaultClass::TransientWriteFail,
        DeviceFaultClass::PermanentMediaError,
        DeviceFaultClass::ReadPoison,
    ];

    /// Short stable label used in traces, metrics, and reports.
    pub fn label(self) -> &'static str {
        match self {
            DeviceFaultClass::TransientWriteFail => "transient",
            DeviceFaultClass::PermanentMediaError => "permanent",
            DeviceFaultClass::ReadPoison => "read_poison",
        }
    }
}

/// When a [`DeviceFault`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTrigger {
    /// Fires on the n-th fresh write attempt the controller accepts for
    /// consideration (1-based; retries of an already-faulted line do not
    /// advance the count).
    NthWrite(u64),
    /// Fires on the n-th read (1-based).
    NthRead(u64),
    /// Fires on the first write at or after the given cycle.
    AtCycle(u64),
    /// Fires on the first access to the given line (raw `LineAddr`).
    OnLine(u64),
}

/// One scheduled device fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// What kind of damage fires.
    pub class: DeviceFaultClass,
    /// When it fires.
    pub trigger: FaultTrigger,
    /// For transient faults: `true` keeps the line failing on every retry
    /// until the escalation threshold retires it (modelling wear-out);
    /// `false` fails once and lets the first backed-off retry succeed.
    pub sticky: bool,
}

/// A deterministic, seeded schedule of online device faults plus the
/// retry/escalation tuning the PM controller applies to them.
///
/// Two schedules compare equal iff they would produce identical fault
/// behavior, which makes the type usable inside `SimConfig` equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceFaultSchedule {
    /// The scheduled faults, in priority order (first match fires).
    pub faults: Vec<DeviceFault>,
    /// Seed recorded for reproducer messages.
    pub seed: u64,
    /// Attempts after which a still-failing transient line escalates to a
    /// permanent error and is remapped.
    pub max_retries: u32,
    /// Base backoff in cycles; attempt `k` waits `backoff_base << min(k,
    /// BACKOFF_SHIFT_CAP)` cycles before the next retry is admitted.
    pub backoff_base: u64,
    /// Per-line total-failure threshold that also escalates to permanent
    /// (a line that keeps failing across episodes is wearing out).
    pub escalate_after: u32,
    /// First spare line (raw `LineAddr`) the remap table allocates from.
    pub spare_base: u64,
    /// Number of spare lines available for remapping.
    pub spare_count: u64,
}

/// Cap on the exponential-backoff shift: backoff never exceeds
/// `backoff_base << BACKOFF_SHIFT_CAP`.
pub const BACKOFF_SHIFT_CAP: u32 = 6;

impl DeviceFaultSchedule {
    /// An empty schedule: no faults ever fire. Running with this
    /// installed must be bit-identical to running with no fault layer.
    pub fn none() -> Self {
        DeviceFaultSchedule {
            faults: Vec::new(),
            seed: 0,
            max_retries: 4,
            backoff_base: 64,
            escalate_after: 8,
            spare_base: 1 << 40,
            spare_count: 64,
        }
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A randomized schedule exercising every fault class.
    ///
    /// `scale` bounds the write/read ordinals the triggers draw from, so
    /// the schedule should be sized to the workload (roughly the number
    /// of PM writes it performs). The schedule always contains:
    ///
    /// * one **sticky** transient fault (guaranteed to escalate through
    ///   retries into a permanent error and a line remap),
    /// * two plain transient faults (guaranteed successful retries),
    /// * one direct permanent media error,
    /// * one read poison.
    ///
    /// All write ordinals are distinct, so every fault fires given at
    /// least `scale` writes.
    pub fn random(seed: u64, scale: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdeaf_bead_dead_f001);
        let scale = scale.max(16);
        // Distinct 1-based write ordinals, spread over the first `scale`
        // writes: partition [1, scale] into four bands and pick one
        // ordinal per band.
        let band = scale / 4;
        let pick = |rng: &mut SmallRng, lo: u64, hi: u64| rng.gen_range(lo..hi.max(lo + 1));
        let w1 = pick(&mut rng, 1, band.max(2));
        let w2 = pick(&mut rng, band.max(2), 2 * band.max(2));
        let w3 = pick(&mut rng, 2 * band.max(2), 3 * band.max(3));
        let w4 = pick(&mut rng, 3 * band.max(3), scale.max(13));
        let r1 = pick(&mut rng, 1, scale / 2);
        DeviceFaultSchedule {
            faults: vec![
                DeviceFault {
                    class: DeviceFaultClass::TransientWriteFail,
                    trigger: FaultTrigger::NthWrite(w1),
                    sticky: false,
                },
                DeviceFault {
                    class: DeviceFaultClass::TransientWriteFail,
                    trigger: FaultTrigger::NthWrite(w2),
                    sticky: true,
                },
                DeviceFault {
                    class: DeviceFaultClass::TransientWriteFail,
                    trigger: FaultTrigger::NthWrite(w3),
                    sticky: false,
                },
                DeviceFault {
                    class: DeviceFaultClass::PermanentMediaError,
                    trigger: FaultTrigger::NthWrite(w4),
                    sticky: true,
                },
                DeviceFault {
                    class: DeviceFaultClass::ReadPoison,
                    trigger: FaultTrigger::NthRead(r1),
                    sticky: false,
                },
            ],
            seed,
            max_retries: 3,
            backoff_base: 32,
            escalate_after: 6,
            spare_base: 1 << 40,
            spare_count: 64,
        }
    }
}

/// Counters describing what the online fault layer did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineFaultStats {
    /// Transient write failures that fired (first failure per episode).
    pub transient_failures: u64,
    /// Retry attempts rejected because the line was still in backoff.
    pub retry_waits: u64,
    /// Failed retry attempts (the media rejected the retry itself).
    pub retries_failed: u64,
    /// Retries that succeeded after backoff.
    pub retries_succeeded: u64,
    /// Lines escalated to (or scheduled directly as) permanent errors.
    pub permanent_errors: u64,
    /// Lines retired and redirected to spares.
    pub lines_remapped: u64,
    /// Reads that returned poisoned data.
    pub reads_poisoned: u64,
    /// Retirements that found the spare pool empty: the device can no
    /// longer serve the line and must be failed over by the caller.
    pub spares_exhausted: u64,
}

impl OnlineFaultStats {
    /// `true` when nothing fired at all.
    pub fn is_zero(&self) -> bool {
        *self == OnlineFaultStats::default()
    }

    /// Accumulates `other` into `self` (campaign-level aggregation).
    pub fn merge(&mut self, other: &OnlineFaultStats) {
        self.transient_failures += other.transient_failures;
        self.retry_waits += other.retry_waits;
        self.retries_failed += other.retries_failed;
        self.retries_succeeded += other.retries_succeeded;
        self.permanent_errors += other.permanent_errors;
        self.lines_remapped += other.lines_remapped;
        self.reads_poisoned += other.reads_poisoned;
        self.spares_exhausted += other.spares_exhausted;
    }

    /// Stable `(key, value)` pairs for JSON/metric export.
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        [
            ("transient_failures", self.transient_failures),
            ("retry_waits", self.retry_waits),
            ("retries_failed", self.retries_failed),
            ("retries_succeeded", self.retries_succeeded),
            ("permanent_errors", self.permanent_errors),
            ("lines_remapped", self.lines_remapped),
            ("reads_poisoned", self.reads_poisoned),
            ("spares_exhausted", self.spares_exhausted),
        ]
    }
}

/// Per-line retry episode state.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// Failed attempts so far in this episode.
    attempts: u32,
    /// Cycle at which the next retry is admitted.
    next_at: u64,
    /// Whether the underlying fault keeps failing retries.
    sticky: bool,
}

/// What the fault unit decided about one write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteDecision {
    /// The write may proceed to `line` (post-remap physical line).
    /// `retried` carries the failed-attempt count when this write closes
    /// a retry episode; `remapped` is `Some((spare, newly))` when the
    /// logical line is redirected.
    Proceed {
        /// Physical line the device actually writes.
        line: u64,
        /// Failed attempts this write recovers from, if any.
        retried: Option<u32>,
        /// Redirect target and whether this write created it.
        remapped: Option<(u64, bool)>,
    },
    /// The line is in backoff; retry not admitted before `until`.
    Backoff {
        /// Cycle at which the next retry is admitted.
        until: u64,
    },
    /// The media rejected the write; retry admitted at `next_at`.
    Fail {
        /// Cycle at which the retry is admitted.
        next_at: u64,
        /// Failed attempts so far in this episode.
        attempts: u32,
    },
    /// The line needed retirement but the spare pool is empty: the
    /// device has failed. The caller must fail the device (or shard)
    /// over; subsequent writes to the line park in permanent backoff.
    RemapExhausted {
        /// The logical line the device can no longer serve.
        line: u64,
    },
}

/// What the fault unit decided about one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadDecision {
    /// Physical line the device actually reads (post-remap).
    pub line: u64,
    /// `true` when the read returns poisoned data (MCE-style error).
    pub poisoned: bool,
}

/// Runtime state machine executing a [`DeviceFaultSchedule`].
///
/// The PM controller consults [`DeviceFaultUnit::on_write`] before
/// accepting each write and [`DeviceFaultUnit::on_read`] on each read.
/// All decisions are deterministic functions of the schedule and the
/// access sequence, so identical seeds reproduce identical runs.
#[derive(Debug, Clone)]
pub struct DeviceFaultUnit {
    schedule: DeviceFaultSchedule,
    fired: Vec<bool>,
    writes_seen: u64,
    reads_seen: u64,
    retry: FastMap<u64, RetryState>,
    /// Per-line total failures across episodes (wear-out accounting).
    line_failures: FastMap<u64, u32>,
    remap: RemapTable,
    stats: OnlineFaultStats,
}

impl DeviceFaultUnit {
    /// Creates a unit executing `schedule`.
    pub fn new(schedule: DeviceFaultSchedule) -> Self {
        let fired = vec![false; schedule.faults.len()];
        let remap = RemapTable::new(schedule.spare_base, schedule.spare_count);
        DeviceFaultUnit {
            schedule,
            fired,
            writes_seen: 0,
            reads_seen: 0,
            retry: FastMap::default(),
            line_failures: FastMap::default(),
            remap,
            stats: OnlineFaultStats::default(),
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> OnlineFaultStats {
        self.stats
    }

    /// The remap/quarantine table (for durable encoding and inspection).
    pub fn remap_table(&self) -> &RemapTable {
        &self.remap
    }

    /// `true` while any line sits in a retry episode.
    pub fn retry_pending(&self) -> bool {
        !self.retry.is_empty()
    }

    /// Earliest cycle at which any backed-off retry becomes admissible.
    pub fn next_retry_at(&self) -> Option<u64> {
        self.retry.values().map(|s| s.next_at).min()
    }

    fn backoff(&self, attempts: u32) -> u64 {
        self.schedule.backoff_base << attempts.min(BACKOFF_SHIFT_CAP)
    }

    /// Finds the first unfired write-class fault matching this access and
    /// marks it fired.
    fn take_write_fault(&mut self, line: u64, cycle: u64) -> Option<DeviceFault> {
        for (i, f) in self.schedule.faults.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            let class_ok = matches!(
                f.class,
                DeviceFaultClass::TransientWriteFail | DeviceFaultClass::PermanentMediaError
            );
            if !class_ok {
                continue;
            }
            let hit = match f.trigger {
                FaultTrigger::NthWrite(n) => self.writes_seen == n,
                FaultTrigger::AtCycle(c) => cycle >= c,
                FaultTrigger::OnLine(l) => line == l,
                FaultTrigger::NthRead(_) => false,
            };
            if hit {
                self.fired[i] = true;
                return Some(*f);
            }
        }
        None
    }

    fn escalate(&mut self, line: u64) -> WriteDecision {
        self.stats.permanent_errors += 1;
        let episode = self.retry.remove(&line);
        let attempts = episode.map(|s| s.attempts);
        match self.remap.remap(LineAddr(line)) {
            Some(spare) => {
                self.stats.lines_remapped += 1;
                WriteDecision::Proceed {
                    line: spare.raw(),
                    retried: attempts,
                    remapped: Some((spare.raw(), true)),
                }
            }
            None => {
                // Spares exhausted: the device is failed. Surface a typed
                // outcome (once per line) so the caller can fail the
                // device over; subsequent writes to the line park in
                // permanent backoff rather than succeeding silently.
                self.stats.spares_exhausted += 1;
                self.retry.insert(
                    line,
                    RetryState {
                        attempts: attempts.unwrap_or(0),
                        next_at: u64::MAX,
                        sticky: true,
                    },
                );
                WriteDecision::RemapExhausted { line }
            }
        }
    }

    /// Decides the fate of a write attempt to `line` at `cycle`.
    pub fn on_write(&mut self, line: u64, cycle: u64) -> WriteDecision {
        // Retired lines are already redirected; their writes just follow
        // the remap.
        if self.remap.is_remapped(LineAddr(line)) {
            return WriteDecision::Proceed {
                line: self.remap.resolve(LineAddr(line)).raw(),
                retried: None,
                remapped: Some((self.remap.resolve(LineAddr(line)).raw(), false)),
            };
        }
        // An open retry episode owns the line until it closes.
        if let Some(state) = self.retry.get(&line).copied() {
            if cycle < state.next_at {
                self.stats.retry_waits += 1;
                return WriteDecision::Backoff {
                    until: state.next_at,
                };
            }
            if state.sticky {
                // The retry itself fails again.
                let attempts = state.attempts + 1;
                self.stats.retries_failed += 1;
                *self.line_failures.entry(line).or_insert(0) += 1;
                let failures = self.line_failures[&line];
                if attempts >= self.schedule.max_retries || failures >= self.schedule.escalate_after
                {
                    self.retry.insert(
                        line,
                        RetryState {
                            attempts,
                            next_at: state.next_at,
                            sticky: true,
                        },
                    );
                    return self.escalate(line);
                }
                let next_at = cycle + self.backoff(attempts - 1);
                self.retry.insert(
                    line,
                    RetryState {
                        attempts,
                        next_at,
                        sticky: true,
                    },
                );
                return WriteDecision::Fail { next_at, attempts };
            }
            // Plain transient: the backed-off retry succeeds.
            self.retry.remove(&line);
            self.stats.retries_succeeded += 1;
            return WriteDecision::Proceed {
                line,
                retried: Some(state.attempts),
                remapped: None,
            };
        }
        // Fresh attempt: advance the ordinal and consult the schedule.
        self.writes_seen += 1;
        if let Some(fault) = self.take_write_fault(line, cycle) {
            match fault.class {
                DeviceFaultClass::PermanentMediaError => {
                    *self.line_failures.entry(line).or_insert(0) += 1;
                    return self.escalate(line);
                }
                DeviceFaultClass::TransientWriteFail => {
                    self.stats.transient_failures += 1;
                    *self.line_failures.entry(line).or_insert(0) += 1;
                    let next_at = cycle + self.backoff(0);
                    self.retry.insert(
                        line,
                        RetryState {
                            attempts: 1,
                            next_at,
                            sticky: fault.sticky,
                        },
                    );
                    return WriteDecision::Fail {
                        next_at,
                        attempts: 1,
                    };
                }
                DeviceFaultClass::ReadPoison => unreachable!("filtered by take_write_fault"),
            }
        }
        WriteDecision::Proceed {
            line,
            retried: None,
            remapped: None,
        }
    }

    /// Decides the fate of a read of `line` at `cycle`.
    pub fn on_read(&mut self, line: u64, cycle: u64) -> ReadDecision {
        let physical = self.remap.resolve(LineAddr(line)).raw();
        self.reads_seen += 1;
        for (i, f) in self.schedule.faults.iter().enumerate() {
            if self.fired[i] || f.class != DeviceFaultClass::ReadPoison {
                continue;
            }
            let hit = match f.trigger {
                FaultTrigger::NthRead(n) => self.reads_seen == n,
                FaultTrigger::AtCycle(c) => cycle >= c,
                FaultTrigger::OnLine(l) => line == l,
                FaultTrigger::NthWrite(_) => false,
            };
            if hit {
                self.fired[i] = true;
                self.stats.reads_poisoned += 1;
                return ReadDecision {
                    line: physical,
                    poisoned: true,
                };
            }
        }
        ReadDecision {
            line: physical,
            poisoned: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient(n: u64, sticky: bool) -> DeviceFault {
        DeviceFault {
            class: DeviceFaultClass::TransientWriteFail,
            trigger: FaultTrigger::NthWrite(n),
            sticky,
        }
    }

    fn schedule(faults: Vec<DeviceFault>) -> DeviceFaultSchedule {
        DeviceFaultSchedule {
            faults,
            ..DeviceFaultSchedule::none()
        }
    }

    #[test]
    fn empty_schedule_never_interferes() {
        let mut unit = DeviceFaultUnit::new(DeviceFaultSchedule::none());
        for i in 0..100 {
            assert_eq!(
                unit.on_write(i, i * 10),
                WriteDecision::Proceed {
                    line: i,
                    retried: None,
                    remapped: None
                }
            );
            assert!(!unit.on_read(i, i * 10).poisoned);
        }
        assert!(unit.stats().is_zero());
        assert!(!unit.retry_pending());
    }

    #[test]
    fn transient_fault_fails_then_retry_succeeds() {
        let mut unit = DeviceFaultUnit::new(schedule(vec![transient(2, false)]));
        assert!(matches!(
            unit.on_write(10, 0),
            WriteDecision::Proceed { .. }
        ));
        let next_at = match unit.on_write(11, 1) {
            WriteDecision::Fail { next_at, attempts } => {
                assert_eq!(attempts, 1);
                next_at
            }
            other => panic!("expected Fail, got {other:?}"),
        };
        assert_eq!(next_at, 1 + 64);
        assert!(unit.retry_pending());
        assert_eq!(unit.next_retry_at(), Some(next_at));
        // Too early: backoff.
        assert_eq!(
            unit.on_write(11, next_at - 1),
            WriteDecision::Backoff { until: next_at }
        );
        // Other lines are unaffected meanwhile.
        assert!(matches!(
            unit.on_write(12, next_at - 1),
            WriteDecision::Proceed { .. }
        ));
        // The due retry succeeds and closes the episode.
        assert_eq!(
            unit.on_write(11, next_at),
            WriteDecision::Proceed {
                line: 11,
                retried: Some(1),
                remapped: None
            }
        );
        assert!(!unit.retry_pending());
        let s = unit.stats();
        assert_eq!(s.transient_failures, 1);
        assert_eq!(s.retry_waits, 1);
        assert_eq!(s.retries_succeeded, 1);
        assert_eq!(s.permanent_errors, 0);
    }

    #[test]
    fn sticky_transient_escalates_to_remap() {
        let mut unit = DeviceFaultUnit::new(schedule(vec![transient(1, true)]));
        let mut cycle = 0;
        let mut decision = unit.on_write(7, cycle);
        let mut rounds = 0;
        let spare = loop {
            match decision {
                WriteDecision::Fail { next_at, .. } | WriteDecision::Backoff { until: next_at } => {
                    cycle = next_at;
                    decision = unit.on_write(7, cycle);
                }
                WriteDecision::Proceed { line, remapped, .. } => {
                    assert_eq!(remapped, Some((line, true)));
                    break line;
                }
                WriteDecision::RemapExhausted { .. } => {
                    panic!("64 spares cannot exhaust here")
                }
            }
            rounds += 1;
            assert!(rounds < 32, "sticky fault must converge to a remap");
        };
        assert_eq!(spare, 1 << 40);
        let s = unit.stats();
        assert_eq!(s.permanent_errors, 1);
        assert_eq!(s.lines_remapped, 1);
        assert!(s.retries_failed >= 1);
        // Subsequent writes and reads follow the redirect.
        assert_eq!(
            unit.on_write(7, cycle + 1),
            WriteDecision::Proceed {
                line: spare,
                retried: None,
                remapped: Some((spare, false))
            }
        );
        assert_eq!(
            unit.on_read(7, cycle + 1),
            ReadDecision {
                line: spare,
                poisoned: false
            }
        );
    }

    #[test]
    fn direct_permanent_error_remaps_immediately() {
        let mut unit = DeviceFaultUnit::new(schedule(vec![DeviceFault {
            class: DeviceFaultClass::PermanentMediaError,
            trigger: FaultTrigger::OnLine(42),
            sticky: true,
        }]));
        assert!(matches!(
            unit.on_write(41, 0),
            WriteDecision::Proceed { remapped: None, .. }
        ));
        match unit.on_write(42, 1) {
            WriteDecision::Proceed {
                line,
                remapped: Some((spare, true)),
                ..
            } => assert_eq!(line, spare),
            other => panic!("expected immediate remap, got {other:?}"),
        }
        assert_eq!(unit.stats().lines_remapped, 1);
    }

    #[test]
    fn read_poison_fires_once_on_nth_read() {
        let mut unit = DeviceFaultUnit::new(schedule(vec![DeviceFault {
            class: DeviceFaultClass::ReadPoison,
            trigger: FaultTrigger::NthRead(3),
            sticky: false,
        }]));
        assert!(!unit.on_read(1, 0).poisoned);
        assert!(!unit.on_read(2, 1).poisoned);
        assert!(unit.on_read(3, 2).poisoned);
        assert!(!unit.on_read(3, 3).poisoned, "poison fires once");
        assert_eq!(unit.stats().reads_poisoned, 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_is_capped() {
        let sched = DeviceFaultSchedule {
            max_retries: 100,
            escalate_after: 100,
            ..schedule(vec![transient(1, true)])
        };
        let base = sched.backoff_base;
        let mut unit = DeviceFaultUnit::new(sched);
        let mut cycle = 0;
        let mut prev_gap = 0;
        for attempt in 1..=10u32 {
            let decision = unit.on_write(9, cycle);
            let next_at = match decision {
                WriteDecision::Fail { next_at, attempts } => {
                    assert_eq!(attempts, attempt);
                    next_at
                }
                other => panic!("expected Fail, got {other:?}"),
            };
            let gap = next_at - cycle;
            assert_eq!(gap, base << (attempt - 1).min(BACKOFF_SHIFT_CAP));
            assert!(gap >= prev_gap);
            assert!(gap <= base << BACKOFF_SHIFT_CAP);
            prev_gap = gap;
            cycle = next_at;
        }
    }

    #[test]
    fn spare_exhaustion_parks_the_line() {
        let sched = DeviceFaultSchedule {
            spare_count: 0,
            ..schedule(vec![DeviceFault {
                class: DeviceFaultClass::PermanentMediaError,
                trigger: FaultTrigger::OnLine(5),
                sticky: true,
            }])
        };
        let mut unit = DeviceFaultUnit::new(sched);
        // The retirement itself surfaces a typed failure (exactly once)...
        assert_eq!(
            unit.on_write(5, 0),
            WriteDecision::RemapExhausted { line: 5 }
        );
        let s = unit.stats();
        assert_eq!(s.spares_exhausted, 1);
        assert_eq!(s.lines_remapped, 0);
        // ...and later writes to the line park in permanent backoff.
        assert_eq!(
            unit.on_write(5, 1),
            WriteDecision::Backoff { until: u64::MAX }
        );
        assert_eq!(unit.stats().spares_exhausted, 1, "typed failure fires once");
        assert_eq!(unit.next_retry_at(), Some(u64::MAX));
    }

    #[test]
    fn identical_schedules_give_identical_decisions() {
        let sched = DeviceFaultSchedule::random(99, 64);
        assert_eq!(sched, DeviceFaultSchedule::random(99, 64));
        let mut a = DeviceFaultUnit::new(sched.clone());
        let mut b = DeviceFaultUnit::new(sched);
        for i in 0..200u64 {
            let line = i % 17;
            assert_eq!(a.on_write(line, i * 3), b.on_write(line, i * 3));
            assert_eq!(a.on_read(line, i * 3), b.on_read(line, i * 3));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn random_schedule_contains_every_class() {
        let sched = DeviceFaultSchedule::random(7, 128);
        for class in DeviceFaultClass::ALL {
            assert!(
                sched.faults.iter().any(|f| f.class == class),
                "missing {class:?}"
            );
        }
        assert!(sched
            .faults
            .iter()
            .any(|f| f.sticky && f.class == DeviceFaultClass::TransientWriteFail));
        // Write ordinals are distinct so every write fault can fire.
        let mut ns: Vec<u64> = sched
            .faults
            .iter()
            .filter_map(|f| match f.trigger {
                FaultTrigger::NthWrite(n) => Some(n),
                _ => None,
            })
            .collect();
        let before = ns.len();
        ns.sort_unstable();
        ns.dedup();
        assert_eq!(ns.len(), before, "write ordinals must be distinct");
    }

    #[test]
    fn random_schedule_fires_fully_within_scale_writes() {
        for seed in 0..20u64 {
            let scale = 96;
            let sched = DeviceFaultSchedule::random(seed, scale);
            let mut unit = DeviceFaultUnit::new(sched);
            let mut cycle = 0u64;
            // Drive `scale` fresh writes on distinct lines, immediately
            // servicing any retries so episodes close.
            let mut fresh = 0u64;
            let mut line = 0u64;
            while fresh < scale {
                match unit.on_write(line, cycle) {
                    WriteDecision::Proceed { .. } => {
                        fresh += 1;
                        line += 1;
                    }
                    WriteDecision::Fail { next_at, .. }
                    | WriteDecision::Backoff { until: next_at } => {
                        fresh += 1; // the first Fail consumed the ordinal
                        cycle = next_at;
                        // Drain the episode on this line.
                        loop {
                            match unit.on_write(line, cycle) {
                                WriteDecision::Proceed { .. } => break,
                                WriteDecision::Fail { next_at, .. }
                                | WriteDecision::Backoff { until: next_at } => cycle = next_at,
                                WriteDecision::RemapExhausted { .. } => {
                                    panic!("64 spares cannot exhaust here")
                                }
                            }
                        }
                        line += 1;
                    }
                    WriteDecision::RemapExhausted { .. } => {
                        panic!("64 spares cannot exhaust here")
                    }
                }
                cycle += 1;
            }
            for r in 0..scale {
                unit.on_read(r, cycle + r);
            }
            let s = unit.stats();
            assert!(s.retries_succeeded >= 1, "seed {seed}: {s:?}");
            assert!(s.permanent_errors >= 2, "seed {seed}: {s:?}");
            assert!(s.lines_remapped >= 2, "seed {seed}: {s:?}");
            assert!(s.reads_poisoned >= 1, "seed {seed}: {s:?}");
        }
    }
}
