//! Deterministic fault injection for sampled crash images.
//!
//! The crash harness in `sw-lang` samples *naturally reachable* crash
//! states: every word either holds its written value or never persisted.
//! This crate perturbs such images with damage that crashes alone cannot
//! produce, so the recovery hardening of `sw-lang::recovery` can be
//! exercised end to end:
//!
//! * [`FaultClass::TornLine`] — zero a subset of a published log entry's
//!   words (always including its checksum), mimicking a partial line
//!   persist of an entry whose in-place update *did* persist — the
//!   dangerous tear the checksum exists to catch.
//! * [`FaultClass::BitFlip`] — flip one bit of a log entry line (silent
//!   media or software corruption).
//! * [`FaultClass::PoisonLine`] — mark the line as an uncorrectable media
//!   error ([`sw_pmem::PmImage::poison_line`]).
//!
//! Every injection is **self-verifying**: after perturbing the image the
//! injector re-classifies the slot ([`sw_lang::classify_slot`]) and
//! re-rolls until the result is a damaged state (`Torn`, `Corrupt`, or
//! `Poisoned`). Without this, an unlucky flip can land on a benign state —
//! e.g. flipping the `TYPE` word's low bit of a `Store` entry produces an
//! *invalidated* slot — and the campaign would count a "missed" detection
//! that never existed. The test
//! `bitflip_with_zero_payload_word_masquerades_as_tear` in `sw-lang`
//! documents the related classification subtlety.
//!
//! Injection is deterministic: [`FaultInjector::new`] seeds a
//! [`SmallRng`], so a failing campaign round reproduces from its seed.
//!
//! # Example
//!
//! ```
//! use sw_faults::{FaultClass, FaultInjector, FaultPlan};
//! use sw_lang::{FuncCtx, HwDesign, LangModel, RuntimeConfig, ThreadRuntime};
//! use sw_model::isa::LockId;
//! use sw_pmem::PmLayout;
//!
//! let layout = PmLayout::new(1, 64);
//! let mut ctx = FuncCtx::new(layout.clone(), 1);
//! let mut rt = ThreadRuntime::new(
//!     &layout, 0, RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn));
//! rt.region_begin(&mut ctx, &[LockId(0)]);
//! rt.store(&mut ctx, layout.heap_base(), 42);
//! rt.region_end(&mut ctx);
//! ctx.mem_mut().persist_all();
//! let mut img = ctx.mem().persisted_image().clone();
//!
//! let mut injector = FaultInjector::new(FaultPlan::single(FaultClass::PoisonLine), 7);
//! let injected = injector.inject(&mut img, &layout);
//! assert_eq!(injected.len(), 1);
//! assert!(img.is_poisoned(sw_pmem::LineAddr(injected[0].line)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;

pub use device::{
    DeviceFault, DeviceFaultClass, DeviceFaultSchedule, DeviceFaultUnit, FaultTrigger,
    OnlineFaultStats, ReadDecision, WriteDecision, BACKOFF_SHIFT_CAP,
};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sw_lang::log::{W_CHECKSUM, W_TYPE};
use sw_lang::{classify_slot, SlotState};
use sw_pmem::{
    classify_heap_slot, Addr, HeapSlotState, PmImage, PmLayout, CACHE_LINE_BYTES,
    HEAP_JOURNAL_SLOTS, HW_CHECKSUM,
};
use sw_trace::{TraceEvent, TraceSink};

/// A class of injectable damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Zero a subset of a published entry's words (checksum included):
    /// a torn persist of an entry whose update may have persisted.
    TornLine,
    /// Flip one bit somewhere in an entry line.
    BitFlip,
    /// Poison the entry's line (uncorrectable media error).
    PoisonLine,
}

impl FaultClass {
    /// All classes, in campaign rotation order.
    pub const ALL: [FaultClass; 3] = [
        FaultClass::TornLine,
        FaultClass::BitFlip,
        FaultClass::PoisonLine,
    ];

    /// Short stable label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::TornLine => "torn",
            FaultClass::BitFlip => "bitflip",
            FaultClass::PoisonLine => "poison",
        }
    }

    /// Label used when the class targets allocator metadata instead of
    /// a workload log.
    pub fn heap_label(self) -> &'static str {
        match self {
            FaultClass::TornLine => "heap-torn",
            FaultClass::BitFlip => "heap-bitflip",
            FaultClass::PoisonLine => "heap-poison",
        }
    }
}

/// What to inject on each [`FaultInjector::inject`] call: one fault per
/// listed class, each into a distinct published log slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fault classes to inject, in order.
    pub classes: Vec<FaultClass>,
}

impl FaultPlan {
    /// A plan injecting a single fault of `class`.
    pub fn single(class: FaultClass) -> Self {
        Self {
            classes: vec![class],
        }
    }

    /// A plan injecting one fault of every class.
    pub fn all() -> Self {
        Self {
            classes: FaultClass::ALL.to_vec(),
        }
    }
}

/// One fault the injector placed, with its verified post-injection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The injected class.
    pub class: FaultClass,
    /// Thread owning the damaged log region.
    pub tid: usize,
    /// Slot index within the region (line offset; slot 0 is the header).
    pub slot: u64,
    /// Damaged cache line (`LineAddr` raw value).
    pub line: u64,
    /// How the slot classifies after injection — always a damaged state.
    pub resulting: SlotState,
}

impl InjectedFault {
    /// `true` when the resulting state fails `Strict`-policy recovery
    /// (corrupt or poisoned, as opposed to a benign-looking tear).
    pub fn is_fatal(&self) -> bool {
        matches!(self.resulting, SlotState::Corrupt | SlotState::Poisoned)
    }
}

/// Deterministic fault injector over crash images.
///
/// Targets are *published* log slots — slots that currently classify as
/// [`SlotState::Valid`] — because damage there is what recovery must
/// detect: free and torn slots are already outside the recovery contract.
/// Each injection picks a distinct slot; when an image has fewer valid
/// slots than the plan has classes, the surplus classes are skipped (the
/// caller sees this from the returned list's length and can treat the
/// round as an uninjected control).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
}

impl FaultInjector {
    /// Creates an injector executing `plan` with randomness derived from
    /// `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Injects the plan's faults into `img` and returns what was placed.
    pub fn inject(&mut self, img: &mut PmImage, layout: &PmLayout) -> Vec<InjectedFault> {
        self.inject_impl(img, layout, None)
    }

    /// As [`FaultInjector::inject`], emitting one `FaultInjected` trace
    /// event per placed fault (timestamped by injection order).
    pub fn inject_traced(
        &mut self,
        img: &mut PmImage,
        layout: &PmLayout,
        sink: &mut dyn TraceSink,
    ) -> Vec<InjectedFault> {
        self.inject_impl(img, layout, Some(sink))
    }

    fn inject_impl(
        &mut self,
        img: &mut PmImage,
        layout: &PmLayout,
        mut sink: Option<&mut dyn TraceSink>,
    ) -> Vec<InjectedFault> {
        let mut candidates = valid_slots(img, layout);
        let mut injected = Vec::new();
        for (i, &class) in self.plan.classes.clone().iter().enumerate() {
            if candidates.is_empty() {
                break;
            }
            let pick = self.rng.gen_range(0..candidates.len());
            let (tid, slot, base) = candidates.swap_remove(pick);
            let resulting = self.damage_slot(img, base, class);
            debug_assert!(resulting.is_damaged(), "injection must be detectable");
            let fault = InjectedFault {
                class,
                tid,
                slot,
                line: base.line().raw(),
                resulting,
            };
            if let Some(s) = sink.as_deref_mut() {
                s.record(
                    i as u64,
                    TraceEvent::FaultInjected {
                        thread: tid as u32,
                        line: fault.line,
                        class: class.label(),
                    },
                );
            }
            injected.push(fault);
        }
        injected
    }

    /// Perturbs the slot at `base` and returns its verified new state.
    fn damage_slot(&mut self, img: &mut PmImage, base: Addr, class: FaultClass) -> SlotState {
        match class {
            FaultClass::PoisonLine => img.poison_line(base.line()),
            FaultClass::TornLine => {
                // Zero the checksum word (guaranteeing a detectable tear —
                // `entry_checksum` is never 0) plus a random subset of the
                // other non-TYPE words, mimicking an arbitrary partial
                // persist. TYPE is kept: zeroing it would classify as a
                // benign invalidated slot.
                img.store(base.offset_words(W_CHECKSUM), 0);
                for w in (W_TYPE + 1)..W_CHECKSUM {
                    if self.rng.gen_bool(0.25) {
                        img.store(base.offset_words(w), 0);
                    }
                }
            }
            FaultClass::BitFlip => {
                // Random flips can land on benign states (an invalidated
                // TYPE, a zero word of a tear-shaped entry that still
                // classifies Valid is impossible, but Invalidated/Free
                // are): retry until the slot classifies as damaged, then
                // fall back to a guaranteed checksum flip.
                for _ in 0..64 {
                    let w = self.rng.gen_range(0..=W_CHECKSUM);
                    let bit = self.rng.gen_range(0..64u32);
                    let addr = base.offset_words(w);
                    let old = img.load(addr);
                    img.store(addr, old ^ (1u64 << bit));
                    if classify_slot(img, base).is_damaged() {
                        return classify_slot(img, base);
                    }
                    img.store(addr, old);
                }
                let addr = base.offset_words(W_CHECKSUM);
                img.store(addr, img.load(addr) ^ (1u64 << 63));
            }
        }
        classify_slot(img, base)
    }
}

/// One allocator-metadata fault the injector placed, with its verified
/// post-injection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedHeapFault {
    /// The injected class.
    pub class: FaultClass,
    /// Heap pool whose journal was damaged.
    pub pool: usize,
    /// Journal slot index within the pool.
    pub slot: u64,
    /// Damaged cache line (`LineAddr` raw value).
    pub line: u64,
    /// How the slot classifies after injection — always a damaged state.
    pub resulting: HeapSlotState,
}

impl InjectedHeapFault {
    /// `true` when the resulting state fails `Strict`-policy recovery
    /// (corrupt or poisoned; a tear is reclaimed as in-flight work).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self.resulting,
            HeapSlotState::Corrupt | HeapSlotState::Poisoned
        )
    }
}

impl FaultInjector {
    /// Injects the plan's faults into the allocator-journal metadata of
    /// `img` — one fault per class, each into a distinct *published*
    /// (checksum-valid) journal slot, possibly across pools. Injection
    /// is self-verifying exactly like the log path: the slot must
    /// re-classify as damaged or the perturbation is re-rolled.
    pub fn inject_heap(&mut self, img: &mut PmImage, layout: &PmLayout) -> Vec<InjectedHeapFault> {
        self.inject_heap_impl(img, layout, None)
    }

    /// As [`FaultInjector::inject_heap`], emitting one `FaultInjected`
    /// trace event per placed fault (`thread` is `u32::MAX`: allocator
    /// metadata is pool-owned, not thread-owned; the class label carries
    /// a `heap-` prefix).
    pub fn inject_heap_traced(
        &mut self,
        img: &mut PmImage,
        layout: &PmLayout,
        sink: &mut dyn TraceSink,
    ) -> Vec<InjectedHeapFault> {
        self.inject_heap_impl(img, layout, Some(sink))
    }

    fn inject_heap_impl(
        &mut self,
        img: &mut PmImage,
        layout: &PmLayout,
        mut sink: Option<&mut dyn TraceSink>,
    ) -> Vec<InjectedHeapFault> {
        let mut candidates = valid_heap_slots(img, layout);
        let mut injected = Vec::new();
        for (i, &class) in self.plan.classes.clone().iter().enumerate() {
            if candidates.is_empty() {
                break;
            }
            let pick = self.rng.gen_range(0..candidates.len());
            let (pool, slot, base) = candidates.swap_remove(pick);
            let resulting = self.damage_heap_slot(img, base, class);
            debug_assert!(
                heap_state_damaged(&resulting),
                "heap injection must be detectable"
            );
            let fault = InjectedHeapFault {
                class,
                pool,
                slot,
                line: base.line().raw(),
                resulting,
            };
            if let Some(s) = sink.as_deref_mut() {
                s.record(
                    i as u64,
                    TraceEvent::FaultInjected {
                        thread: u32::MAX,
                        line: fault.line,
                        class: class.heap_label(),
                    },
                );
            }
            injected.push(fault);
        }
        injected
    }

    /// Perturbs the journal slot at `base` and returns its verified new
    /// state.
    fn damage_heap_slot(
        &mut self,
        img: &mut PmImage,
        base: Addr,
        class: FaultClass,
    ) -> HeapSlotState {
        match class {
            FaultClass::PoisonLine => img.poison_line(base.line()),
            FaultClass::TornLine => {
                // Zero the checksum (a valid record's checksum is never
                // zero) plus a random subset of the payload words after
                // KIND; keeping KIND non-zero rules out the all-zero
                // `Free` classification, so the result is always `Torn`.
                img.store(base.offset_words(HW_CHECKSUM), 0);
                for w in 1..HW_CHECKSUM {
                    if self.rng.gen_bool(0.25) {
                        img.store(base.offset_words(w), 0);
                    }
                }
            }
            FaultClass::BitFlip => {
                // Re-roll flips that land benign (e.g. one that zeroes a
                // word turns the record into a tear-shaped — still
                // detectable — state, but a flip restricted to the unused
                // eighth word would not); fall back to a checksum flip
                // that keeps every word non-zero, i.e. `Corrupt`.
                for _ in 0..64 {
                    let w = self.rng.gen_range(0..=HW_CHECKSUM);
                    let bit = self.rng.gen_range(0..64u32);
                    let addr = base.offset_words(w);
                    let old = img.load(addr);
                    img.store(addr, old ^ (1u64 << bit));
                    let got = classify_heap_slot(img, base);
                    if heap_state_damaged(&got) {
                        return got;
                    }
                    img.store(addr, old);
                }
                let addr = base.offset_words(HW_CHECKSUM);
                img.store(addr, img.load(addr) ^ (1u64 << 63));
            }
        }
        classify_heap_slot(img, base)
    }
}

/// `true` for heap-slot states recovery must notice.
fn heap_state_damaged(s: &HeapSlotState) -> bool {
    matches!(
        s,
        HeapSlotState::Torn | HeapSlotState::Corrupt | HeapSlotState::Poisoned
    )
}

/// Enumerates the published (checksum-valid) allocator-journal slots of
/// every heap pool.
fn valid_heap_slots(img: &PmImage, layout: &PmLayout) -> Vec<(usize, u64, Addr)> {
    let mut out = Vec::new();
    for pool in 0..layout.heap_pools() {
        for slot in 0..HEAP_JOURNAL_SLOTS {
            let base = layout.heap_journal_slot(pool, slot);
            if matches!(classify_heap_slot(img, base), HeapSlotState::Valid(_)) {
                out.push((pool, slot, base));
            }
        }
    }
    out
}

/// Enumerates the published (checksum-valid) log slots of every thread.
fn valid_slots(img: &PmImage, layout: &PmLayout) -> Vec<(usize, u64, Addr)> {
    let mut out = Vec::new();
    for tid in 0..layout.threads() {
        let region = layout.log_region(tid);
        let lines = region.bytes / CACHE_LINE_BYTES;
        for slot in 1..lines {
            let base = Addr(region.base.raw() + slot * CACHE_LINE_BYTES);
            if matches!(classify_slot(img, base), SlotState::Valid(_)) {
                out.push((tid, slot, base));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_lang::recovery::{recover_with_policy, RecoveryPolicy};
    use sw_lang::{FuncCtx, HwDesign, LangModel, RuntimeConfig, ThreadRuntime};
    use sw_model::isa::LockId;

    /// A committed and an uncommitted region: the log holds a commit
    /// record plus two live undo entries.
    fn crashed_image() -> (PmImage, PmLayout) {
        let layout = PmLayout::new(1, 64);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
        );
        let x = layout.heap_base();
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, x, 42);
        rt.region_end(&mut ctx);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, x, 43);
        rt.store(&mut ctx, x.offset_words(8), 44);
        // No region_end: entries stay live.
        ctx.mem_mut().persist_all();
        (ctx.mem().persisted_image().clone(), layout)
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let (img, layout) = crashed_image();
        let run = |seed| {
            let mut img = img.clone();
            FaultInjector::new(FaultPlan::all(), seed).inject(&mut img, &layout)
        };
        assert_eq!(run(5), run(5));
        // Distinct seeds eventually pick distinct targets; just ensure the
        // plan fully applies either way.
        assert_eq!(run(5).len(), 3);
        assert_eq!(run(6).len(), 3);
    }

    #[test]
    fn every_class_yields_a_damaged_detectable_slot() {
        for (i, class) in FaultClass::ALL.into_iter().enumerate() {
            let (mut img, layout) = crashed_image();
            let faults = FaultInjector::new(FaultPlan::single(class), 100 + i as u64)
                .inject(&mut img, &layout);
            assert_eq!(faults.len(), 1, "{class:?} must find a target");
            let f = faults[0];
            assert!(f.resulting.is_damaged());
            // Salvage-policy recovery must count the damage.
            let out = recover_with_policy(&mut img, &layout, RecoveryPolicy::Salvage)
                .expect("salvage never errors");
            assert!(
                out.report.detected.total() >= 1,
                "{class:?} went undetected: {:?}",
                out.report.detected
            );
            assert_eq!(out.salvaged_threads, vec![f.tid]);
        }
    }

    #[test]
    fn torn_injection_classifies_torn_and_poison_poisoned() {
        let (mut img, layout) = crashed_image();
        let faults = FaultInjector::new(FaultPlan::single(FaultClass::TornLine), 1)
            .inject(&mut img, &layout);
        assert_eq!(faults[0].resulting, SlotState::Torn);
        assert!(!faults[0].is_fatal());
        let faults = FaultInjector::new(FaultPlan::single(FaultClass::PoisonLine), 1)
            .inject(&mut img, &layout);
        assert_eq!(faults[0].resulting, SlotState::Poisoned);
        assert!(faults[0].is_fatal());
    }

    #[test]
    fn bitflips_over_many_seeds_always_detectable() {
        for seed in 0..50 {
            let (mut img, layout) = crashed_image();
            let faults = FaultInjector::new(FaultPlan::single(FaultClass::BitFlip), seed)
                .inject(&mut img, &layout);
            assert_eq!(faults.len(), 1);
            assert!(faults[0].resulting.is_damaged(), "seed {seed}");
        }
    }

    #[test]
    fn empty_image_yields_no_injection() {
        let layout = PmLayout::new(1, 64);
        let mut img = PmImage::new();
        let faults = FaultInjector::new(FaultPlan::all(), 3).inject(&mut img, &layout);
        assert!(faults.is_empty());
        assert_eq!(img, PmImage::new(), "no targets, no mutation");
    }

    #[test]
    fn plan_faults_land_on_distinct_slots() {
        let (mut img, layout) = crashed_image();
        let faults = FaultInjector::new(FaultPlan::all(), 11).inject(&mut img, &layout);
        let mut slots: Vec<u64> = faults.iter().map(|f| f.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), faults.len());
    }

    /// Allocator-journal records in every pool: three setup carves per
    /// pool, persisted.
    fn heap_image() -> (PmImage, PmLayout) {
        let layout = PmLayout::new(1, 64);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        for pool in 0..layout.heap_pools() {
            let mut heap = ctx.heap_pool(pool);
            heap.alloc_lines(4);
            heap.alloc_lines(2);
            heap.alloc_lines(1);
        }
        ctx.mem_mut().persist_all();
        (ctx.mem().persisted_image().clone(), layout)
    }

    #[test]
    fn heap_injection_is_deterministic_per_seed() {
        let (img, layout) = heap_image();
        let run = |seed| {
            let mut img = img.clone();
            FaultInjector::new(FaultPlan::all(), seed).inject_heap(&mut img, &layout)
        };
        assert_eq!(run(9), run(9));
        assert_eq!(run(9).len(), 3);
    }

    #[test]
    fn heap_torn_is_benign_and_counted() {
        let (mut img, layout) = heap_image();
        let faults = FaultInjector::new(FaultPlan::single(FaultClass::TornLine), 3)
            .inject_heap(&mut img, &layout);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].resulting, HeapSlotState::Torn);
        assert!(!faults[0].is_fatal());
        let out = recover_with_policy(&mut img.clone(), &layout, RecoveryPolicy::Salvage)
            .expect("salvage never errors");
        assert!(out.report.detected.torn >= 1);
        // A tear is in-flight work, not damage: no pool quarantined.
        assert!(out.salvaged_pools.is_empty());
        // Strict tolerates tears too.
        recover_with_policy(&mut img, &layout, RecoveryPolicy::Strict)
            .expect("tears do not fail strict");
    }

    #[test]
    fn fatal_heap_faults_quarantine_exactly_one_pool() {
        for (i, class) in [FaultClass::BitFlip, FaultClass::PoisonLine]
            .into_iter()
            .enumerate()
        {
            let (mut img, layout) = heap_image();
            let faults = FaultInjector::new(FaultPlan::single(class), 40 + i as u64)
                .inject_heap(&mut img, &layout);
            assert_eq!(faults.len(), 1, "{class:?} must find a target");
            let f = faults[0];
            assert!(f.is_fatal(), "{class:?} must be fatal");
            // Strict fails fast on corrupt/poisoned allocator metadata.
            recover_with_policy(&mut img.clone(), &layout, RecoveryPolicy::Strict)
                .expect_err("strict must refuse fatal heap damage");
            // Salvage quarantines only the affected pool.
            let out = recover_with_policy(&mut img, &layout, RecoveryPolicy::Salvage)
                .expect("salvage never errors");
            assert_eq!(out.salvaged_pools, vec![f.pool], "{class:?}");
            assert!(out.report.detected.total() >= 1);
        }
    }

    #[test]
    fn heap_bitflips_over_many_seeds_always_detectable() {
        for seed in 0..50 {
            let (mut img, layout) = heap_image();
            let faults = FaultInjector::new(FaultPlan::single(FaultClass::BitFlip), seed)
                .inject_heap(&mut img, &layout);
            assert_eq!(faults.len(), 1);
            assert!(
                matches!(
                    faults[0].resulting,
                    HeapSlotState::Torn | HeapSlotState::Corrupt | HeapSlotState::Poisoned
                ),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn heap_injection_reports_exact_fault_location() {
        let (mut img, layout) = heap_image();
        let faults = FaultInjector::new(FaultPlan::single(FaultClass::BitFlip), 17)
            .inject_heap(&mut img, &layout);
        let f = faults[0];
        // The reported (pool, slot) really is the damaged slot.
        assert_eq!(
            layout.heap_journal_slot(f.pool, f.slot).line().raw(),
            f.line
        );
        let got = sw_pmem::classify_heap_slot(&img, layout.heap_journal_slot(f.pool, f.slot));
        assert_eq!(got, f.resulting);
    }

    #[test]
    fn traced_heap_injection_uses_heap_labels() {
        use sw_trace::RingRecorder;
        let (mut img, layout) = heap_image();
        let rec = RingRecorder::new(16);
        let mut sink = rec.clone();
        let faults = FaultInjector::new(FaultPlan::all(), 2)
            .inject_heap_traced(&mut img, &layout, &mut sink);
        assert_eq!(faults.len(), 3);
        let events = rec.events();
        let labels: Vec<&str> = events
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::FaultInjected { class, thread, .. } => {
                    assert_eq!(thread, u32::MAX);
                    Some(class)
                }
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["heap-torn", "heap-bitflip", "heap-poison"]);
    }

    #[test]
    fn traced_injection_emits_fault_events() {
        use sw_trace::RingRecorder;
        let (mut img, layout) = crashed_image();
        let rec = RingRecorder::new(16);
        let mut sink = rec.clone();
        let faults =
            FaultInjector::new(FaultPlan::all(), 2).inject_traced(&mut img, &layout, &mut sink);
        let events = rec.events();
        let injected: Vec<_> = events
            .iter()
            .filter(|e| e.event.kind() == "fault_injected")
            .collect();
        assert_eq!(injected.len(), faults.len());
    }
}
