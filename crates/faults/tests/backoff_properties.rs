//! Property tests for the online device-fault retry discipline: the
//! exponential backoff is bounded by the shift cap, and seeded random
//! schedules are fully deterministic.

use proptest::prelude::*;

use sw_faults::{
    DeviceFault, DeviceFaultClass, DeviceFaultSchedule, DeviceFaultUnit, FaultTrigger,
    WriteDecision, BACKOFF_SHIFT_CAP,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every retry wait the unit hands out is bounded by
    /// `backoff_base << BACKOFF_SHIFT_CAP`, no matter how many failed
    /// attempts a sticky line accumulates before escalation retires it.
    #[test]
    fn backoff_bounded_by_shift_cap(
        backoff_base in 1u64..4096,
        max_retries in 2u32..40,
        escalate_after in 2u32..40,
    ) {
        let mut s = DeviceFaultSchedule::none();
        s.backoff_base = backoff_base;
        s.max_retries = max_retries;
        s.escalate_after = escalate_after;
        s.faults.push(DeviceFault {
            class: DeviceFaultClass::TransientWriteFail,
            trigger: FaultTrigger::OnLine(7),
            sticky: true,
        });
        let cap = backoff_base << BACKOFF_SHIFT_CAP;
        let mut unit = DeviceFaultUnit::new(s);
        let mut now = 0u64;
        let mut closed = false;
        for _ in 0..200 {
            match unit.on_write(7, now) {
                WriteDecision::Fail { next_at, .. } => {
                    prop_assert!(
                        next_at - now <= cap,
                        "backoff {} exceeds cap {}",
                        next_at - now,
                        cap
                    );
                    now = next_at;
                }
                WriteDecision::Backoff { until } => {
                    prop_assert!(until - now <= cap);
                    now = until;
                }
                WriteDecision::Proceed { .. } | WriteDecision::RemapExhausted { .. } => {
                    closed = true;
                    break;
                }
            }
        }
        // The wear-out path must converge (escalate to a remap) instead
        // of retrying forever.
        prop_assert!(closed, "sticky line never escalated");
    }

    /// Two units built from the same random seed make identical
    /// decisions for an identical access sequence — the determinism the
    /// chaos campaign's reproducers rely on.
    #[test]
    fn random_schedule_deterministic_per_seed(seed in 0u64..1 << 48, scale in 16u64..512) {
        let a = DeviceFaultSchedule::random(seed, scale);
        let b = DeviceFaultSchedule::random(seed, scale);
        prop_assert_eq!(&a, &b);
        let mut ua = DeviceFaultUnit::new(a);
        let mut ub = DeviceFaultUnit::new(b);
        for i in 0..scale {
            let line = i % 32;
            prop_assert_eq!(ua.on_write(line, i * 10), ub.on_write(line, i * 10));
            prop_assert_eq!(ua.on_read(line, i * 10 + 5), ub.on_read(line, i * 10 + 5));
        }
        prop_assert_eq!(ua.stats(), ub.stats());
    }
}
