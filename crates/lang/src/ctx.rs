//! Functional execution context: executes PM programs while recording both
//! the formal-model execution (for crash-state sampling) and per-thread ISA
//! traces (for the timing simulator).

use sw_model::isa::{FenceKind, IsaOp, IsaTrace, LockId};
use sw_model::{Execution, OpKind, OpRef, Program, ThreadId};
use sw_pmem::{Addr, Memory, PmLayout};
use sw_trace::{CounterId, GaugeId, MetricsRegistry, MetricsSnapshot, TraceEvent, TraceSink};

use crate::heap::HeapState;
use crate::mce::{MceError, MceUnit};

/// Per-context instruction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtxStats {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed (persistent and volatile).
    pub stores: u64,
    /// Stores to persistent addresses.
    pub pm_stores: u64,
    /// CLWB flushes issued.
    pub clwbs: u64,
    /// Fences issued, of any kind.
    pub fences: u64,
    /// Lock acquisitions.
    pub locks: u64,
}

/// A functional executor for multi-threaded PM programs.
///
/// The crash-consistency tests in this workspace are *execution-recording*:
/// a workload runs once against `FuncCtx` (single-threaded, with the driver
/// interleaving logical threads at operation granularity); the context
/// applies every access to a [`Memory`] so data-dependent control flow sees
/// real values, and records
///
/// 1. a [`Program`] + global order (the witnessed VMO) for
///    [`Pmo::compute`](sw_model::Pmo::compute), and
/// 2. one [`IsaTrace`] per thread for the timing simulator.
///
/// Program recording can be disabled ([`FuncCtx::set_record_program`]) for
/// large benchmark runs where only the ISA traces are needed.
#[derive(Debug)]
pub struct FuncCtx {
    mem: Memory,
    program: Program,
    order: Vec<OpRef>,
    traces: Vec<IsaTrace>,
    stats: CtxStats,
    record_program: bool,
    next_seq: u64,
    /// Optional runtime-event sink (log appends/commits, recovery phases).
    trace: Option<Box<dyn TraceSink>>,
    metrics: Option<CtxMetrics>,
    /// Armed poisoned lines + pending machine-check trap (see [`mce`]).
    ///
    /// [`mce`]: crate::mce
    mce: Option<Box<MceUnit>>,
    /// Volatile state of the persistent buddy allocator (see [`heap`]).
    ///
    /// [`heap`]: crate::heap
    heap: HeapState,
}

/// Metric IDs registered by [`FuncCtx::enable_metrics`].
#[derive(Debug)]
struct CtxMetrics {
    reg: MetricsRegistry,
    log_appends: CounterId,
    log_commits: CounterId,
    /// Per-thread live (uncommitted) log-entry gauge; `max` is the
    /// log high-water mark of the run.
    log_live: Vec<GaugeId>,
    faults_injected: CounterId,
    faults_detected: CounterId,
    faults_salvaged: CounterId,
    alloc_carves: CounterId,
    alloc_allocs: CounterId,
    alloc_frees: CounterId,
    alloc_checkpoints: CounterId,
}

impl FuncCtx {
    /// Creates a context for `threads` logical threads over a fresh memory.
    ///
    /// The heap pools are formatted here (magic word in each pool
    /// header) through raw memory stores: the headers persist with the
    /// caller's baseline image without appearing in any trace.
    pub fn new(layout: PmLayout, threads: usize) -> Self {
        let heap = HeapState::new(&layout);
        let mut mem = Memory::new(layout.clone());
        for p in 0..layout.heap_pools() {
            mem.store(layout.pool_meta_base(p), sw_pmem::HEAP_MAGIC);
        }
        Self {
            mem,
            program: Program::new(threads),
            order: Vec::new(),
            traces: vec![Vec::new(); threads],
            stats: CtxStats::default(),
            record_program: true,
            next_seq: 1,
            trace: None,
            metrics: None,
            mce: None,
            heap,
        }
    }

    /// The persistent allocator's volatile state.
    pub fn heap_state(&self) -> &HeapState {
        &self.heap
    }

    /// Mutable allocator state (used by [`heap`](crate::heap) and
    /// recovery, which swaps in the rebuilt state).
    pub fn heap_state_mut(&mut self) -> &mut HeapState {
        &mut self.heap
    }

    /// Arms machine-check delivery for `lines` (raw `LineAddr` values):
    /// the first load touching an armed persistent line trips a pending
    /// [`MceError`], collected via [`take_mce`]. Each line trips at most
    /// once. Calling again adds to the armed set.
    ///
    /// [`take_mce`]: FuncCtx::take_mce
    pub fn arm_mce(&mut self, lines: impl IntoIterator<Item = u64>) {
        let unit = self.mce.get_or_insert_with(Default::default);
        unit.armed.extend(lines);
    }

    /// Delivers the pending machine-check trap, if any (oldest first).
    pub fn take_mce(&mut self) -> Option<MceError> {
        self.mce.as_mut().and_then(|u| u.pending.take())
    }

    /// Attaches a trace sink; runtime observability events (log appends,
    /// commits, recovery phases) are recorded into it, timestamped with
    /// the context's logical clock.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Enables the runtime metrics registry: log append/commit and
    /// fault-campaign counters plus a per-thread live-entry gauge whose
    /// `max` is the log high-water mark.
    pub fn enable_metrics(&mut self) {
        let mut reg = MetricsRegistry::new();
        let log_appends = reg.counter("log.appends");
        let log_commits = reg.counter("log.commits");
        let faults_injected = reg.counter("faults.injected");
        let faults_detected = reg.counter("faults.detected");
        let faults_salvaged = reg.counter("faults.salvaged");
        let alloc_carves = reg.counter("alloc.carves");
        let alloc_allocs = reg.counter("alloc.allocs");
        let alloc_frees = reg.counter("alloc.frees");
        let alloc_checkpoints = reg.counter("alloc.checkpoints");
        let log_live = (0..self.traces.len())
            .map(|t| reg.gauge(&format!("thread{t}.log_live")))
            .collect();
        self.metrics = Some(CtxMetrics {
            reg,
            log_appends,
            log_commits,
            log_live,
            faults_injected,
            faults_detected,
            faults_salvaged,
            alloc_carves,
            alloc_allocs,
            alloc_frees,
            alloc_checkpoints,
        });
    }

    /// Frozen metrics values (empty when metrics are disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .as_ref()
            .map(|m| m.reg.snapshot())
            .unwrap_or_default()
    }

    /// Records a runtime observability event, stamped with the current
    /// logical sequence number. One branch when no sink is attached.
    pub fn trace_event(&mut self, event: TraceEvent) {
        if let Some(m) = self.metrics.as_mut() {
            match event {
                TraceEvent::LogAppend { .. } => m.reg.inc(m.log_appends),
                TraceEvent::LogCommit { .. } => m.reg.inc(m.log_commits),
                TraceEvent::FaultInjected { .. } => m.reg.inc(m.faults_injected),
                TraceEvent::CorruptionDetected { .. } => m.reg.inc(m.faults_detected),
                TraceEvent::RegionSalvaged { .. } => m.reg.inc(m.faults_salvaged),
                TraceEvent::HeapAlloc { carve: true, .. } => m.reg.inc(m.alloc_carves),
                TraceEvent::HeapAlloc { carve: false, .. } => m.reg.inc(m.alloc_allocs),
                TraceEvent::HeapFree { .. } => m.reg.inc(m.alloc_frees),
                TraceEvent::HeapCheckpoint { .. } => m.reg.inc(m.alloc_checkpoints),
                _ => {}
            }
        }
        if let Some(sink) = self.trace.as_mut() {
            sink.record(self.next_seq - 1, event);
        }
    }

    /// Notes thread `tid`'s live (uncommitted) log-entry count.
    pub fn note_log_live(&mut self, tid: usize, live: u64) {
        if let Some(m) = self.metrics.as_mut() {
            if let Some(&g) = m.log_live.get(tid) {
                m.reg.set(g, live);
            }
        }
    }

    /// Enables or disables formal-model program recording (ISA traces are
    /// always recorded). Disable for long benchmark runs.
    pub fn set_record_program(&mut self, record: bool) {
        self.record_program = record;
    }

    /// Number of logical threads.
    pub fn num_threads(&self) -> usize {
        self.traces.len()
    }

    /// The memory being executed against.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (used by test setup and recovery).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Instruction counters.
    pub fn stats(&self) -> CtxStats {
        self.stats
    }

    /// A monotonically increasing sequence number (used to timestamp log
    /// entries; a logical clock shared by all threads of the context).
    pub fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// The most recently issued sequence number (0 if none yet).
    pub fn current_seq(&self) -> u64 {
        self.next_seq - 1
    }

    fn record(&mut self, tid: usize, kind: OpKind) {
        if self.record_program {
            let index = self.program.push(tid, kind);
            self.order.push(OpRef {
                thread: ThreadId(tid),
                index,
            });
        }
    }

    /// Executes a load on thread `tid` and returns the value.
    pub fn load(&mut self, tid: usize, addr: Addr) -> u64 {
        self.stats.loads += 1;
        self.traces[tid].push(IsaOp::Load(addr));
        if let Some(unit) = self.mce.as_mut() {
            let line = addr.line().raw();
            if unit.armed.contains(&line) && self.mem.layout().is_persistent(addr) {
                let op_index = self.stats.loads;
                unit.trip(tid, line, op_index);
            }
        }
        // Loads never contribute persist-order edges (Figure 2(g,h)), so
        // they are kept out of the recorded program to bound PMO size.
        self.mem.load(addr)
    }

    /// Executes a store on thread `tid`.
    pub fn store(&mut self, tid: usize, addr: Addr, value: u64) {
        self.stats.stores += 1;
        self.traces[tid].push(IsaOp::Store(addr));
        if self.mem.layout().is_persistent(addr) {
            self.stats.pm_stores += 1;
            self.record(tid, OpKind::Store { addr, value });
        }
        self.mem.store(addr, value);
    }

    /// Issues a CLWB for the line containing `addr` on thread `tid`.
    ///
    /// Functionally a no-op (when a line actually drains is decided by the
    /// crash sampler / simulator); recorded in the ISA trace for timing.
    pub fn clwb(&mut self, tid: usize, addr: Addr) {
        self.stats.clwbs += 1;
        self.traces[tid].push(IsaOp::Clwb(addr));
    }

    /// Issues a persist-ordering fence on thread `tid`.
    pub fn fence(&mut self, tid: usize, kind: FenceKind) {
        self.stats.fences += 1;
        self.traces[tid].push(IsaOp::Fence(kind));
        self.record(tid, kind.op_kind());
    }

    /// Acquires `lock` on thread `tid`.
    ///
    /// The functional driver interleaves threads at region granularity, so
    /// acquisition always succeeds here; the timing simulator arbitrates.
    pub fn lock(&mut self, tid: usize, lock: LockId) {
        self.stats.locks += 1;
        self.traces[tid].push(IsaOp::Lock(lock));
    }

    /// Releases `lock` on thread `tid`.
    pub fn unlock(&mut self, tid: usize, lock: LockId) {
        self.traces[tid].push(IsaOp::Unlock(lock));
    }

    /// Records `cycles` of non-memory work on thread `tid`.
    pub fn compute(&mut self, tid: usize, cycles: u32) {
        self.traces[tid].push(IsaOp::Compute(cycles));
    }

    /// The witnessed execution (program + global order) recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if program recording was disabled.
    pub fn execution(&self) -> Execution {
        assert!(self.record_program, "program recording is disabled");
        Execution::new(self.program.clone(), self.order.clone())
    }

    /// The per-thread ISA traces recorded so far.
    pub fn traces(&self) -> &[IsaTrace] {
        &self.traces
    }

    /// Discards the ISA traces recorded so far (e.g. the setup phase, so a
    /// timing run measures steady state only). The formal program, memory,
    /// and statistics are unaffected.
    pub fn reset_traces(&mut self) {
        for t in &mut self.traces {
            t.clear();
        }
    }

    /// Consumes the context, returning the per-thread ISA traces.
    pub fn into_traces(self) -> Vec<IsaTrace> {
        self.traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> (FuncCtx, Addr) {
        let layout = PmLayout::default();
        let heap = layout.heap_base();
        (FuncCtx::new(layout, 2), heap)
    }

    #[test]
    fn stores_and_loads_hit_memory() {
        let (mut c, a) = ctx();
        c.store(0, a, 7);
        assert_eq!(c.load(1, a), 7);
    }

    #[test]
    fn execution_records_pm_stores_and_fences_only() {
        let (mut c, a) = ctx();
        let volatile = c.mem().layout().volatile_region().base;
        c.store(0, a, 1);
        c.store(0, volatile, 2); // volatile: not in the formal program
        c.load(0, a); // loads: not in the formal program
        c.clwb(0, a); // clwb: not in the formal program
        c.fence(0, FenceKind::PersistBarrier);
        let e = c.execution();
        assert_eq!(e.len(), 2);
        assert_eq!(e.kind_at(0), OpKind::Store { addr: a, value: 1 });
        assert_eq!(e.kind_at(1), OpKind::PersistBarrier);
    }

    #[test]
    fn traces_record_everything_per_thread() {
        let (mut c, a) = ctx();
        c.store(0, a, 1);
        c.clwb(0, a);
        c.lock(1, LockId(3));
        c.compute(1, 10);
        c.unlock(1, LockId(3));
        assert_eq!(c.traces()[0], vec![IsaOp::Store(a), IsaOp::Clwb(a)]);
        assert_eq!(
            c.traces()[1],
            vec![
                IsaOp::Lock(LockId(3)),
                IsaOp::Compute(10),
                IsaOp::Unlock(LockId(3))
            ]
        );
    }

    #[test]
    fn stats_count_instruction_classes() {
        let (mut c, a) = ctx();
        c.store(0, a, 1);
        c.clwb(0, a);
        c.fence(0, FenceKind::Sfence);
        c.load(0, a);
        c.lock(0, LockId(0));
        let s = c.stats();
        assert_eq!(s.stores, 1);
        assert_eq!(s.pm_stores, 1);
        assert_eq!(s.clwbs, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.locks, 1);
    }

    #[test]
    fn seq_is_monotonic() {
        let (mut c, _) = ctx();
        let a = c.next_seq();
        let b = c.next_seq();
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "recording is disabled")]
    fn execution_unavailable_when_recording_disabled() {
        let (mut c, a) = ctx();
        c.set_record_program(false);
        c.store(0, a, 1);
        let _ = c.execution();
    }

    #[test]
    fn interleaved_execution_order_is_preserved() {
        let (mut c, a) = ctx();
        c.store(0, a, 1);
        c.store(1, a.offset_words(8), 2);
        c.store(0, a.offset_words(16), 3);
        let e = c.execution();
        assert_eq!(e.op_ref_at(0).thread, ThreadId(0));
        assert_eq!(e.op_ref_at(1).thread, ThreadId(1));
        assert_eq!(e.op_ref_at(2).thread, ThreadId(0));
    }
}
