//! Write-ahead log formats as pluggable entry codecs.
//!
//! The undo/redo split used to be hardwired through `runtime.rs` and
//! `recovery.rs`; the [`LogFormat`] trait pulls it out, so recovery is a
//! single generic pass that asks the owning format what each decoded entry
//! means ([`recovery_action`]), and the runtime asks its format how to
//! encode a data store and which fences its protocol needs. [`LogStrategy`]
//! is the enum the rest of the stack names formats by; adding a format
//! means one module here and one `ALL` slot.

pub mod redo;
pub mod undo;

use crate::log::{DecodedEntry, EntryPayload, EntryType};
use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::Addr;

/// Which write-ahead-logging strategy the runtime uses.
///
/// The paper evaluates undo logging and sketches redo logging as future
/// work (Section VII, "Hardware logging"): *"Under strand persistency,
/// each failure-atomic transaction may be performed on a separate strand.
/// Within each strand, transactions can create redo logs, issue a persist
/// barrier and then perform in-place updates. A group commit operation can
/// merge strands and commit prior transactions."* [`LogStrategy::Redo`]
/// implements exactly that sketch:
///
/// * each region runs on its own strand: chain stamp, sync entries, redo
///   entries (new values), persist barrier, a per-region commit record,
///   persist barrier, then the deferred in-place updates — so an update
///   can never persist before the commit record that covers it;
/// * reads inside a region go through `ThreadRuntime::load` for
///   read-own-writes over the deferred write set;
/// * a `JoinStrand` **group commit** periodically merges strands and
///   truncates the log (no per-region drain at all — this is where redo
///   beats undo under strands);
/// * recovery *replays* committed redo entries forward instead of rolling
///   back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogStrategy {
    /// Undo logging (the paper's evaluated design, Figure 5).
    Undo,
    /// Redo logging with strand-based group commit (the Section VII
    /// extension).
    Redo,
}

impl LogStrategy {
    /// Both strategies.
    pub const ALL: [LogStrategy; 2] = [LogStrategy::Undo, LogStrategy::Redo];

    /// The format module implementing this strategy — the one place the
    /// enum is dispatched on.
    pub fn format(self) -> &'static dyn LogFormat {
        match self {
            LogStrategy::Undo => &undo::UndoFormat,
            LogStrategy::Redo => &redo::RedoFormat,
        }
    }

    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        self.format().label()
    }
}

impl std::fmt::Display for LogStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What recovery does with one decoded log entry, given the thread's
/// commit cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Bookkeeping consumed by the scan itself (commit records).
    None,
    /// Covered by a commit cut (or superseded): drop the entry.
    Discard,
    /// Apply the entry's value forward, in creation order (redo replay).
    Replay,
    /// Apply the entry's value backward, in reverse creation order (undo
    /// rollback).
    RollBack,
    /// Happens-before metadata: counted, never applied.
    Sync,
}

/// Everything entry encoding and replay ask of a log format. One
/// implementation per strategy, under this module; the `ThreadRuntime`
/// core and `recovery` consult the format and never branch on the entry
/// vocabulary themselves.
pub trait LogFormat: std::fmt::Debug + Sync {
    /// Short label used in benchmark tables.
    fn label(&self) -> &'static str;

    /// `true` when in-place updates are deferred to region end and applied
    /// after the commit record (write-set semantics); `false` for
    /// in-place-with-undo semantics.
    fn defers_updates(&self) -> bool;

    /// Encodes the log entry for one data store (`old` is the pre-store
    /// value, `new` the stored one; each format keeps the one it replays).
    fn encode_store(&self, addr: Addr, old: u64, new: u64) -> EntryPayload;

    /// Fence emitted after the lock-word stamp at region begin. Undo needs
    /// the cross-strand drain (`JoinStrand`/`SFENCE`); redo keeps the whole
    /// region on one strand, so a persist barrier suffices.
    fn lock_stamp_fence(&self, design: HwDesign) -> Option<FenceKind>;

    /// Whether this format's recovery owns entries of `etype`. The sync
    /// vocabulary (acquire/release/begin/end) is shared by both strategies
    /// and owned by undo, the base format.
    fn owns(&self, etype: EntryType) -> bool;

    /// Recovery semantics of one owned entry, given the commit cut.
    fn recovery_action(&self, entry: &DecodedEntry, cut: u64) -> RecoveryAction;
}

/// Recovery semantics of `entry`: asks the format that owns its entry
/// type. Logs may mix vocabularies (a redo log carries undo-owned sync
/// entries), so dispatch is per entry, not per log. Commit records are
/// owned by neither format — the scan consumes them as cut evidence.
pub fn recovery_action(entry: &DecodedEntry, cut: u64) -> RecoveryAction {
    LogStrategy::ALL
        .iter()
        .map(|s| s.format())
        .find(|f| f.owns(entry.etype))
        .map_or(RecoveryAction::None, |f| f.recovery_action(entry, cut))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(etype: EntryType, seq: u64, value: u64) -> DecodedEntry {
        DecodedEntry {
            etype,
            addr: Addr(0x2000_0000),
            value,
            seq,
            aux: 0,
        }
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(LogStrategy::Undo.label(), LogStrategy::Redo.label());
    }

    #[test]
    fn every_entry_type_has_exactly_one_owner_except_commit() {
        let all = [
            EntryType::Store,
            EntryType::Acquire,
            EntryType::Release,
            EntryType::TxBegin,
            EntryType::TxEnd,
            EntryType::Commit,
            EntryType::RedoStore,
        ];
        for etype in all {
            let owners = LogStrategy::ALL
                .iter()
                .filter(|s| s.format().owns(etype))
                .count();
            if etype == EntryType::Commit {
                assert_eq!(owners, 0, "commit records belong to the scan");
            } else {
                assert_eq!(owners, 1, "{etype:?} needs exactly one owner");
            }
        }
    }

    #[test]
    fn recovery_actions_flip_across_the_cut() {
        // Undo: committed entries discard, survivors roll back / skip.
        assert_eq!(
            recovery_action(&entry(EntryType::Store, 5, 1), 5),
            RecoveryAction::Discard
        );
        assert_eq!(
            recovery_action(&entry(EntryType::Store, 6, 1), 5),
            RecoveryAction::RollBack
        );
        assert_eq!(
            recovery_action(&entry(EntryType::Acquire, 6, 1), 5),
            RecoveryAction::Sync
        );
        // Redo: the direction flips — committed entries replay forward.
        assert_eq!(
            recovery_action(&entry(EntryType::RedoStore, 5, 1), 5),
            RecoveryAction::Replay
        );
        assert_eq!(
            recovery_action(&entry(EntryType::RedoStore, 6, 1), 5),
            RecoveryAction::Discard
        );
        assert_eq!(
            recovery_action(&entry(EntryType::Commit, 3, 1), 5),
            RecoveryAction::None
        );
    }

    #[test]
    fn encodings_keep_the_value_each_format_replays() {
        let a = Addr(0x2000_0040);
        let undo = LogStrategy::Undo.format().encode_store(a, 11, 22);
        assert_eq!(undo.etype, EntryType::Store);
        assert_eq!(undo.value, 11, "undo keeps the old value");
        let redo = LogStrategy::Redo.format().encode_store(a, 11, 22);
        assert_eq!(redo.etype, EntryType::RedoStore);
        assert_eq!(redo.value, 22, "redo keeps the new value");
    }
}
