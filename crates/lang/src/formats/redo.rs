//! Redo logging: the Section VII sketch, strand-based group commit.
//!
//! A data store appends the *new* value and defers the in-place update to
//! region end, after the commit record; recovery replays committed entries
//! forward in creation order (their updates may never have persisted) and
//! discards uncommitted ones.

use super::{LogFormat, RecoveryAction};
use crate::log::{DecodedEntry, EntryPayload, EntryType};
use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::Addr;

/// The redo-log entry format.
#[derive(Debug)]
pub struct RedoFormat;

impl LogFormat for RedoFormat {
    fn label(&self) -> &'static str {
        "redo"
    }

    fn defers_updates(&self) -> bool {
        true
    }

    fn encode_store(&self, addr: Addr, _old: u64, new: u64) -> EntryPayload {
        EntryPayload {
            etype: EntryType::RedoStore,
            addr,
            value: new,
            aux: 0,
        }
    }

    fn lock_stamp_fence(&self, design: HwDesign) -> Option<FenceKind> {
        // The whole region stays on one strand, so a persist barrier
        // suffices (and avoids the drain — redo's advantage under strands).
        design.pairwise_fence()
    }

    fn owns(&self, etype: EntryType) -> bool {
        etype == EntryType::RedoStore
    }

    fn recovery_action(&self, entry: &DecodedEntry, cut: u64) -> RecoveryAction {
        if entry.seq <= cut {
            RecoveryAction::Replay
        } else {
            RecoveryAction::Discard
        }
    }
}
