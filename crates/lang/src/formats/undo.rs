//! Undo logging: the paper's evaluated format (Figure 5).
//!
//! A data store appends the *old* value before updating in place; recovery
//! rolls surviving (uncommitted) entries back in reverse creation order.
//! This is the base format, so it also owns the shared synchronization
//! vocabulary (acquire/release/begin/end), which carries happens-before
//! metadata and is never applied to memory.

use super::{LogFormat, RecoveryAction};
use crate::log::{DecodedEntry, EntryPayload, EntryType};
use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::Addr;

/// The undo-log entry format.
#[derive(Debug)]
pub struct UndoFormat;

impl LogFormat for UndoFormat {
    fn label(&self) -> &'static str {
        "undo"
    }

    fn defers_updates(&self) -> bool {
        false
    }

    fn encode_store(&self, addr: Addr, old: u64, _new: u64) -> EntryPayload {
        EntryPayload {
            etype: EntryType::Store,
            addr,
            value: old,
            aux: 0,
        }
    }

    fn lock_stamp_fence(&self, design: HwDesign) -> Option<FenceKind> {
        // Undo regions span strands, so the stamp needs the cross-strand
        // drain edge (Section III, "Establishing inter-thread persist
        // order").
        design.drain_fence()
    }

    fn owns(&self, etype: EntryType) -> bool {
        matches!(
            etype,
            EntryType::Store
                | EntryType::Acquire
                | EntryType::Release
                | EntryType::TxBegin
                | EntryType::TxEnd
        )
    }

    fn recovery_action(&self, entry: &DecodedEntry, cut: u64) -> RecoveryAction {
        if entry.seq <= cut {
            RecoveryAction::Discard
        } else if entry.etype == EntryType::Store {
            RecoveryAction::RollBack
        } else {
            RecoveryAction::Sync
        }
    }
}
