//! Crash-injection harness: samples model-allowed crash states from a
//! recorded execution, runs recovery, and checks consistency.
//!
//! The harness ties the stack together:
//!
//! 1. A workload runs against [`FuncCtx`] (setup first with program
//!    recording off, then the crash-able phase with recording on).
//! 2. [`crash_image`] computes the phase's persist memory order under the
//!    design's formal model and samples one reachable crash state — a
//!    PMO-down-closed subset of the phase's stores layered over the
//!    persisted baseline.
//! 3. [`recover`](crate::recovery::recover()) repairs the image.
//! 4. [`check_replay_consistency`] verifies the recovered state equals a
//!    replay of exactly the committed regions: failure atomicity plus
//!    commit durability.

use rand::Rng;

use sw_model::crash::sample_set;
use sw_model::{crash, Pmo};
use sw_pmem::PmImage;

use crate::ctx::FuncCtx;
use crate::recovery::{recover, RecoveryReport};
use crate::runtime::RegionRecord;
use sw_model::HwDesign;

/// A sampled crash followed by recovery.
#[derive(Debug)]
pub struct CrashOutcome {
    /// The recovered PM image.
    pub image: PmImage,
    /// What recovery did.
    pub report: RecoveryReport,
    /// How many of the phase's stores had persisted at the crash.
    pub persisted_stores: usize,
}

/// Samples one crash state of the recorded phase over `baseline` (the
/// persisted image at phase start) **without** running recovery.
pub fn crash_image<R: Rng>(
    ctx: &FuncCtx,
    baseline: &PmImage,
    design: HwDesign,
    rng: &mut R,
) -> (PmImage, usize) {
    let pmo = Pmo::compute(&ctx.execution(), design.memory_model());
    let set = sample_set(&pmo, rng);
    let persisted = set.iter().filter(|&&b| b).count();
    let state = crash::materialize(&pmo, &set);
    let mut img = baseline.clone();
    // `materialize` resolves same-word winners by visibility order, so the
    // map can be applied in any order.
    for (addr, value) in state {
        img.store(addr, value);
    }
    (img, persisted)
}

/// Samples one crash state, runs recovery, and returns the outcome.
pub fn crash_and_recover<R: Rng>(
    ctx: &FuncCtx,
    baseline: &PmImage,
    design: HwDesign,
    rng: &mut R,
) -> CrashOutcome {
    let (mut image, persisted_stores) = crash_image(ctx, baseline, design, rng);
    let report = recover(&mut image, ctx.mem().layout());
    CrashOutcome {
        image,
        report,
        persisted_stores,
    }
}

/// Checks that the recovered image equals a replay, over `baseline`, of
/// exactly the regions recovery reports as committed (those whose
/// terminating sequence number is at or below the thread's commit cut).
///
/// This is the conjunction of the guarantees the runtimes owe their
/// programs: committed regions are durable in full, uncommitted regions
/// leave no trace.
///
/// # Errors
///
/// Returns a description of the first mismatching address.
pub fn check_replay_consistency(
    outcome: &CrashOutcome,
    baseline: &PmImage,
    regions: &[RegionRecord],
) -> Result<(), String> {
    let cuts = &outcome.report.per_thread_cut;
    let mut expected = baseline.clone();
    let mut ordered: Vec<&RegionRecord> = regions.iter().collect();
    ordered.sort_unstable_by_key(|r| r.first_seq);
    let mut applied = 0usize;
    for region in &ordered {
        let cut = cuts.get(region.tid).copied().unwrap_or(0);
        if region.last_seq <= cut {
            applied += 1;
            for &(addr, _old, new) in &region.writes {
                expected.store(addr, new);
            }
        }
    }
    for region in &ordered {
        for &(addr, _, _) in &region.writes {
            let want = expected.load(addr);
            let got = outcome.image.load(addr);
            if want != got {
                return Err(format!(
                    "replay mismatch at {addr}: expected {want}, recovered {got} \
                     ({applied}/{} regions committed, cuts {:?})",
                    ordered.len(),
                    cuts
                ));
            }
        }
    }
    Ok(())
}

/// Convenience: runs `iterations` crash/recover/check rounds with fresh
/// randomness and returns the number of failures (0 = all consistent).
pub fn crash_rounds<R: Rng>(
    ctx: &FuncCtx,
    baseline: &PmImage,
    regions: &[RegionRecord],
    design: HwDesign,
    iterations: usize,
    rng: &mut R,
) -> usize {
    let mut failures = 0;
    for _ in 0..iterations {
        let outcome = crash_and_recover(ctx, baseline, design, rng);
        if check_replay_consistency(&outcome, baseline, regions).is_err() {
            failures += 1;
        }
    }
    failures
}

/// Snapshot the current persisted image as a phase baseline, persisting all
/// outstanding dirty lines first (orderly setup completion).
pub fn baseline(ctx: &mut FuncCtx) -> PmImage {
    ctx.mem_mut().persist_all();
    ctx.mem().persisted_image().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{LangModel, RuntimeConfig, ThreadRuntime};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sw_model::isa::LockId;
    use sw_pmem::{Addr, PmLayout};

    /// Runs `regions_per_thread` regions on each of `threads` threads, each
    /// region writing a canary pair (x, y) with x == y.
    ///
    /// With `shared_data` every thread updates the *same* pair (exercising
    /// cross-thread strong persist atomicity); without it each thread owns
    /// its pair. Eagerly-committing TXN guarantees globally consistent
    /// commit cuts (a committed region's lock predecessors are committed),
    /// so it is checked with shared data. The batched SFR/ATLAS runtimes
    /// guarantee per-thread cuts only — cross-thread cut consistency needs
    /// the decoupled-SFR log pruner the paper inherits from prior work — so
    /// they are checked with per-thread data (see DESIGN.md).
    fn canary_workload(
        design: HwDesign,
        lang: LangModel,
        threads: usize,
        regions_per_thread: usize,
        shared_data: bool,
    ) -> (FuncCtx, PmImage, Vec<RegionRecord>) {
        let layout = PmLayout::new(threads, 128);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), threads);
        ctx.set_record_program(false);
        // Setup phase: nothing to initialize beyond zeroed memory.
        let base = baseline(&mut ctx);
        ctx.set_record_program(true);
        let mut rts: Vec<ThreadRuntime> = (0..threads)
            .map(|t| ThreadRuntime::new(&layout, t, RuntimeConfig::new(design, lang).recording()))
            .collect();
        for round in 0..regions_per_thread {
            for (t, rt) in rts.iter_mut().enumerate() {
                // All threads share lock 0.
                rt.region_begin(&mut ctx, &[LockId(0)]);
                let pair = if shared_data {
                    heap
                } else {
                    heap.offset_words(16 * t as u64)
                };
                let v = (round * threads + t + 1) as u64;
                rt.store(&mut ctx, pair, v);
                rt.store(&mut ctx, pair.offset_words(8), v);
                rt.region_end(&mut ctx);
            }
        }
        let regions: Vec<RegionRecord> = rts
            .into_iter()
            .flat_map(ThreadRuntime::into_records)
            .collect();
        (ctx, base, regions)
    }

    #[test]
    fn strandweaver_crashes_are_always_consistent() {
        let (ctx, base, regions) =
            canary_workload(HwDesign::StrandWeaver, LangModel::Txn, 2, 4, true);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(
            crash_rounds(&ctx, &base, &regions, HwDesign::StrandWeaver, 60, &mut rng),
            0
        );
    }

    #[test]
    fn intel_and_hops_crashes_are_always_consistent() {
        for design in [HwDesign::IntelX86, HwDesign::Hops] {
            let (ctx, base, regions) = canary_workload(design, LangModel::Txn, 2, 4, true);
            let mut rng = SmallRng::seed_from_u64(11);
            assert_eq!(
                crash_rounds(&ctx, &base, &regions, design, 60, &mut rng),
                0,
                "{design}"
            );
        }
    }

    #[test]
    fn batched_models_are_consistent_on_thread_local_data() {
        for lang in [LangModel::Sfr, LangModel::Atlas] {
            let (ctx, base, regions) = canary_workload(HwDesign::StrandWeaver, lang, 2, 4, false);
            let mut rng = SmallRng::seed_from_u64(17);
            assert_eq!(
                crash_rounds(&ctx, &base, &regions, HwDesign::StrandWeaver, 60, &mut rng),
                0,
                "{lang}"
            );
        }
    }

    #[test]
    fn coordinated_commits_make_batched_shared_data_consistent() {
        use crate::runtime::coordinated_commit;
        // Shared canary pair + batched SFR commits, but committed through
        // the coordinated (hb-safe) protocol: every sampled crash must be
        // consistent.
        let threads = 2;
        let layout = PmLayout::new(threads, 128);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), threads);
        let base = baseline(&mut ctx);
        let mut rts: Vec<ThreadRuntime> = (0..threads)
            .map(|t| {
                let mut cfg =
                    RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Sfr).recording();
                cfg.commit_threshold = Some(100); // self-commit disabled
                ThreadRuntime::new(&layout, t, cfg)
            })
            .collect();
        for round in 0..5usize {
            for (t, rt) in rts.iter_mut().enumerate() {
                rt.region_begin(&mut ctx, &[LockId(0)]);
                let v = (round * threads + t + 1) as u64;
                rt.store(&mut ctx, heap, v);
                rt.store(&mut ctx, heap.offset_words(8), v);
                rt.region_end(&mut ctx);
            }
            if round % 2 == 1 {
                coordinated_commit(&mut ctx, &mut rts);
            }
        }
        let regions: Vec<RegionRecord> = rts
            .into_iter()
            .flat_map(ThreadRuntime::into_records)
            .collect();
        let mut rng = SmallRng::seed_from_u64(23);
        assert_eq!(
            crash_rounds(&ctx, &base, &regions, HwDesign::StrandWeaver, 120, &mut rng),
            0,
            "coordinated commits keep per-thread cuts globally consistent"
        );
    }

    #[test]
    fn non_atomic_eventually_violates_consistency() {
        // The paper's NON-ATOMIC design removes the log→update ordering and
        // "does not assure correct failure recovery" — the harness must be
        // able to observe that.
        let (ctx, base, regions) = canary_workload(HwDesign::NonAtomic, LangModel::Txn, 2, 6, true);
        let mut rng = SmallRng::seed_from_u64(13);
        let failures = crash_rounds(&ctx, &base, &regions, HwDesign::NonAtomic, 300, &mut rng);
        assert!(
            failures > 0,
            "non-atomic should break atomicity under crash sampling"
        );
    }

    #[test]
    fn canary_pairs_match_after_recovery() {
        let (ctx, base, regions) =
            canary_workload(HwDesign::StrandWeaver, LangModel::Sfr, 2, 4, false);
        let heap = ctx.mem().layout().heap_base();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..40 {
            let outcome = crash_and_recover(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
            check_replay_consistency(&outcome, &base, &regions).unwrap();
            for t in 0..2u64 {
                let pair = heap.offset_words(16 * t);
                assert_eq!(
                    outcome.image.load(pair),
                    outcome.image.load(pair.offset_words(8)),
                    "canary pair must never tear"
                );
            }
        }
    }

    #[test]
    fn crash_image_layers_over_baseline() {
        let layout = PmLayout::new(1, 64);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        ctx.set_record_program(false);
        ctx.store(0, heap.offset_words(100), 55); // setup data
        let base = baseline(&mut ctx);
        ctx.set_record_program(true);
        let mut rng = SmallRng::seed_from_u64(1);
        let (img, persisted) = crash_image(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
        assert_eq!(persisted, 0, "no phase stores were executed");
        assert_eq!(img.load(heap.offset_words(100)), 55, "baseline survives");
        assert_eq!(img.load(Addr(0x1000_0000)), 0);
    }
}
