//! Crash-injection harness: samples model-allowed crash states from a
//! recorded execution, runs recovery, and checks consistency.
//!
//! The harness ties the stack together:
//!
//! 1. A workload runs against [`FuncCtx`] (setup first with program
//!    recording off, then the crash-able phase with recording on).
//! 2. [`crash_image`] computes the phase's persist memory order under the
//!    design's formal model and samples one reachable crash state — a
//!    PMO-down-closed subset of the phase's stores layered over the
//!    persisted baseline.
//! 3. [`recover`](crate::recovery::recover()) repairs the image.
//! 4. A consistency check matching the model's contract
//!    ([`Consistency`](crate::Consistency)) verifies the recovered state:
//!    [`check_replay_consistency`] for the logged models (the recovered
//!    image equals a replay of exactly the committed regions — failure
//!    atomicity plus commit durability), [`check_prefix_consistency`] for
//!    log-free models (the image equals the baseline plus some prefix of
//!    the run's stores in execution order — strict persistency, no
//!    rollback).

use std::collections::HashSet;

use rand::Rng;

use sw_model::crash::sample_set;
use sw_model::{crash, Pmo};
use sw_pmem::{Addr, PmImage, PmLayout};

use crate::ctx::FuncCtx;
use crate::recovery::{
    recover, recover_with_policy, PolicyOutcome, RecoveryPolicy, RecoveryReport,
};
use crate::runtime::RegionRecord;
use sw_model::HwDesign;

/// A sampled crash followed by recovery.
#[derive(Debug)]
pub struct CrashOutcome {
    /// The recovered PM image.
    pub image: PmImage,
    /// What recovery did.
    pub report: RecoveryReport,
    /// How many of the phase's stores had persisted at the crash.
    pub persisted_stores: usize,
}

/// Samples one crash state of the recorded phase over `baseline` (the
/// persisted image at phase start) **without** running recovery.
pub fn crash_image<R: Rng>(
    ctx: &FuncCtx,
    baseline: &PmImage,
    design: HwDesign,
    rng: &mut R,
) -> (PmImage, usize) {
    let pmo = Pmo::compute(&ctx.execution(), design.memory_model());
    let set = sample_set(&pmo, rng);
    let persisted = set.iter().filter(|&&b| b).count();
    let state = crash::materialize(&pmo, &set);
    let mut img = baseline.clone();
    // `materialize` resolves same-word winners by visibility order, so the
    // map can be applied in any order.
    for (addr, value) in state {
        img.store(addr, value);
    }
    (img, persisted)
}

/// Samples one crash state, runs recovery, and returns the outcome.
pub fn crash_and_recover<R: Rng>(
    ctx: &FuncCtx,
    baseline: &PmImage,
    design: HwDesign,
    rng: &mut R,
) -> CrashOutcome {
    let (mut image, persisted_stores) = crash_image(ctx, baseline, design, rng);
    let report = recover(&mut image, ctx.mem().layout());
    CrashOutcome {
        image,
        report,
        persisted_stores,
    }
}

/// Checks that the recovered image equals a replay, over `baseline`, of
/// exactly the regions recovery reports as committed (those whose
/// terminating sequence number is at or below the thread's commit cut).
///
/// This is the conjunction of the guarantees the runtimes owe their
/// programs: committed regions are durable in full, uncommitted regions
/// leave no trace.
///
/// # Errors
///
/// Returns a description of the first mismatching address.
pub fn check_replay_consistency(
    outcome: &CrashOutcome,
    baseline: &PmImage,
    regions: &[RegionRecord],
) -> Result<(), String> {
    let cuts = &outcome.report.per_thread_cut;
    let mut expected = baseline.clone();
    let mut ordered: Vec<&RegionRecord> = regions.iter().collect();
    ordered.sort_unstable_by_key(|r| r.first_seq);
    let mut applied = 0usize;
    for region in &ordered {
        let cut = cuts.get(region.tid).copied().unwrap_or(0);
        if region.last_seq <= cut {
            applied += 1;
            for &(addr, _old, new) in &region.writes {
                expected.store(addr, new);
            }
        }
    }
    for region in &ordered {
        for &(addr, _, _) in &region.writes {
            let want = expected.load(addr);
            let got = outcome.image.load(addr);
            if want != got {
                return Err(format!(
                    "replay mismatch at {addr}: expected {want}, recovered {got} \
                     ({applied}/{} regions committed, cuts {:?})",
                    ordered.len(),
                    cuts
                ));
            }
        }
    }
    Ok(())
}

/// Checks that the recovered image equals `baseline` plus some *prefix* of
/// the recorded regions' stores in execution order — the contract of the
/// log-free ([`Consistency::DurablePrefix`](crate::Consistency)) models on
/// persist-at-visibility hardware: strict persistency makes every crash
/// state a prefix of the store order, and with no log there is no rollback,
/// so a crash may land mid-region but never reorders or tears individual
/// stores.
///
/// The check is over the set of addresses the regions wrote (lock words
/// and other protocol state are outside the contract).
///
/// # Errors
///
/// Returns a description of the nearest-miss prefix when no prefix
/// matches.
pub fn check_prefix_consistency(
    outcome: &CrashOutcome,
    baseline: &PmImage,
    regions: &[RegionRecord],
) -> Result<(), String> {
    let mut ordered: Vec<&RegionRecord> = regions.iter().collect();
    ordered.sort_unstable_by_key(|r| r.first_seq);
    let writes: Vec<(sw_pmem::Addr, u64)> = ordered
        .iter()
        .flat_map(|r| r.writes.iter().map(|&(addr, _old, new)| (addr, new)))
        .collect();
    // Walk the prefixes incrementally: `expected` tracks the image after
    // the first k writes, `mismatches` how many written addresses differ
    // from the recovered image.
    let mut expected: std::collections::HashMap<sw_pmem::Addr, u64> = writes
        .iter()
        .map(|&(addr, _)| (addr, baseline.load(addr)))
        .collect();
    let mut mismatches = expected
        .iter()
        .filter(|&(&addr, &want)| outcome.image.load(addr) != want)
        .count();
    let mut best = (mismatches, 0usize);
    if mismatches == 0 {
        return Ok(());
    }
    for (k, &(addr, new)) in writes.iter().enumerate() {
        let got = outcome.image.load(addr);
        let slot = expected.get_mut(&addr).expect("seeded above");
        if (*slot != got) != (new != got) {
            if new == got {
                mismatches -= 1;
            } else {
                mismatches += 1;
            }
        }
        *slot = new;
        if mismatches == 0 {
            return Ok(());
        }
        if mismatches < best.0 {
            best = (mismatches, k + 1);
        }
    }
    Err(format!(
        "no store-order prefix matches the recovered image: best prefix \
         (first {} of {} writes) still differs at {} addresses",
        best.1,
        writes.len(),
        best.0
    ))
}

/// [`check_replay_consistency`] restricted to the data a `Salvage`-policy
/// recovery still vouches for: every address written by a region of a
/// salvaged thread is dropped from the contract (the salvaged thread's log
/// was damaged, so neither its rollback nor its commit evidence can be
/// trusted — including on addresses it shares with healthy threads).
///
/// `image` is the recovered image `recover_with_policy` produced.
///
/// # Errors
///
/// Returns a description of the first mismatching in-contract address.
pub fn check_salvage_consistency(
    image: &PmImage,
    outcome: &PolicyOutcome,
    baseline: &PmImage,
    regions: &[RegionRecord],
) -> Result<(), String> {
    let salvaged: HashSet<usize> = outcome.salvaged_threads.iter().copied().collect();
    let excluded: HashSet<Addr> = regions
        .iter()
        .filter(|r| salvaged.contains(&r.tid))
        .flat_map(|r| r.writes.iter().map(|&(addr, _, _)| addr))
        .collect();
    let cuts = &outcome.report.per_thread_cut;
    let mut expected = baseline.clone();
    let mut ordered: Vec<&RegionRecord> = regions.iter().collect();
    ordered.sort_unstable_by_key(|r| r.first_seq);
    for region in &ordered {
        let cut = cuts.get(region.tid).copied().unwrap_or(0);
        if region.last_seq <= cut {
            for &(addr, _old, new) in &region.writes {
                expected.store(addr, new);
            }
        }
    }
    for region in &ordered {
        if salvaged.contains(&region.tid) {
            continue;
        }
        for &(addr, _, _) in &region.writes {
            if excluded.contains(&addr) {
                continue;
            }
            let want = expected.load(addr);
            let got = image.load(addr);
            if want != got {
                return Err(format!(
                    "salvage mismatch at {addr}: expected {want}, recovered {got} \
                     (salvaged threads {:?}, cuts {:?})",
                    outcome.salvaged_threads, cuts
                ));
            }
        }
    }
    Ok(())
}

/// Checks that recovery converges when it is itself interrupted by a
/// crash: recover `crash` fully; then, on a fresh copy, persist only a
/// random subset of recovery's writes (the crash-during-recovery state)
/// and recover again. Both paths must land on the identical image.
///
/// This holds because recovery never mutates log regions (see
/// `sw-lang::recovery` module docs): the second pass recomputes the same
/// write list from the untouched logs and overwrites whatever subset the
/// interrupted pass had persisted.
///
/// # Errors
///
/// Returns a description when either recovery fails under `policy` or the
/// two recovered images differ.
pub fn recovery_reconverges<R: Rng>(
    crash: &PmImage,
    layout: &PmLayout,
    policy: RecoveryPolicy,
    rng: &mut R,
) -> Result<(), String> {
    let mut full = crash.clone();
    let outcome = recover_with_policy(&mut full, layout, policy)
        .map_err(|e| format!("baseline recovery failed: {e}"))?;
    let mut interrupted = crash.clone();
    let mut persisted = 0usize;
    for &(addr, value) in &outcome.writes {
        if rng.gen_bool(0.5) {
            interrupted.store(addr, value);
            persisted += 1;
        }
    }
    let second = recover_with_policy(&mut interrupted, layout, policy)
        .map_err(|e| format!("re-recovery after interruption failed: {e}"))?;
    if second.report != outcome.report {
        return Err(format!(
            "re-recovery diverged in its report after {persisted}/{} partial \
             writes: {:?} vs {:?}",
            outcome.writes.len(),
            second.report,
            outcome.report
        ));
    }
    if interrupted != full {
        return Err(format!(
            "re-recovery diverged from the uninterrupted image after \
             {persisted}/{} partial writes persisted",
            outcome.writes.len()
        ));
    }
    Ok(())
}

/// Convenience: runs `iterations` crash/recover/check rounds with fresh
/// randomness and returns the number of failures (0 = all consistent).
pub fn crash_rounds<R: Rng>(
    ctx: &FuncCtx,
    baseline: &PmImage,
    regions: &[RegionRecord],
    design: HwDesign,
    iterations: usize,
    rng: &mut R,
) -> usize {
    let mut failures = 0;
    for _ in 0..iterations {
        let outcome = crash_and_recover(ctx, baseline, design, rng);
        if check_replay_consistency(&outcome, baseline, regions).is_err() {
            failures += 1;
        }
    }
    failures
}

/// Snapshot the current persisted image as a phase baseline, persisting all
/// outstanding dirty lines first (orderly setup completion).
pub fn baseline(ctx: &mut FuncCtx) -> PmImage {
    ctx.mem_mut().persist_all();
    ctx.mem().persisted_image().clone()
}
