//! Language-level interface to the persistent buddy allocator.
//!
//! [`HeapHandle`] is the one place workloads acquire persistent memory
//! from: it replaces the old per-workload `heap_region().bump()`
//! boilerplate. Two disciplines share the pool metadata:
//!
//! * **Setup carves** ([`HeapHandle::alloc_lines`] /
//!   [`HeapHandle::alloc_words`] / [`HeapHandle::alloc_arena`]) bump
//!   the pool frontier exactly like the old `Bump`, so structure roots
//!   keep their historical addresses. Each carve appends an alloc
//!   record to the pool's PM journal through *raw* memory stores: the
//!   records persist with the baseline image but never enter the ISA
//!   traces or the recorded program, keeping the timing figures
//!   bit-identical.
//! * **Run-time churn** ([`ThreadRuntime::heap_alloc`] /
//!   [`ThreadRuntime::heap_free`]) allocates buddy blocks with the
//!   journal append routed through [`ThreadRuntime::store`], so the
//!   record is undo-logged with the region that performed it: if the
//!   region rolls back at recovery, the journal record rolls back with
//!   it and the allocator's durable history stays exactly the
//!   committed history.
//!
//! Freed blocks are quarantined until [`FuncCtx::heap_quiesce`], which
//! callers invoke at a point where every earlier region is durably
//! committed (e.g. right after a coordinated commit). Quiesce also
//! folds a near-full journal into a checkpoint table
//! ([`FuncCtx::heap_checkpoint`]): entries and count first, a persist
//! barrier, then the epoch word — the entries-then-commit-last
//! discipline of `sw_pmem::remap`.

use sw_model::isa::FenceKind;
use sw_pmem::{
    encode_checkpoint, encode_heap_record, Addr, BlockKind, Bump, PoolAlloc, Region, RegionKind,
    CACHE_LINE_BYTES, HEAP_JOURNAL_SLOTS,
};
use sw_trace::TraceEvent;

use crate::ctx::FuncCtx;
use crate::runtime::ThreadRuntime;

/// Checkpoint when the journal reaches this many used slots.
pub const JOURNAL_HIGH_WATER: u64 = HEAP_JOURNAL_SLOTS - 64;

/// Volatile allocator state of every pool, owned by [`FuncCtx`].
#[derive(Debug, Clone, PartialEq)]
pub struct HeapState {
    pools: Vec<PoolAlloc>,
    /// Word-granular carve frontier per pool (absolute address), so
    /// `alloc_words` packs within lines exactly like the old `Bump`.
    word_next: Vec<Addr>,
    /// Pools quarantined by Salvage-policy recovery.
    quarantined: Vec<bool>,
}

impl HeapState {
    /// Fresh allocator state for `layout`'s pools.
    pub fn new(layout: &sw_pmem::PmLayout) -> Self {
        let pools = (0..layout.heap_pools())
            .map(|p| PoolAlloc::new(layout.pool_arena_lines(p)))
            .collect();
        let word_next = (0..layout.heap_pools())
            .map(|p| layout.pool_arena_base(p))
            .collect();
        Self {
            pools,
            word_next,
            quarantined: vec![false; layout.heap_pools()],
        }
    }

    /// The volatile state of pool `pool`.
    pub fn pool(&self, pool: usize) -> &PoolAlloc {
        &self.pools[pool]
    }

    /// Mutable volatile state of pool `pool`.
    pub fn pool_mut(&mut self, pool: usize) -> &mut PoolAlloc {
        &mut self.pools[pool]
    }

    /// Number of pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Marks `pool` quarantined (damaged metadata; Salvage recovery).
    pub fn quarantine(&mut self, pool: usize) {
        self.quarantined[pool] = true;
    }

    /// `true` when `pool` was quarantined by recovery.
    pub fn is_quarantined(&self, pool: usize) -> bool {
        self.quarantined[pool]
    }

    /// Rebuilds allocator state from a recovered image: each healthy
    /// pool's checkpoint table and journal replay to its live-block set;
    /// damaged pools come up empty and quarantined. Returns the raw
    /// per-pool recovery alongside the state.
    pub fn rebuild(
        img: &sw_pmem::PmImage,
        layout: &sw_pmem::PmLayout,
    ) -> (Self, sw_pmem::HeapRecovery) {
        let rec = sw_pmem::recover_heap(img, layout);
        let mut s = Self::new(layout);
        for (p, rebuilt) in rec.pools.iter().enumerate() {
            match rebuilt {
                Some(pa) => {
                    s.word_next[p] = layout
                        .pool_arena_base(p)
                        .offset_words(pa.frontier() * (CACHE_LINE_BYTES / 8));
                    s.pools[p] = pa.clone();
                }
                None => s.quarantined[p] = true,
            }
        }
        (s, rec)
    }

    /// Reclaims every live *dynamic* block not reachable from `roots`
    /// (leaks from crash-interrupted allocations whose publishing store
    /// never persisted). Volatile-only: the journal still records the
    /// allocation, so an interrupted reclaim simply re-runs — recovery
    /// stays idempotent. Returns `(pool, offset, lines)` per reclaimed
    /// block.
    pub fn reclaim_unreachable(
        &mut self,
        layout: &sw_pmem::PmLayout,
        roots: &[Addr],
    ) -> Vec<(usize, u64, u64)> {
        let rooted: std::collections::HashSet<u64> = roots.iter().map(|a| a.raw()).collect();
        let mut reclaimed = Vec::new();
        for pool in 0..self.pools.len() {
            if self.quarantined[pool] {
                continue;
            }
            let leaked: Vec<(u64, u64)> = self.pools[pool]
                .live_blocks()
                .filter(|&(off, _, kind)| {
                    kind == BlockKind::Dynamic
                        && !rooted.contains(&layout.pool_line_addr(pool, off).raw())
                })
                .map(|(off, lines, _)| (off, lines))
                .collect();
            for (off, lines) in leaked {
                self.pools[pool].free(off);
                reclaimed.push((pool, off, lines));
            }
            self.pools[pool].release_pending();
        }
        reclaimed
    }
}

/// A borrow of the context scoped to one heap pool: the allocation
/// interface workloads use during setup.
#[derive(Debug)]
pub struct HeapHandle<'a> {
    ctx: &'a mut FuncCtx,
    pool: usize,
}

impl FuncCtx {
    /// An allocation handle over pool 0 (whose arena starts at
    /// `layout.heap_base()`, preserving historical carve addresses).
    pub fn heap(&mut self) -> HeapHandle<'_> {
        self.heap_pool(0)
    }

    /// An allocation handle over pool `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is out of range.
    pub fn heap_pool(&mut self, pool: usize) -> HeapHandle<'_> {
        assert!(pool < self.heap_state().pool_count(), "pool out of range");
        HeapHandle { ctx: self, pool }
    }

    /// Releases quarantined frees back to the free lists and folds any
    /// near-full journal into a checkpoint. Must only be called when
    /// every region that allocated or freed so far is durably
    /// committed (a coordinated-commit boundary, or any point under an
    /// eager-commit model outside a region): a rollback after reuse
    /// would double-allocate.
    pub fn heap_quiesce(&mut self) {
        for pool in 0..self.heap_state().pool_count() {
            self.heap_state_mut().pool_mut(pool).release_pending();
            if self.heap_state().pool(pool).next_slot >= JOURNAL_HIGH_WATER {
                self.heap_checkpoint(pool);
            }
        }
    }

    /// Folds pool `pool`'s journal into its next checkpoint table and
    /// starts a fresh epoch. Uses recorded stores and persist barriers
    /// so crash sampling observes the entries-then-commit-last order;
    /// same quiesce precondition as [`FuncCtx::heap_quiesce`].
    pub fn heap_checkpoint(&mut self, pool: usize) {
        let layout = self.mem().layout().clone();
        let (epoch, blocks, used_slots) = {
            let p = self.heap_state().pool(pool);
            (
                p.epoch + 1,
                p.live_blocks().collect::<Vec<_>>(),
                p.next_slot,
            )
        };
        let table = layout.heap_table_base(pool, ((epoch - 1) % 2) as usize);
        let w = encode_checkpoint(epoch, &blocks);
        for &(off, v) in &w.pre {
            self.store(0, table.offset_words(off), v);
        }
        self.fence(0, FenceKind::PersistBarrier);
        for &(off, v) in &w.body {
            self.store(0, table.offset_words(off), v);
        }
        self.fence(0, FenceKind::PersistBarrier);
        self.store(0, table.offset_words(w.publish.0), w.publish.1);
        self.fence(0, FenceKind::PersistBarrier);
        // The new table is authoritative; recycle the journal. Appends
        // always land on all-zero slots, so a torn append can never
        // masquerade as corruption of a stale record.
        for slot in 0..used_slots {
            let base = layout.heap_journal_slot(pool, slot);
            for word in 0..8 {
                self.store(0, base.offset_words(word), 0);
            }
        }
        self.fence(0, FenceKind::PersistBarrier);
        {
            let p = self.heap_state_mut().pool_mut(pool);
            p.epoch = epoch;
            p.next_slot = 0;
            p.stats.checkpoints += 1;
        }
        self.trace_event(TraceEvent::HeapCheckpoint {
            pool: pool as u32,
            epoch,
            blocks: blocks.len() as u64,
        });
    }

    /// Appends a journal record through raw memory stores (setup path:
    /// persists with the baseline, invisible to traces and the
    /// recorded program).
    fn heap_journal_raw(
        &mut self,
        pool: usize,
        is_alloc: bool,
        off: u64,
        lines: u64,
        kind: BlockKind,
    ) {
        let layout = self.mem().layout().clone();
        let (slot, words) = {
            let p = self.heap_state_mut().pool_mut(pool);
            assert!(
                p.next_slot < HEAP_JOURNAL_SLOTS,
                "allocator journal full during setup; checkpoint required"
            );
            let slot = p.next_slot;
            let seq = p.next_seq;
            p.next_slot += 1;
            p.next_seq += 1;
            (
                slot,
                encode_heap_record(is_alloc, off, lines, seq, p.epoch, kind),
            )
        };
        let base = layout.heap_journal_slot(pool, slot);
        for (i, &v) in words.iter().enumerate() {
            self.mem_mut().store(base.offset_words(i as u64), v);
        }
    }
}

impl<'a> HeapHandle<'a> {
    /// The pool this handle allocates from.
    pub fn pool(&self) -> usize {
        self.pool
    }

    fn arena_base(&self) -> Addr {
        self.ctx.mem().layout().pool_arena_base(self.pool)
    }

    /// Carves `lines` whole cache lines at the pool frontier,
    /// line-aligned — a drop-in for `Bump::alloc_lines`.
    ///
    /// `alloc_lines(0)` is well-defined: it aligns the frontier to the
    /// next line boundary and returns it without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the pool arena is exhausted.
    pub fn alloc_lines(&mut self, lines: u64) -> Addr {
        let base = self.arena_base();
        let aligned = {
            let st = self.ctx.heap_state_mut();
            let next = st.word_next[self.pool];
            let aligned = Addr(next.raw().next_multiple_of(CACHE_LINE_BYTES));
            st.word_next[self.pool] = aligned;
            aligned
        };
        if lines == 0 {
            return aligned;
        }
        let off = self
            .ctx
            .heap_state_mut()
            .pool_mut(self.pool)
            .carve(lines)
            .expect("heap pool exhausted");
        let addr = Addr(base.raw() + off * CACHE_LINE_BYTES);
        debug_assert_eq!(addr, aligned, "carve frontier out of sync");
        self.ctx.heap_state_mut().word_next[self.pool] =
            Addr(addr.raw() + lines * CACHE_LINE_BYTES);
        self.ctx
            .heap_journal_raw(self.pool, true, off, lines, BlockKind::Carve);
        self.ctx.trace_event(TraceEvent::HeapAlloc {
            pool: self.pool as u32,
            off,
            lines,
            carve: true,
        });
        addr
    }

    /// Carves `words` machine words at the word frontier, packing
    /// within partially-used lines — a drop-in for `Bump::alloc_words`.
    /// Whole lines are claimed from the pool lazily as the frontier
    /// crosses into them.
    ///
    /// `alloc_words(0)` is well-defined: it returns the current word
    /// frontier and allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the pool arena is exhausted.
    pub fn alloc_words(&mut self, words: u64) -> Addr {
        let base = self.arena_base();
        let (addr, need) = {
            let st = self.ctx.heap_state_mut();
            let a = st.word_next[self.pool];
            let end = a.offset_words(words);
            st.word_next[self.pool] = end;
            let covered = st.pool(self.pool).frontier();
            let end_line = (end.raw() - base.raw()).div_ceil(CACHE_LINE_BYTES);
            (a, end_line.saturating_sub(covered))
        };
        if need > 0 {
            let off = self
                .ctx
                .heap_state_mut()
                .pool_mut(self.pool)
                .carve(need)
                .expect("heap pool exhausted");
            self.ctx
                .heap_journal_raw(self.pool, true, off, need, BlockKind::Carve);
            self.ctx.trace_event(TraceEvent::HeapAlloc {
                pool: self.pool as u32,
                off,
                lines: need,
                carve: true,
            });
        }
        addr
    }

    /// Carves a `lines`-line arena block and returns a volatile bump
    /// allocator over it, for workloads that sub-allocate fixed-size
    /// nodes from a pre-sized region (hashmap, RB-tree). The whole
    /// block is one live carve in the allocator's books; the bump
    /// hands out the same sequential addresses the old whole-heap
    /// `Bump` did.
    pub fn alloc_arena(&mut self, lines: u64) -> Bump {
        let base = self.alloc_lines(lines);
        Region {
            base,
            bytes: lines * CACHE_LINE_BYTES,
            kind: RegionKind::Heap,
        }
        .bump()
    }
}

impl ThreadRuntime {
    /// Allocates a dynamic buddy block of at least `lines` lines from
    /// the calling thread's shard pool (`tid % pools`), journaling the
    /// allocation through the undo log of the current region: if the
    /// region rolls back, the allocation is reclaimed with it.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted or its journal is full (callers
    /// must reach a [`FuncCtx::heap_quiesce`] point often enough).
    pub fn heap_alloc(&mut self, ctx: &mut FuncCtx, lines: u64) -> Addr {
        let pool = self.tid() % ctx.heap_state().pool_count();
        let layout = ctx.mem().layout().clone();
        let (off, block, slot, words) = {
            let p = ctx.heap_state_mut().pool_mut(pool);
            assert!(
                p.next_slot < HEAP_JOURNAL_SLOTS,
                "allocator journal full; call heap_quiesce at a commit boundary"
            );
            let off = p.alloc(lines).expect("heap pool exhausted");
            let block = lines.max(1).next_power_of_two();
            let slot = p.next_slot;
            let seq = p.next_seq;
            p.next_slot += 1;
            p.next_seq += 1;
            (
                off,
                block,
                slot,
                encode_heap_record(true, off, block, seq, p.epoch, BlockKind::Dynamic),
            )
        };
        let base = layout.heap_journal_slot(pool, slot);
        for (i, &v) in words.iter().enumerate() {
            self.store(ctx, base.offset_words(i as u64), v);
        }
        ctx.trace_event(TraceEvent::HeapAlloc {
            pool: pool as u32,
            off,
            lines: block,
            carve: false,
        });
        layout.pool_line_addr(pool, off)
    }

    /// Frees the dynamic block at `addr`, journaling the free with the
    /// current region (rolled back together) and quarantining the
    /// block until the next [`FuncCtx::heap_quiesce`].
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not the base of a live dynamic block.
    pub fn heap_free(&mut self, ctx: &mut FuncCtx, addr: Addr) {
        let layout = ctx.mem().layout().clone();
        let pool = layout.pool_of(addr).expect("address outside heap arenas");
        let off = (addr.raw() - layout.pool_arena_base(pool).raw()) / CACHE_LINE_BYTES;
        let (lines, slot, words) = {
            let p = ctx.heap_state_mut().pool_mut(pool);
            assert!(
                p.next_slot < HEAP_JOURNAL_SLOTS,
                "allocator journal full; call heap_quiesce at a commit boundary"
            );
            let lines = p.free(off).expect("not a live dynamic block");
            let slot = p.next_slot;
            let seq = p.next_seq;
            p.next_slot += 1;
            p.next_seq += 1;
            (
                lines,
                slot,
                encode_heap_record(false, off, lines, seq, p.epoch, BlockKind::Dynamic),
            )
        };
        let base = layout.heap_journal_slot(pool, slot);
        for (i, &v) in words.iter().enumerate() {
            self.store(ctx, base.offset_words(i as u64), v);
        }
        ctx.trace_event(TraceEvent::HeapFree {
            pool: pool as u32,
            off,
            lines,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::LangModel;
    use crate::runtime::RuntimeConfig;
    use sw_model::isa::LockId;
    use sw_model::HwDesign;
    use sw_pmem::{recover_heap, PmLayout};

    #[test]
    fn handle_carves_match_old_bump_addresses() {
        let layout = PmLayout::new(1, 64);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut old = layout.heap_region().bump();
        let mut h = ctx.heap();
        // Mixed word/line pattern exercising alignment.
        assert_eq!(h.alloc_lines(2), old.alloc_lines(2));
        assert_eq!(h.alloc_words(3), old.alloc_words(3));
        assert_eq!(h.alloc_words(1), old.alloc_words(1));
        assert_eq!(h.alloc_lines(1), old.alloc_lines(1));
        assert_eq!(h.alloc_lines(0), old.alloc_lines(0));
        assert_eq!(h.alloc_words(0), old.alloc_words(0));
    }

    #[test]
    fn setup_carves_persist_into_the_journal() {
        let layout = PmLayout::new(1, 64);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        ctx.heap().alloc_lines(4);
        ctx.heap().alloc_lines(2);
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        let rec = recover_heap(&img, &layout);
        assert!(rec.faults.is_empty());
        let p0 = rec.pools[0].as_ref().unwrap();
        let live: Vec<_> = p0.live_blocks().collect();
        assert_eq!(
            live,
            vec![
                (0, 4, sw_pmem::BlockKind::Carve),
                (4, 2, sw_pmem::BlockKind::Carve)
            ]
        );
        assert_eq!(p0.frontier(), 6);
    }

    #[test]
    fn carves_do_not_touch_isa_traces_or_program() {
        let layout = PmLayout::new(1, 64);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        ctx.heap().alloc_lines(4);
        ctx.heap().alloc_words(5);
        assert!(ctx.traces()[0].is_empty());
        assert_eq!(ctx.execution().len(), 0);
    }

    #[test]
    fn churn_allocs_are_region_atomic() {
        let layout = PmLayout::new(1, 256);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
        );
        rt.region_begin(&mut ctx, &[LockId(0)]);
        let a = rt.heap_alloc(&mut ctx, 2);
        rt.store(&mut ctx, a, 77);
        rt.region_end(&mut ctx);
        // Committed: the alloc record must survive a full persist.
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        let rec = recover_heap(&img, &layout);
        let p0 = rec.pools[0].as_ref().unwrap();
        assert_eq!(p0.live_count(), 1);
        assert_eq!(p0.stats.allocs, 1);
    }

    #[test]
    fn free_quarantines_until_quiesce_then_coalesces() {
        let layout = PmLayout::new(1, 256);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
        );
        rt.region_begin(&mut ctx, &[LockId(0)]);
        let a = rt.heap_alloc(&mut ctx, 4);
        rt.region_end(&mut ctx);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.heap_free(&mut ctx, a);
        rt.region_end(&mut ctx);
        let arena = layout.pool_arena_lines(0);
        assert_eq!(ctx.heap_state().pool(0).pending_blocks(), 1);
        assert_eq!(ctx.heap_state().pool(0).free_lines(), arena - 4);
        ctx.heap_quiesce();
        assert_eq!(ctx.heap_state().pool(0).pending_blocks(), 0);
        assert_eq!(ctx.heap_state().pool(0).free_lines(), arena);
    }

    #[test]
    fn checkpoint_folds_journal_and_survives_recovery() {
        let layout = PmLayout::new(1, 4096);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let root = ctx.heap().alloc_lines(2);
        assert_eq!(root, layout.heap_base());
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
        );
        let mut blocks = Vec::new();
        for i in 0..8 {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            let a = rt.heap_alloc(&mut ctx, 1);
            rt.store(&mut ctx, a, i);
            rt.region_end(&mut ctx);
            blocks.push(a);
        }
        ctx.heap_checkpoint(0);
        assert_eq!(ctx.heap_state().pool(0).epoch, 1);
        assert_eq!(ctx.heap_state().pool(0).next_slot, 0);
        // Post-checkpoint churn lands in the fresh epoch.
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.heap_free(&mut ctx, blocks[0]);
        rt.region_end(&mut ctx);
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        let rec = recover_heap(&img, &layout);
        assert!(rec.faults.is_empty(), "{:?}", rec.faults);
        let p0 = rec.pools[0].as_ref().unwrap();
        // carve + 8 allocs - 1 free = 8 live blocks.
        assert_eq!(p0.live_count(), 8);
        assert_eq!(p0.epoch, 1);
        assert!(p0.accounting_exact());
    }
}
