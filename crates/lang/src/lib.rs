//! Language-level persistency runtimes for the StrandWeaver reproduction
//! (paper Section V).
//!
//! This crate implements the software half of the paper: write-ahead
//! logging built on the ISA primitives of a chosen hardware design,
//! integrated with four language-level persistency models:
//!
//! * **TXN** — failure-atomic transactions (PMDK-style, eager commit),
//! * **SFR** — synchronization-free regions (batched commits),
//! * **ATLAS** — outermost critical sections (batched commits, heavier
//!   lock bookkeeping),
//! * **Native** — log-free regions, legal only on eADR-class designs that
//!   persist stores at visibility,
//!
//! each lowered onto any of the hardware designs of the evaluation
//! ([`HwDesign`]): Intel x86, HOPS, StrandWeaver without a persist queue,
//! full StrandWeaver, the non-atomic upper bound, and battery-backed eADR.
//!
//! The crate is layered like the simulator: a model-agnostic
//! [`ThreadRuntime`] core owns the region lifecycle and delegates every
//! per-model decision to a [`CommitPolicy`] (one module per model under
//! [`policies`]) and every undo/redo encoding decision to a [`LogFormat`]
//! (under [`formats`]).
//!
//! The crate also provides post-failure [`recovery`] and a crash-injection
//! [`harness`] that samples formally-allowed crash states (via `sw-model`)
//! and checks that recovery restores failure atomicity.
//!
//! # Example
//!
//! ```
//! use sw_lang::{FuncCtx, HwDesign, LangModel, RuntimeConfig, ThreadRuntime};
//! use sw_model::isa::LockId;
//! use sw_pmem::PmLayout;
//!
//! let layout = PmLayout::new(1, 256);
//! let mut ctx = FuncCtx::new(layout.clone(), 1);
//! let mut rt = ThreadRuntime::new(
//!     &layout, 0, RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn));
//!
//! let x = layout.heap_base();
//! rt.region_begin(&mut ctx, &[LockId(0)]);
//! rt.store(&mut ctx, x, 42); // undo-logged, failure-atomic
//! rt.region_end(&mut ctx);   // committed
//! assert_eq!(ctx.mem().load(x), 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ctx;
pub mod formats;
pub mod harness;
pub mod heap;
pub mod log;
pub mod mce;
pub mod policies;
pub mod recovery;
pub(crate) mod runtime;

pub use ctx::{CtxStats, FuncCtx};
pub use formats::{LogFormat, LogStrategy, RecoveryAction};
pub use heap::{HeapHandle, HeapState, JOURNAL_HIGH_WATER};
pub use log::{classify_slot, scan_log_detailed, DetailedScan, SlotState};
pub use mce::MceError;
pub use policies::{CommitPolicy, Consistency, LangModel};
pub use recovery::{
    FaultCounts, HeapSummary, PolicyOutcome, RecoveryError, RecoveryFault, RecoveryPolicy,
    RecoveryReport,
};
pub use runtime::{
    coordinated_commit, RegionRecord, RuntimeConfig, ThreadRuntime, COMMIT_TOKEN_LOCK,
    GLOBAL_CUT_LOCK, REDO_CHAIN_LOCK_BASE,
};
pub use sw_model::HwDesign;
