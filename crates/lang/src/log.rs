//! Per-thread circular undo-log buffer (paper Section V, Figures 5 and 6).
//!
//! The log is an array of 64-byte, cache-line-aligned entries in a
//! per-thread PM region. Entry slot 0 is a header line holding the
//! persistent *head* pointer (Figure 6); the *tail* pointer lives in
//! volatile memory so that entries created on different strands are not
//! serialized through it (a consequence of strong persist atomicity — paper
//! Section V, "Log structure").
//!
//! ## Entry format
//!
//! | word | field | |
//! |---|---|---|
//! | 0 | `TYPE` | entry kind; 0 = free/invalidated |
//! | 1 | `ADDR` | address of the update (store entries) |
//! | 2 | `VALUE` | old value (store) / metadata (sync) / commit cut (commit) |
//! | 3 | `SEQ`  | global logical timestamp |
//! | 4 | `AUX`  | lock id / happens-before metadata |
//! | 5 | `CHECKSUM` | covers words 0–4 |
//!
//! The checksum makes entry publication single-flush while remaining sound
//! under the word-granular persist model: a torn entry fails its checksum
//! and is ignored by recovery, and the pairwise log→update fence guarantees
//! a torn entry's in-place update never persisted. (The paper uses a
//! `Valid` bit and relies on cache-line-atomic drains; the checksum is the
//! equivalent under our stricter, word-granular crash sampler — see
//! DESIGN.md.)
//!
//! ## Commit (Figure 6)
//!
//! Commit appends a dedicated *commit record* carrying the sequence number
//! of the terminating entry (the paper's commit-intent marker), drains,
//! invalidates the committed entries (`TYPE := 0`), drains, then advances
//! and flushes the persistent head pointer. Recovery treats every valid
//! entry with `SEQ` at or below the highest persisted commit cut of its
//! thread as committed.

use sw_model::isa::FenceKind;
use sw_pmem::{Addr, PmImage, Region, CACHE_LINE_BYTES};

use crate::ctx::FuncCtx;
use sw_model::HwDesign;

/// Word offset of the `TYPE` field within a log entry.
pub const W_TYPE: u64 = 0;
/// Word offset of the `ADDR` field within a log entry.
pub const W_ADDR: u64 = 1;
/// Word offset of the `VALUE` field within a log entry.
pub const W_VALUE: u64 = 2;
/// Word offset of the `SEQ` field within a log entry.
pub const W_SEQ: u64 = 3;
/// Word offset of the `AUX` field within a log entry.
pub const W_AUX: u64 = 4;
/// Word offset of the `CHECKSUM` field within a log entry (covers words
/// 0–4).
pub const W_CHECKSUM: u64 = 5;

/// Kinds of log entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryType {
    /// Undo information for one store: address + old value.
    Store,
    /// Synchronization acquire (lock / SFR acquire); `AUX` = lock id,
    /// `VALUE` = happens-before predecessor (last release seq on the lock).
    Acquire,
    /// Synchronization release; `AUX` = lock id.
    Release,
    /// Transaction begin (TXN model).
    TxBegin,
    /// Transaction end (TXN model). The terminating entry of a region.
    TxEnd,
    /// Commit record: `VALUE` = highest committed seq (the commit cut).
    Commit,
    /// Redo information for one store: address + **new** value (the redo
    /// extension of Section VII; see `sw-lang::runtime::LogStrategy`).
    RedoStore,
}

impl EntryType {
    fn code(self) -> u64 {
        match self {
            EntryType::Store => 1,
            EntryType::Acquire => 2,
            EntryType::Release => 3,
            EntryType::TxBegin => 4,
            EntryType::TxEnd => 5,
            EntryType::Commit => 6,
            EntryType::RedoStore => 7,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            1 => EntryType::Store,
            2 => EntryType::Acquire,
            3 => EntryType::Release,
            4 => EntryType::TxBegin,
            5 => EntryType::TxEnd,
            6 => EntryType::Commit,
            7 => EntryType::RedoStore,
            _ => return None,
        })
    }
}

/// Payload of a log entry prior to sequencing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPayload {
    /// Entry kind.
    pub etype: EntryType,
    /// Address field (store entries; 0 otherwise).
    pub addr: Addr,
    /// Value field (old value / metadata / commit cut).
    pub value: u64,
    /// Auxiliary field (lock id, etc.).
    pub aux: u64,
}

/// A decoded, checksum-valid log entry as seen by recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedEntry {
    /// Entry kind.
    pub etype: EntryType,
    /// Address field.
    pub addr: Addr,
    /// Value field.
    pub value: u64,
    /// Sequence number.
    pub seq: u64,
    /// Auxiliary field.
    pub aux: u64,
}

/// Entry checksum: a cheap mix over the five payload words. Its purpose is
/// tear detection under randomized crash sampling, not adversarial
/// integrity.
pub(crate) fn entry_checksum(ty: u64, addr: u64, value: u64, seq: u64, aux: u64) -> u64 {
    const SALT: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = SALT;
    for w in [ty, addr, value, seq, aux] {
        h = (h ^ w).wrapping_mul(0x100_0000_01b3);
        h = h.rotate_left(23);
    }
    // Never collide with the all-zero free slot.
    h | 1
}

/// Classification of one log slot in a crashed PM image, as the
/// fault-aware recovery scan sees it.
///
/// The benign states (`Free`, `Invalidated`, `Valid`, `Torn`) all occur in
/// natural crash states; `Corrupt` and `Poisoned` cannot — see
/// [`classify_slot`] for the argument — so recovery's `Strict` policy can
/// fail fast on them with zero false positives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// All six words read zero: never used (or fully unpersisted).
    Free,
    /// `TYPE` is zero but stale words remain: invalidated by a commit.
    Invalidated,
    /// Checksum-valid entry.
    Valid(DecodedEntry),
    /// Checksum mismatch explainable as a torn publication: the checksum
    /// word reads zero, or some payload word reads zero (an unpersisted
    /// word of a fresh slot). Benign — recovery ignores the slot, exactly
    /// as the pairwise log→update fence permits.
    Torn,
    /// Checksum mismatch *not* explainable as a tear: every word is
    /// nonzero yet the checksum disagrees. Media or software corruption.
    Corrupt,
    /// The line is poisoned (uncorrectable media error).
    Poisoned,
}

impl SlotState {
    /// `true` for the damage states recovery must report (`Torn`,
    /// `Corrupt`, `Poisoned`).
    pub fn is_damaged(self) -> bool {
        matches!(
            self,
            SlotState::Torn | SlotState::Corrupt | SlotState::Poisoned
        )
    }
}

/// Classifies the log slot at `line_base`.
///
/// Soundness of the `Corrupt` verdict on natural (uninjected) crash
/// states: a slot that has never been reused holds at most one entry, each
/// of whose words either persisted (reads its true value) or did not
/// (reads zero). The checksum word is written as `entry_checksum(..) | 1`,
/// never zero — so a nonzero stored checksum that fails verification means
/// some covered word differs from what was written, and on a fresh slot a
/// differing word can only read zero. Such tears classify as `Torn`;
/// `Corrupt` (all words nonzero, checksum wrong) is therefore unreachable
/// without injected corruption. Slot *reuse* (a wrapped log) can mix stale
/// and fresh words and break this argument; the crash harness keeps logs
/// wrap-free (capacity ≫ entries per run), and DESIGN.md §"Fault model"
/// records the caveat.
pub fn classify_slot(img: &PmImage, line_base: Addr) -> SlotState {
    if img.is_poisoned(line_base.line()) {
        return SlotState::Poisoned;
    }
    let ty = img.load(line_base.offset_words(W_TYPE));
    let addr = img.load(line_base.offset_words(W_ADDR));
    let value = img.load(line_base.offset_words(W_VALUE));
    let seq = img.load(line_base.offset_words(W_SEQ));
    let aux = img.load(line_base.offset_words(W_AUX));
    let checksum = img.load(line_base.offset_words(W_CHECKSUM));
    let payload = [ty, addr, value, seq, aux];
    if checksum == 0 && payload == [0; 5] {
        return SlotState::Free;
    }
    if ty == 0 {
        return SlotState::Invalidated;
    }
    if checksum == entry_checksum(ty, addr, value, seq, aux) {
        return match EntryType::from_code(ty) {
            Some(etype) => SlotState::Valid(DecodedEntry {
                etype,
                addr: Addr(addr),
                value,
                seq,
                aux,
            }),
            // A checksum that verifies over an unknown type code cannot be
            // a tear (the checksum never persists as a stale match on a
            // fresh slot): crafted corruption.
            None => SlotState::Corrupt,
        };
    }
    if checksum == 0 || payload.contains(&0) {
        SlotState::Torn
    } else {
        SlotState::Corrupt
    }
}

/// Per-slot results of a fault-aware scan over one log region
/// ([`scan_log_detailed`]). `slot` indexes are line offsets within the
/// region (1 = first data slot; 0 is the header line, not scanned).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetailedScan {
    /// Checksum-valid entries, in slot order.
    pub entries: Vec<DecodedEntry>,
    /// Slots classified [`SlotState::Torn`].
    pub torn: Vec<u64>,
    /// Slots classified [`SlotState::Corrupt`].
    pub corrupt: Vec<u64>,
    /// Slots classified [`SlotState::Poisoned`].
    pub poisoned: Vec<u64>,
    /// Count of invalidated slots.
    pub invalidated: usize,
    /// Count of free slots.
    pub free: usize,
}

impl DetailedScan {
    /// `true` when the region holds any damaged slot (torn, corrupt, or
    /// poisoned).
    pub fn damaged(&self) -> bool {
        !(self.torn.is_empty() && self.corrupt.is_empty() && self.poisoned.is_empty())
    }
}

/// Classifies every slot of thread `tid`'s log region. Unlike [`scan_log`]
/// (which silently skips anything that fails to decode), the detailed scan
/// reports *why* each undecodable slot failed, so recovery can distinguish
/// benign tears from corruption.
pub fn scan_log_detailed(img: &PmImage, region: Region) -> DetailedScan {
    let lines = region.bytes / CACHE_LINE_BYTES;
    let mut scan = DetailedScan::default();
    for i in 1..lines {
        let base = Addr(region.base.raw() + i * CACHE_LINE_BYTES);
        match classify_slot(img, base) {
            SlotState::Free => scan.free += 1,
            SlotState::Invalidated => scan.invalidated += 1,
            SlotState::Valid(e) => scan.entries.push(e),
            SlotState::Torn => scan.torn.push(i),
            SlotState::Corrupt => scan.corrupt.push(i),
            SlotState::Poisoned => scan.poisoned.push(i),
        }
    }
    scan
}

/// Decodes the entry stored at `line_base` in a PM image. Returns `None`
/// for free, invalidated, or torn entries.
pub fn decode_entry(img: &PmImage, line_base: Addr) -> Option<DecodedEntry> {
    let ty = img.load(line_base.offset_words(W_TYPE));
    let addr = img.load(line_base.offset_words(W_ADDR));
    let value = img.load(line_base.offset_words(W_VALUE));
    let seq = img.load(line_base.offset_words(W_SEQ));
    let aux = img.load(line_base.offset_words(W_AUX));
    let checksum = img.load(line_base.offset_words(W_CHECKSUM));
    if checksum != entry_checksum(ty, addr, value, seq, aux) {
        return None;
    }
    let etype = EntryType::from_code(ty)?;
    Some(DecodedEntry {
        etype,
        addr: Addr(addr),
        value,
        seq,
        aux,
    })
}

/// The per-thread undo log runtime state.
///
/// All mutation goes through a [`FuncCtx`] so that every store, flush, and
/// fence is both executed functionally and recorded for the crash sampler
/// and the timing simulator.
///
/// The most recent commit record is kept live until the *next* commit
/// invalidates it. This guarantees that once any trace of a commit has
/// persisted, the commit cut itself is visible to recovery — without it,
/// a crash after the invalidations persisted but before the head-pointer
/// flush would leave a committed region with no durable evidence of its
/// commit.
#[derive(Debug)]
pub struct UndoLog {
    region: Region,
    tid: usize,
    /// Data-entry capacity (slot 0 is the header line).
    capacity: u64,
    /// Slot of the previous commit record (start of the live zone). Mirrors
    /// the persistent head pointer.
    head: u64,
    /// Next slot to append to (volatile, lost on crash).
    tail: u64,
    /// Entries appended since the last commit (excludes the retained
    /// previous commit record).
    uncommitted: u64,
    /// Whether a previous commit record occupies the `head` slot.
    has_committed: bool,
    /// Highest seq appended since the last commit.
    last_seq: u64,
}

impl UndoLog {
    /// Creates the runtime state for the log in `region` belonging to
    /// thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the region holds fewer than two cache lines (header plus at
    /// least one data entry).
    pub fn new(region: Region, tid: usize) -> Self {
        let lines = region.bytes / CACHE_LINE_BYTES;
        assert!(
            lines >= 2,
            "log region must hold a header and at least one entry"
        );
        Self {
            region,
            tid,
            capacity: lines - 1,
            head: 0,
            tail: 0,
            uncommitted: 0,
            has_committed: false,
            last_seq: 0,
        }
    }

    /// Data-entry capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of entries appended since the last commit.
    pub fn live(&self) -> u64 {
        self.uncommitted
    }

    /// Highest sequence number appended to this log.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Base address of data slot `i`.
    fn slot(&self, i: u64) -> Addr {
        debug_assert!(i < self.capacity);
        Addr(self.region.base.raw() + (1 + i) * CACHE_LINE_BYTES)
    }

    /// Base address of the header line (persistent head pointer).
    fn header(&self) -> Addr {
        self.region.base
    }

    /// Appends an entry: writes the six entry words and issues a CLWB for
    /// the entry line (single-flush publication). Returns the entry's
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the log is full; callers must commit before that point
    /// (the paper allocates overflow space dynamically; we bound the region
    /// and force timely commits instead — see DESIGN.md).
    pub fn append(&mut self, ctx: &mut FuncCtx, payload: EntryPayload) -> u64 {
        let occupancy = self.uncommitted + u64::from(self.has_committed);
        assert!(
            occupancy < self.capacity,
            "undo log full: commit before appending"
        );
        let seq = ctx.next_seq();
        let base = self.slot(self.tail);
        let ty = payload.etype.code();
        ctx.store(self.tid, base.offset_words(W_TYPE), ty);
        ctx.store(self.tid, base.offset_words(W_ADDR), payload.addr.raw());
        ctx.store(self.tid, base.offset_words(W_VALUE), payload.value);
        ctx.store(self.tid, base.offset_words(W_SEQ), seq);
        ctx.store(self.tid, base.offset_words(W_AUX), payload.aux);
        ctx.store(
            self.tid,
            base.offset_words(W_CHECKSUM),
            entry_checksum(ty, payload.addr.raw(), payload.value, seq, payload.aux),
        );
        ctx.clwb(self.tid, base);
        self.tail = (self.tail + 1) % self.capacity;
        self.uncommitted += 1;
        self.last_seq = seq;
        ctx.trace_event(sw_trace::TraceEvent::LogAppend {
            thread: self.tid as u32,
            seq,
        });
        ctx.note_log_live(self.tid, self.uncommitted);
        seq
    }

    /// Commits all uncommitted entries (Figure 6): drain, append a commit
    /// record carrying the current cut, drain, invalidate the committed
    /// entries (including the *previous* commit record), drain, then advance
    /// and flush the persistent head pointer.
    ///
    /// A no-op when nothing new was appended since the last commit.
    pub fn commit_all(&mut self, ctx: &mut FuncCtx, design: HwDesign) {
        if self.uncommitted == 0 {
            return;
        }
        let cut = self.last_seq;
        // 1. All region updates and entries become durable before the
        //    commit intent is recorded.
        self.fence(ctx, design.drain_fence());
        // 2. Commit record (the commit-intent marker of Figure 6a step 2).
        let c_slot = self.tail;
        self.append(
            ctx,
            EntryPayload {
                etype: EntryType::Commit,
                addr: Addr::NULL,
                value: cut,
                aux: 0,
            },
        );
        self.fence(ctx, design.drain_fence());
        // 3. Invalidate the committed entries and the previous commit
        //    record (Figure 6a step 3). The fresh record at `c_slot` stays
        //    live so the cut remains durably visible.
        let mut slot = self.head;
        let mut invalidated = 0u64;
        while slot != c_slot {
            let base = self.slot(slot);
            ctx.store(self.tid, base.offset_words(W_TYPE), 0);
            ctx.clwb(self.tid, base);
            slot = (slot + 1) % self.capacity;
            invalidated += 1;
        }
        self.fence(ctx, design.drain_fence());
        // 4. Advance and flush the persistent head (Figure 6a step 4).
        self.head = c_slot;
        self.uncommitted = 0;
        self.has_committed = true;
        ctx.store(self.tid, self.header(), self.head);
        ctx.clwb(self.tid, self.header());
        self.fence(ctx, design.drain_fence());
        ctx.trace_event(sw_trace::TraceEvent::LogCommit {
            thread: self.tid as u32,
            entries: invalidated,
            cut,
        });
        ctx.note_log_live(self.tid, 0);
    }

    /// Durable-cut header word (word 1 of the header line): everything at
    /// or below this sequence number was committed and made durable before
    /// any entry was discarded.
    pub fn header_cut_addr(&self) -> Addr {
        self.header().offset_words(1)
    }

    /// Discards every entry (including a retained commit record) and
    /// advances the persistent head: used by the coordinated commit
    /// protocol and by redo group commit. Before invalidating anything it
    /// publishes the durable cut in the header (word 1), ordered by a
    /// drain, so recovery always sees durable evidence of what was
    /// committed. The caller must have made all covered data durable
    /// (a drain fence) before calling.
    pub fn discard_all(&mut self, ctx: &mut FuncCtx, design: HwDesign) {
        let count = self.uncommitted + u64::from(self.has_committed);
        if count == 0 {
            return;
        }
        // Publish the durable cut before any entry disappears.
        ctx.store(self.tid, self.header_cut_addr(), self.last_seq);
        ctx.clwb(self.tid, self.header_cut_addr());
        self.fence(ctx, design.drain_fence());
        for k in 0..count {
            let base = self.slot((self.head + k) % self.capacity);
            ctx.store(self.tid, base.offset_words(W_TYPE), 0);
            ctx.clwb(self.tid, base);
        }
        self.fence(ctx, design.drain_fence());
        self.head = self.tail;
        self.uncommitted = 0;
        self.has_committed = false;
        ctx.store(self.tid, self.header(), self.head);
        ctx.clwb(self.tid, self.header());
        self.fence(ctx, design.drain_fence());
        ctx.trace_event(sw_trace::TraceEvent::LogCommit {
            thread: self.tid as u32,
            entries: count,
            cut: self.last_seq,
        });
        ctx.note_log_live(self.tid, 0);
    }

    fn fence(&self, ctx: &mut FuncCtx, kind: Option<FenceKind>) {
        if let Some(kind) = kind {
            ctx.fence(self.tid, kind);
        }
    }
}

/// Iterates over the decodable entries of thread `tid`'s log region in a
/// crashed PM image. Used by recovery.
pub fn scan_log(img: &PmImage, region: Region) -> impl Iterator<Item = DecodedEntry> + '_ {
    let lines = region.bytes / CACHE_LINE_BYTES;
    (1..lines)
        .filter_map(move |i| decode_entry(img, Addr(region.base.raw() + i * CACHE_LINE_BYTES)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_pmem::PmLayout;

    fn setup() -> (FuncCtx, UndoLog) {
        let layout = PmLayout::new(1, 64);
        let region = layout.log_region(0);
        (FuncCtx::new(layout, 1), UndoLog::new(region, 0))
    }

    fn store_payload(addr: u64, old: u64) -> EntryPayload {
        EntryPayload {
            etype: EntryType::Store,
            addr: Addr(addr),
            value: old,
            aux: 0,
        }
    }

    #[test]
    fn append_then_decode_roundtrip() {
        let (mut ctx, mut log) = setup();
        let seq = log.append(&mut ctx, store_payload(0x2000_0000, 42));
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        let entries: Vec<_> = scan_log(&img, layout_region(&ctx)).collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].etype, EntryType::Store);
        assert_eq!(entries[0].addr, Addr(0x2000_0000));
        assert_eq!(entries[0].value, 42);
        assert_eq!(entries[0].seq, seq);
    }

    fn layout_region(ctx: &FuncCtx) -> Region {
        ctx.mem().layout().log_region(0)
    }

    #[test]
    fn unpersisted_entry_is_torn_and_ignored() {
        let (mut ctx, mut log) = setup();
        log.append(&mut ctx, store_payload(0x2000_0000, 42));
        // Nothing persisted: the image shows a free slot.
        let img = ctx.mem().persisted_image().clone();
        assert_eq!(scan_log(&img, layout_region(&ctx)).count(), 0);
    }

    #[test]
    fn partially_persisted_entry_fails_checksum() {
        let (mut ctx, mut log) = setup();
        log.append(&mut ctx, store_payload(0x2000_0000, 42));
        // Forge a torn persist: copy the visible line, then zero one word in
        // the persisted image.
        ctx.mem_mut().persist_all();
        let region = layout_region(&ctx);
        let entry_base = Addr(region.base.raw() + CACHE_LINE_BYTES);
        let mut img = ctx.mem().persisted_image().clone();
        img.store(entry_base.offset_words(W_VALUE), 0xdead);
        assert_eq!(
            scan_log(&img, region).count(),
            0,
            "torn entry must be ignored"
        );
    }

    #[test]
    fn commit_invalidates_entries() {
        let (mut ctx, mut log) = setup();
        log.append(&mut ctx, store_payload(0x2000_0000, 1));
        log.append(&mut ctx, store_payload(0x2000_0040, 2));
        assert_eq!(log.live(), 2);
        log.commit_all(&mut ctx, HwDesign::StrandWeaver);
        assert_eq!(log.live(), 0);
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        // Only the retained commit record survives.
        let entries: Vec<_> = scan_log(&img, layout_region(&ctx)).collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].etype, EntryType::Commit);
    }

    #[test]
    fn second_commit_invalidates_previous_commit_record() {
        let (mut ctx, mut log) = setup();
        log.append(&mut ctx, store_payload(0x2000_0000, 1));
        log.commit_all(&mut ctx, HwDesign::StrandWeaver);
        log.append(&mut ctx, store_payload(0x2000_0040, 2));
        log.commit_all(&mut ctx, HwDesign::StrandWeaver);
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        let commits: Vec<_> = scan_log(&img, layout_region(&ctx))
            .filter(|e| e.etype == EntryType::Commit)
            .collect();
        assert_eq!(
            commits.len(),
            1,
            "exactly the newest commit record survives"
        );
    }

    #[test]
    fn commit_record_carries_cut_before_invalidation() {
        let (mut ctx, mut log) = setup();
        let s1 = log.append(&mut ctx, store_payload(0x2000_0000, 1));
        let s2 = log.append(&mut ctx, store_payload(0x2000_0040, 2));
        // Simulate a crash mid-commit: persist everything up to (and
        // including) the commit record, but not the invalidations. We drive
        // this by persisting all after the commit record is appended.
        let cut = log.last_seq;
        assert_eq!(cut, s2);
        let first = log.head;
        let _ = first;
        // Manually append the commit record path: run commit but capture the
        // image right after step 2 by persisting mid-way. Here we exercise
        // the codec: craft the image as the sampler could produce it.
        ctx.mem_mut().persist_all(); // both entries durable
        let mut img = ctx.mem().persisted_image().clone();
        // Write a commit record into slot 2 of the image directly.
        let region = layout_region(&ctx);
        let rec = Addr(region.base.raw() + 3 * CACHE_LINE_BYTES);
        let ty = EntryType::Commit.code();
        img.store(rec.offset_words(W_TYPE), ty);
        img.store(rec.offset_words(W_VALUE), cut);
        img.store(rec.offset_words(W_SEQ), cut + 1);
        img.store(
            rec.offset_words(W_CHECKSUM),
            entry_checksum(ty, 0, cut, cut + 1, 0),
        );
        let entries: Vec<_> = scan_log(&img, region).collect();
        let commits: Vec<_> = entries
            .iter()
            .filter(|e| e.etype == EntryType::Commit)
            .collect();
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].value, s2);
        assert!(entries.iter().any(|e| e.seq == s1));
    }

    #[test]
    fn log_wraps_around() {
        let layout = PmLayout::new(1, 6); // header + 5 data slots
        let region = layout.log_region(0);
        let mut ctx = FuncCtx::new(layout, 1);
        let mut log = UndoLog::new(region, 0);
        for round in 0..5 {
            for i in 0..3 {
                log.append(&mut ctx, store_payload(0x2000_0000 + i * 64, round));
            }
            log.commit_all(&mut ctx, HwDesign::StrandWeaver);
        }
        assert_eq!(log.live(), 0);
    }

    #[test]
    #[should_panic(expected = "undo log full")]
    fn append_past_capacity_panics() {
        let layout = PmLayout::new(1, 3); // 2 data slots
        let region = layout.log_region(0);
        let mut ctx = FuncCtx::new(layout, 1);
        let mut log = UndoLog::new(region, 0);
        for i in 0..3 {
            log.append(&mut ctx, store_payload(0x2000_0000 + i * 64, 0));
        }
    }

    #[test]
    fn log_operations_emit_trace_events_and_metrics() {
        use sw_trace::{RingRecorder, TraceEvent};
        let (mut ctx, mut log) = setup();
        let rec = RingRecorder::new(64);
        ctx.set_trace_sink(Box::new(rec.clone()));
        ctx.enable_metrics();
        log.append(&mut ctx, store_payload(0x2000_0000, 1));
        log.append(&mut ctx, store_payload(0x2000_0040, 2));
        log.commit_all(&mut ctx, HwDesign::StrandWeaver);
        let events = rec.events();
        let appends = events
            .iter()
            .filter(|e| e.event.kind() == "log_append")
            .count();
        assert_eq!(appends, 3, "two data entries plus the commit record");
        assert!(events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::LogCommit { entries: 2, .. })));
        let snap = ctx.metrics_snapshot();
        assert_eq!(snap.counter("log.appends"), Some(3));
        assert_eq!(snap.counter("log.commits"), Some(1));
        let live = snap.gauge("thread0.log_live").expect("registered");
        assert!(live.max >= 2, "high-water mark covers both appends");
        assert_eq!(live.last, 0, "commit empties the live zone");
    }

    #[test]
    fn commit_on_empty_log_is_noop() {
        let (mut ctx, mut log) = setup();
        let fences_before = ctx.stats().fences;
        log.commit_all(&mut ctx, HwDesign::StrandWeaver);
        assert_eq!(ctx.stats().fences, fences_before);
    }

    #[test]
    fn checksum_distinguishes_free_slot() {
        // An all-zero line must never decode as a valid entry.
        let img = PmImage::new();
        assert!(decode_entry(&img, Addr(0x1000_0040)).is_none());
    }

    /// Builds an image holding one persisted entry and returns (image,
    /// region, entry line base).
    fn one_entry_image() -> (PmImage, Region, Addr) {
        let (mut ctx, mut log) = setup();
        log.append(&mut ctx, store_payload(0x2000_0000, 42));
        ctx.mem_mut().persist_all();
        let region = layout_region(&ctx);
        let img = ctx.mem().persisted_image().clone();
        let base = Addr(region.base.raw() + CACHE_LINE_BYTES);
        (img, region, base)
    }

    #[test]
    fn classify_covers_benign_states() {
        let (mut img, region, base) = one_entry_image();
        assert!(matches!(classify_slot(&img, base), SlotState::Valid(_)));
        // The next slot was never written: free.
        let free = Addr(region.base.raw() + 2 * CACHE_LINE_BYTES);
        assert_eq!(classify_slot(&img, free), SlotState::Free);
        // Invalidation: TYPE := 0 with stale words remaining.
        img.store(base.offset_words(W_TYPE), 0);
        assert_eq!(classify_slot(&img, base), SlotState::Invalidated);
    }

    #[test]
    fn torn_entry_classifies_torn_not_corrupt() {
        // Checksum word unpersisted (reads zero).
        let (mut img, _, base) = one_entry_image();
        img.store(base.offset_words(W_CHECKSUM), 0);
        assert_eq!(classify_slot(&img, base), SlotState::Torn);
        // Payload word unpersisted (reads zero) with checksum persisted.
        let (mut img, _, base) = one_entry_image();
        img.store(base.offset_words(W_VALUE), 0);
        assert_eq!(classify_slot(&img, base), SlotState::Torn);
    }

    #[test]
    fn bitflip_classifies_corrupt() {
        // Flipping the (legitimately zero) AUX word of a fully-persisted
        // store entry leaves every word nonzero with a stale checksum:
        // corruption that no tear can explain.
        let (mut img, _, base) = one_entry_image();
        img.store(base.offset_words(W_AUX), 1 << 17);
        assert_eq!(classify_slot(&img, base), SlotState::Corrupt);
        // An unknown type code under a recomputed (valid) checksum is also
        // corruption.
        let (mut img, _, base) = one_entry_image();
        let addr = img.load(base.offset_words(W_ADDR));
        let value = img.load(base.offset_words(W_VALUE));
        let seq = img.load(base.offset_words(W_SEQ));
        let aux = img.load(base.offset_words(W_AUX));
        img.store(base.offset_words(W_TYPE), 99);
        img.store(
            base.offset_words(W_CHECKSUM),
            entry_checksum(99, addr, value, seq, aux),
        );
        assert_eq!(classify_slot(&img, base), SlotState::Corrupt);
    }

    #[test]
    fn bitflip_with_zero_payload_word_masquerades_as_tear() {
        // A store entry's AUX word is legitimately zero, so a flip
        // elsewhere in the entry is indistinguishable from a tear of that
        // word: the classifier must (conservatively) say Torn, never
        // Valid. Fault injectors re-check the post-injection class rather
        // than assuming a flip always yields Corrupt.
        let (mut img, _, base) = one_entry_image();
        let v = img.load(base.offset_words(W_VALUE));
        img.store(base.offset_words(W_VALUE), v ^ (1 << 17));
        assert_eq!(classify_slot(&img, base), SlotState::Torn);
    }

    #[test]
    fn poisoned_line_classifies_poisoned() {
        let (mut img, _, base) = one_entry_image();
        img.poison_line(base.line());
        assert_eq!(classify_slot(&img, base), SlotState::Poisoned);
        assert!(SlotState::Poisoned.is_damaged());
        assert!(!SlotState::Free.is_damaged());
    }

    #[test]
    fn detailed_scan_agrees_with_scan_log_and_reports_damage() {
        let (mut ctx, mut log) = setup();
        for i in 0..4 {
            log.append(&mut ctx, store_payload(0x2000_0000 + i * 64, i));
        }
        ctx.mem_mut().persist_all();
        let region = layout_region(&ctx);
        let mut img = ctx.mem().persisted_image().clone();
        let legacy: Vec<_> = scan_log(&img, region).collect();
        let detailed = scan_log_detailed(&img, region);
        assert_eq!(detailed.entries, legacy);
        assert!(!detailed.damaged());
        // Damage slot 2 (flip the zero AUX word so every word reads
        // nonzero → Corrupt) and poison slot 3.
        let slot2 = Addr(region.base.raw() + 2 * CACHE_LINE_BYTES);
        img.store(slot2.offset_words(W_AUX), 0xbad);
        let slot3 = Addr(region.base.raw() + 3 * CACHE_LINE_BYTES);
        img.poison_line(slot3.line());
        let detailed = scan_log_detailed(&img, region);
        assert!(detailed.damaged());
        assert_eq!(detailed.corrupt, vec![2]);
        assert_eq!(detailed.poisoned, vec![3]);
        assert_eq!(detailed.entries.len(), 2);
        // The legacy scan reads through poison (infallible loads), so it
        // still decodes slot 3; the detailed scan correctly excludes it.
        assert_eq!(scan_log(&img, region).count(), 3);
    }
}
