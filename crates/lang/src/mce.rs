//! Machine-check surface for uncorrectable PM read errors.
//!
//! A device read of a poisoned line does not return bad data — real PM
//! parts raise a machine-check exception (MCE) and the OS delivers it to
//! the faulting thread. This module models that delivery point for the
//! functional runtime: a [`FuncCtx`](crate::FuncCtx) can be *armed* with
//! the set of poisoned lines ([`FuncCtx::arm_mce`]); the first load that
//! touches an armed persistent line trips a pending [`MceError`], which
//! the driver collects at the next region boundary ([`FuncCtx::take_mce`])
//! and resolves under a [`RecoveryPolicy`](crate::RecoveryPolicy):
//!
//! * `Strict` — the run aborts with the structured error (fail-stop, the
//!   data cannot be trusted);
//! * `Salvage` — the faulting thread is quarantined (no further regions
//!   are scheduled on it) and the run continues; consistency is only
//!   promised for data untouched by quarantined threads, mirroring the
//!   crash-image salvage contract.
//!
//! Each armed line trips at most once: hardware signals the poison on
//! first consumption, and the handler (abort or quarantine) prevents the
//! same thread from re-consuming it.

/// An uncorrectable PM read error delivered to a thread, in the style of
/// an MCE record: who consumed the poison, where, and when (the context's
/// load ordinal, for reproducing the trap point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MceError {
    /// Thread whose load consumed the poisoned line.
    pub thread: usize,
    /// Poisoned cache line (`LineAddr` raw value).
    pub line: u64,
    /// Ordinal of the faulting load within the context (1-based).
    pub op_index: u64,
}

impl std::fmt::Display for MceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "uncorrectable PM read (MCE): thread {} consumed poisoned line {} at load #{}",
            self.thread, self.line, self.op_index
        )
    }
}

impl std::error::Error for MceError {}

/// Armed-poison state carried by a [`FuncCtx`](crate::FuncCtx). Boxed
/// behind an `Option` so the unarmed load path pays a single branch.
#[derive(Debug, Default)]
pub(crate) struct MceUnit {
    /// Lines that raise on first consumption (raw `LineAddr` values).
    pub(crate) armed: Vec<u64>,
    /// The oldest undelivered trap (delivery is one at a time, like a
    /// machine-check bank).
    pub(crate) pending: Option<MceError>,
}

impl MceUnit {
    /// Trips the trap for `line` consumed by `thread` at load ordinal
    /// `op_index`, disarming the line. Keeps the oldest pending trap if
    /// one is already undelivered.
    pub(crate) fn trip(&mut self, thread: usize, line: u64, op_index: u64) {
        self.armed.retain(|&l| l != line);
        if self.pending.is_none() {
            self.pending = Some(MceError {
                thread,
                line,
                op_index,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_disarms_and_keeps_oldest() {
        let mut u = MceUnit {
            armed: vec![10, 11],
            pending: None,
        };
        u.trip(0, 10, 5);
        u.trip(1, 11, 9);
        assert!(u.armed.is_empty());
        let e = u.pending.expect("pending trap");
        assert_eq!((e.thread, e.line, e.op_index), (0, 10, 5));
        assert!(e.to_string().contains("poisoned line 10"));
    }
}
