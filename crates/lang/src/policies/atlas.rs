//! ATLAS: outermost critical sections.
//!
//! Same batched-commit structure as SFR, but with heavier-weight
//! happens-before bookkeeping per lock operation (ATLAS maintains a lock
//! graph to compute globally consistent cut points).

use super::CommitPolicy;
use crate::log::EntryType;

/// The batched outermost-critical-section policy.
#[derive(Debug)]
pub struct Atlas;

impl CommitPolicy for Atlas {
    fn label(&self) -> &'static str {
        "atlas"
    }

    fn sync_cost(&self) -> u32 {
        42
    }

    fn begin_entry(&self) -> Option<EntryType> {
        Some(EntryType::Acquire)
    }

    fn end_entry(&self) -> Option<EntryType> {
        Some(EntryType::Release)
    }

    fn commit_at_region_end(&self, _region_had_stores: bool, live: u64, threshold: u64) -> bool {
        live >= threshold
    }

    fn needs_commit(&self, live: u64, threshold: u64) -> bool {
        live >= threshold
    }

    fn batches_commits(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::ctx::FuncCtx;
    use crate::{LangModel, RuntimeConfig, ThreadRuntime};
    use sw_model::isa::LockId;
    use sw_model::HwDesign;
    use sw_pmem::PmLayout;

    #[test]
    fn lock_words_are_stamped_in_pm() {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Atlas),
        );
        let la = ctx.mem().layout().lock_addr(3);
        rt.region_begin(&mut ctx, &[LockId(3)]);
        let acquire_stamp = ctx.mem().load(la);
        assert!(acquire_stamp > 0);
        rt.store(&mut ctx, heap, 1);
        rt.region_end(&mut ctx);
        assert!(ctx.mem().load(la) > acquire_stamp, "release stamps again");
    }

    #[test]
    fn atlas_pays_more_sync_compute_than_sfr() {
        let cycles = |lang: LangModel| {
            let layout = PmLayout::new(1, 256);
            let mut ctx = FuncCtx::new(layout.clone(), 1);
            let mut rt =
                ThreadRuntime::new(&layout, 0, RuntimeConfig::new(HwDesign::StrandWeaver, lang));
            rt.region_begin(&mut ctx, &[LockId(0)]);
            rt.region_end(&mut ctx);
            ctx.traces()[0]
                .iter()
                .map(|op| match op {
                    sw_model::isa::IsaOp::Compute(c) => u64::from(*c),
                    _ => 0,
                })
                .sum::<u64>()
        };
        assert!(cycles(LangModel::Atlas) > cycles(LangModel::Sfr));
    }
}
