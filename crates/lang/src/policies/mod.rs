//! Language-level persistency models as pluggable commit policies.
//!
//! Mirroring the simulator's `PersistEngine` extraction, every per-model
//! decision the runtime makes lives behind the [`CommitPolicy`] trait, with
//! one module per model: [`txn`], [`sfr`], [`atlas`], and the log-free
//! [`native`] extension. [`LangModel`] is the enum the rest of the stack
//! names models by; [`LangModel::policy`] is the single dispatch point.
//! Adding a model means one module here, one `ALL` slot, and nothing else —
//! the `ThreadRuntime` core, recovery, and the drivers are model-agnostic.

pub mod atlas;
pub mod native;
pub mod sfr;
pub mod txn;

use crate::log::EntryType;
use sw_model::HwDesign;

/// A language-level persistency model: the paper's three (Section VI-B,
/// "sensitivity to language-level persistency model") plus the log-free
/// eADR-native extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LangModel {
    /// Failure-atomic transactions (PMDK-style); eager commit at region end.
    Txn,
    /// Synchronization-free regions; batched commits, light sync logging.
    Sfr,
    /// ATLAS outermost critical sections; batched commits, heavier-weight
    /// happens-before bookkeeping per lock operation.
    Atlas,
    /// Log-free runtime for eADR-class hardware: stores persist at
    /// visibility, so regions need no log entries — only the lock-word
    /// protocol. Legal only on designs where
    /// [`HwDesign::persists_at_visibility`] holds.
    Native,
}

impl LangModel {
    /// All models, in presentation order (the paper's three, then the
    /// log-free extension).
    pub const ALL: [LangModel; 4] = [
        LangModel::Txn,
        LangModel::Sfr,
        LangModel::Atlas,
        LangModel::Native,
    ];

    /// The policy module implementing this model — the one place the enum
    /// is dispatched on.
    pub fn policy(self) -> &'static dyn CommitPolicy {
        match self {
            LangModel::Txn => &txn::Txn,
            LangModel::Sfr => &sfr::Sfr,
            LangModel::Atlas => &atlas::Atlas,
            LangModel::Native => &native::Native,
        }
    }

    /// Short label used in benchmark tables and `swctl --lang`.
    pub fn label(self) -> &'static str {
        self.policy().label()
    }

    /// Looks a model up by its [`label`](LangModel::label).
    pub fn from_label(s: &str) -> Option<LangModel> {
        LangModel::ALL.into_iter().find(|l| l.label() == s)
    }

    /// `true` when the model may run on `design` (log-free models require
    /// persist-at-visibility hardware).
    pub fn legal_on(self, design: HwDesign) -> bool {
        self.policy().legal_on(design)
    }

    /// `true` for models that batch commits and rely on a cross-thread
    /// [`coordinated_commit`](crate::coordinated_commit) on shared data.
    pub fn batches_commits(self) -> bool {
        self.policy().batches_commits()
    }

    /// The crash-consistency contract this model gives its programs.
    pub fn consistency(self) -> Consistency {
        self.policy().consistency()
    }
}

impl std::fmt::Display for LangModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a model's recovered image is checked against after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Recovered image equals the baseline plus a replay of exactly the
    /// committed regions: failure atomicity plus commit durability (the
    /// logged models).
    ReplayCommitted,
    /// Recovered image equals the baseline plus some prefix of the run's
    /// stores in execution order: strict persistency with no rollback (the
    /// log-free model — regions are *not* failure-atomic).
    DurablePrefix,
}

/// Everything the region lifecycle asks of a language-level model. One
/// implementation per model, under this module; the `ThreadRuntime` core
/// consults the policy and never matches on [`LangModel`] itself.
pub trait CommitPolicy: std::fmt::Debug + Sync {
    /// Short label used in benchmark tables and `swctl --lang`.
    fn label(&self) -> &'static str;

    /// Cycles of bookkeeping work per synchronization operation (modelled
    /// as `Compute`): ATLAS's lock-graph maintenance is the heaviest, SFR's
    /// acquire/release logging lighter, TXN's begin/end lightest.
    fn sync_cost(&self) -> u32;

    /// Whether the runtime keeps a write-ahead log at all. Log-free models
    /// return `false` and skip every log append, flush, and commit.
    fn uses_log(&self) -> bool {
        true
    }

    /// Log entry appended when a region begins (`None`: no entry — the
    /// lock word is still stamped).
    fn begin_entry(&self) -> Option<EntryType>;

    /// Log entry appended when a region ends.
    fn end_entry(&self) -> Option<EntryType>;

    /// Whether the undo log should commit as this region ends.
    /// `region_had_stores` is the eager models' trigger; `live`/`threshold`
    /// drive the batched ones.
    fn commit_at_region_end(&self, region_had_stores: bool, live: u64, threshold: u64) -> bool;

    /// `true` when the batched log has grown past `threshold` and the
    /// driver should coordinate a commit across threads.
    fn needs_commit(&self, live: u64, threshold: u64) -> bool {
        let _ = (live, threshold);
        false
    }

    /// `true` for models that batch commits (and therefore need the
    /// coordinated-commit protocol on shared data).
    fn batches_commits(&self) -> bool {
        false
    }

    /// Designs this model may legally run on. Defaults to all; log-free
    /// models require persist-at-visibility hardware.
    fn legal_on(&self, design: HwDesign) -> bool {
        let _ = design;
        true
    }

    /// The crash-consistency contract this model gives its programs.
    fn consistency(&self) -> Consistency {
        Consistency::ReplayCommitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_resolvable() {
        let labels: std::collections::HashSet<_> =
            LangModel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), LangModel::ALL.len());
        for l in LangModel::ALL {
            assert_eq!(LangModel::from_label(l.label()), Some(l));
        }
        assert_eq!(LangModel::from_label("pmdk"), None);
    }

    #[test]
    fn only_native_restricts_designs() {
        for l in LangModel::ALL {
            for d in HwDesign::ALL {
                let legal = l.legal_on(d);
                if l == LangModel::Native {
                    assert_eq!(legal, d.persists_at_visibility(), "{l} on {d}");
                } else {
                    assert!(legal, "{l} must run on every design");
                }
            }
        }
        assert!(LangModel::Native.legal_on(HwDesign::Eadr));
        assert!(!LangModel::Native.legal_on(HwDesign::IntelX86));
    }

    #[test]
    fn batched_models_are_exactly_sfr_and_atlas() {
        let batched: Vec<LangModel> = LangModel::ALL
            .into_iter()
            .filter(|l| l.batches_commits())
            .collect();
        assert_eq!(batched, vec![LangModel::Sfr, LangModel::Atlas]);
    }

    #[test]
    fn only_native_is_log_free_with_prefix_consistency() {
        for l in LangModel::ALL {
            let p = l.policy();
            if l == LangModel::Native {
                assert!(!p.uses_log());
                assert_eq!(p.consistency(), Consistency::DurablePrefix);
                assert_eq!(p.begin_entry(), None);
                assert_eq!(p.end_entry(), None);
            } else {
                assert!(p.uses_log());
                assert_eq!(p.consistency(), Consistency::ReplayCommitted);
                assert!(p.begin_entry().is_some());
                assert!(p.end_entry().is_some());
            }
        }
    }

    #[test]
    fn sync_costs_rank_as_documented() {
        let cost = |l: LangModel| l.policy().sync_cost();
        assert!(cost(LangModel::Atlas) > cost(LangModel::Sfr));
        assert!(cost(LangModel::Sfr) > cost(LangModel::Txn));
        assert_eq!(
            cost(LangModel::Native),
            cost(LangModel::Txn),
            "Native keeps TXN's lock bookkeeping so the delta to TXN-on-eADR \
             is purely the log"
        );
    }
}
