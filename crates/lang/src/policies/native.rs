//! Native: log-free regions for eADR-class hardware.
//!
//! On a design that persists stores at visibility (battery-backed caches,
//! [`HwDesign::persists_at_visibility`]), an in-place update is durable the
//! moment it executes — a write-ahead log buys nothing a crash could need.
//! The Native policy therefore appends no log entries at all: regions are
//! reduced to the lock-word stamp protocol (mutual exclusion plus the
//! strong-persist-atomicity ordering the stamps carry), and recovery has
//! nothing to roll back or replay.
//!
//! The price is the consistency contract: without a log, a crash can land
//! *inside* a region, so programs get [`Consistency::DurablePrefix`] —
//! every crash state is the baseline plus a prefix of the run's stores in
//! execution order (strict persistency) — **not** failure atomicity. This
//! is the MOD-style "log-free durable data structures" point in the design
//! space, and measuring it against TXN-on-eADR isolates how much of eADR's
//! speedup comes from the hardware versus from deleting the log.
//!
//! `Native` keeps TXN's per-synchronization bookkeeping cost so exactly
//! that comparison is clean. It is rejected on non-eADR-class designs at
//! [`RuntimeConfig`](crate::RuntimeConfig) construction.

use super::{CommitPolicy, Consistency};
use crate::log::EntryType;
use sw_model::HwDesign;

/// The log-free eADR-native policy.
#[derive(Debug)]
pub struct Native;

impl CommitPolicy for Native {
    fn label(&self) -> &'static str {
        "native"
    }

    fn sync_cost(&self) -> u32 {
        8
    }

    fn uses_log(&self) -> bool {
        false
    }

    fn begin_entry(&self) -> Option<EntryType> {
        None
    }

    fn end_entry(&self) -> Option<EntryType> {
        None
    }

    fn commit_at_region_end(&self, _region_had_stores: bool, _live: u64, _threshold: u64) -> bool {
        false
    }

    fn legal_on(&self, design: HwDesign) -> bool {
        design.persists_at_visibility()
    }

    fn consistency(&self) -> Consistency {
        Consistency::DurablePrefix
    }
}

#[cfg(test)]
mod tests {
    use crate::ctx::FuncCtx;
    use crate::{LangModel, RuntimeConfig, ThreadRuntime};
    use sw_model::isa::LockId;
    use sw_model::HwDesign;
    use sw_pmem::PmLayout;

    fn setup() -> (FuncCtx, ThreadRuntime, sw_pmem::Addr) {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let ctx = FuncCtx::new(layout.clone(), 1);
        let rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::Eadr, LangModel::Native).recording(),
        );
        (ctx, rt, heap)
    }

    #[test]
    fn native_region_executes_stores() {
        let (mut ctx, mut rt, heap) = setup();
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.store(&mut ctx, heap.offset_words(8), 8);
        rt.region_end(&mut ctx);
        assert_eq!(ctx.mem().load(heap), 7);
        assert_eq!(ctx.mem().load(heap.offset_words(8)), 8);
    }

    #[test]
    fn native_appends_no_log_entries() {
        let (mut ctx, mut rt, heap) = setup();
        for round in 0..4u64 {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            rt.store(&mut ctx, heap, round);
            rt.region_end(&mut ctx);
        }
        assert_eq!(rt.live_log_entries(), 0, "log-free: nothing ever appended");
        rt.shutdown(&mut ctx);
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        let region = ctx.mem().layout().log_region(0);
        assert_eq!(
            crate::log::scan_log(&img, region).count(),
            0,
            "log region stays empty on PM too"
        );
    }

    #[test]
    fn native_still_stamps_lock_words() {
        let (mut ctx, mut rt, heap) = setup();
        let la = ctx.mem().layout().lock_addr(3);
        rt.region_begin(&mut ctx, &[LockId(3)]);
        let acquire_stamp = ctx.mem().load(la);
        assert!(acquire_stamp > 0, "SPA ordering stamp still published");
        rt.store(&mut ctx, heap, 1);
        rt.region_end(&mut ctx);
        assert!(ctx.mem().load(la) > acquire_stamp, "release stamps again");
    }

    #[test]
    fn native_records_regions_for_the_harness() {
        let (mut ctx, mut rt, heap) = setup();
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 9);
        rt.region_end(&mut ctx);
        let recs = rt.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].writes, vec![(heap, 0, 7)]);
        assert_eq!(recs[1].writes, vec![(heap, 7, 9)]);
        assert!(recs[0].first_seq < recs[0].last_seq);
        assert!(recs[0].last_seq < recs[1].first_seq);
    }

    #[test]
    #[should_panic(expected = "persists stores at visibility")]
    fn native_is_rejected_on_non_eadr_designs() {
        let _ = RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Native);
    }

    #[test]
    fn native_is_rejected_on_every_non_eadr_design() {
        for d in HwDesign::ALL {
            if d.persists_at_visibility() {
                continue;
            }
            let result = std::panic::catch_unwind(|| {
                let _ = RuntimeConfig::new(d, LangModel::Native);
            });
            assert!(result.is_err(), "{d} must reject the log-free model");
        }
    }
}
