//! SFR: synchronization-free regions.
//!
//! Regions are delimited by lock acquire/release; the runtime logs
//! happens-before metadata at every synchronization point and commits only
//! when the log fills (batched commits). Shared data additionally needs the
//! cross-thread [`coordinated_commit`](crate::coordinated_commit) so commit
//! cuts stay globally consistent.

use super::CommitPolicy;
use crate::log::EntryType;

/// The batched synchronization-free-region policy.
#[derive(Debug)]
pub struct Sfr;

impl CommitPolicy for Sfr {
    fn label(&self) -> &'static str {
        "sfr"
    }

    fn sync_cost(&self) -> u32 {
        14
    }

    fn begin_entry(&self) -> Option<EntryType> {
        Some(EntryType::Acquire)
    }

    fn end_entry(&self) -> Option<EntryType> {
        Some(EntryType::Release)
    }

    fn commit_at_region_end(&self, _region_had_stores: bool, live: u64, threshold: u64) -> bool {
        live >= threshold
    }

    fn needs_commit(&self, live: u64, threshold: u64) -> bool {
        live >= threshold
    }

    fn batches_commits(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::ctx::FuncCtx;
    use crate::{LangModel, RuntimeConfig, ThreadRuntime};
    use sw_model::isa::LockId;
    use sw_model::HwDesign;
    use sw_pmem::PmLayout;

    #[test]
    fn sfr_batches_commits() {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Sfr),
        );
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        assert!(
            rt.live_log_entries() > 0,
            "SFR does not commit at region end"
        );
        rt.shutdown(&mut ctx);
        assert_eq!(rt.live_log_entries(), 0);
    }

    #[test]
    fn batched_commit_triggers_at_threshold() {
        let layout = PmLayout::new(1, 32);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut cfg = RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Sfr);
        cfg.commit_threshold = Some(8);
        let mut rt = ThreadRuntime::new(&layout, 0, cfg);
        for i in 0..6 {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            rt.store(&mut ctx, heap.offset_words(i * 8), i);
            rt.region_end(&mut ctx);
        }
        assert!(
            rt.live_log_entries() < 8 + 4,
            "log must have committed at least once"
        );
    }
}
