//! TXN: failure-atomic transactions (PMDK-style).
//!
//! Every region is a transaction delimited by `TxBegin`/`TxEnd` entries and
//! committed eagerly at region end — unless the region performed no PM
//! store, in which case its sync entries are swept up by a later commit
//! (PMDK likewise skips commit machinery for read-only transactions).

use super::CommitPolicy;
use crate::log::EntryType;

/// The eager-commit transaction policy.
#[derive(Debug)]
pub struct Txn;

impl CommitPolicy for Txn {
    fn label(&self) -> &'static str {
        "txn"
    }

    fn sync_cost(&self) -> u32 {
        8
    }

    fn begin_entry(&self) -> Option<EntryType> {
        Some(EntryType::TxBegin)
    }

    fn end_entry(&self) -> Option<EntryType> {
        Some(EntryType::TxEnd)
    }

    fn commit_at_region_end(&self, region_had_stores: bool, _live: u64, _threshold: u64) -> bool {
        region_had_stores
    }

    fn needs_commit(&self, live: u64, threshold: u64) -> bool {
        // Eager commit keeps the log near-empty; read-only regions can
        // still accumulate sync entries, so the threshold backstop remains.
        live >= threshold
    }
}

#[cfg(test)]
mod tests {
    use crate::ctx::FuncCtx;
    use crate::{LangModel, RuntimeConfig, ThreadRuntime};
    use sw_model::isa::LockId;
    use sw_model::HwDesign;
    use sw_pmem::PmLayout;

    #[test]
    fn txn_region_executes_stores() {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
        );
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.store(&mut ctx, heap.offset_words(8), 8);
        rt.region_end(&mut ctx);
        assert_eq!(ctx.mem().load(heap), 7);
        assert_eq!(ctx.mem().load(heap.offset_words(8)), 8);
    }

    #[test]
    fn txn_commits_eagerly() {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
        );
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        assert_eq!(rt.live_log_entries(), 0);
    }

    #[test]
    fn read_only_region_leaves_sync_entries_uncommitted() {
        let layout = PmLayout::new(1, 256);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn),
        );
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.region_end(&mut ctx);
        assert!(
            rt.live_log_entries() > 0,
            "sync entries await a later sweep"
        );
    }
}
