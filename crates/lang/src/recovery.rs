//! Post-failure recovery (paper Figure 6(b)) — one generic pass over the
//! log formats.
//!
//! Recovery inspects every per-thread log region in the crashed PM image:
//!
//! 1. For each thread, find the highest persisted commit cut (the paper's
//!    commit-intent marker): the max over commit-record values, the global
//!    coordinated-commit cut word, and the durable-cut header word.
//! 2. Every other decoded entry is classified by the [`LogFormat`] that
//!    owns its entry type ([`formats::recovery_action`]): entries covered
//!    by the cut are discarded (undo) or queued for forward *replay* in
//!    creation order (redo — their in-place updates may not have
//!    persisted); survivors are queued for *rollback* in reverse creation
//!    order (undo stores) or counted as synchronization metadata.
//! 3. Replay applies before rollback; both are global across threads
//!    (global reverse sequence order unwinds same-address overwrites by
//!    later regions correctly — Figure 6(b) step 3).
//!
//! Recovery itself never branches on the entry vocabulary: adding a log
//! format extends `formats/`, not this pass. A log-free (Native) run has
//! an empty log region, so recovery is trivially clean.
//!
//! ## Fault awareness
//!
//! The scan classifies every log slot ([`crate::log::classify_slot`]) and
//! reports damage in a [`FaultCounts`] taxonomy. [`recover_with_policy`]
//! layers a [`RecoveryPolicy`] on top:
//!
//! * `Strict` — fail fast (before mutating anything) on damage that cannot
//!   occur in a natural crash state: corrupt slots and poisoned lines.
//!   Torn slots are benign (every crash image can contain them) and never
//!   fail `Strict`.
//! * `Salvage` — proceed on any damage: recover every checksum-valid
//!   entry as usual, and report each thread whose log region holds a
//!   damaged slot as *salvaged*. A salvaged region's log may be
//!   incomplete, so consistency is only guaranteed for data untouched by
//!   salvaged threads (`sw-lang::harness::check_salvage_consistency`).
//!
//! Under either policy recovery **never writes to log regions** — damaged
//! slots are reported, not repaired. This keeps recovery idempotent: a
//! crash *during* recovery persists some prefix-subset of recovery's
//! (data-region) writes, and re-running recovery recomputes the identical
//! write set from the untouched logs, converging to the same image
//! (`sw-lang::harness::recovery_reconverges`).
//!
//! [`LogFormat`]: crate::LogFormat

use sw_pmem::{recover_heap, Addr, HeapFault, HeapRecovery, PmImage, PmLayout};
use sw_trace::{TraceEvent, TraceSink};

use crate::formats::{self, RecoveryAction};
use crate::log::{scan_log_detailed, DecodedEntry, DetailedScan, EntryType};

/// Counts of damaged log slots discovered by recovery's scan, by damage
/// class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Torn slots: checksum mismatch explainable as a partial persist.
    pub torn: usize,
    /// Corrupt slots: checksum mismatch no tear can explain.
    pub checksum_mismatch: usize,
    /// Poisoned lines (uncorrectable media errors), including log header
    /// and commit-metadata lines.
    pub poisoned: usize,
}

impl FaultCounts {
    /// Total damaged slots across all classes.
    pub fn total(&self) -> usize {
        self.torn + self.checksum_mismatch + self.poisoned
    }

    /// Damage that cannot arise in a natural crash state (corruption or
    /// media failure, as opposed to benign tears).
    pub fn fatal(&self) -> usize {
        self.checksum_mismatch + self.poisoned
    }
}

/// Summary of the allocator-metadata recovery that runs before the
/// workload-log pass (the allocator journal must be trustworthy before
/// log replay touches heap data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapSummary {
    /// Live blocks across all healthy pools after journal replay.
    pub live_blocks: u64,
    /// Torn in-flight journal records reclaimed by the scan.
    pub reclaimed_records: u64,
    /// Pools whose metadata carried fatal damage.
    pub damaged_pools: usize,
}

/// Statistics about one recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-thread commit cut: the highest sequence number covered by a
    /// persisted commit record (0 when the thread never committed).
    pub per_thread_cut: Vec<u64>,
    /// Valid entries discarded because a commit record covered them.
    pub discarded_committed: usize,
    /// Store entries rolled back.
    pub rolled_back_stores: usize,
    /// Committed redo entries replayed forward.
    pub replayed_redo: usize,
    /// Synchronization entries skipped during rollback.
    pub sync_entries: usize,
    /// Damaged log slots discovered by the scan, by class.
    pub detected: FaultCounts,
    /// Allocator-metadata recovery summary.
    pub heap: HeapSummary,
}

impl RecoveryReport {
    /// `true` if recovery had nothing to undo or replay (clean shutdown).
    pub fn was_clean(&self) -> bool {
        self.rolled_back_stores == 0 && self.replayed_redo == 0
    }
}

/// How [`recover_with_policy`] responds to damaged log slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryPolicy {
    /// Fail fast — before mutating the image — on damage that a natural
    /// crash cannot produce (corrupt slots, poisoned lines). Benign tears
    /// do not fail `Strict`.
    Strict,
    /// Recover everything checksum-valid and report threads whose log
    /// regions held damage as salvaged; their data is dropped from the
    /// consistency contract.
    Salvage,
}

/// One damaged location discovered by the recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFault {
    /// A torn log slot (benign: partial persist of a fresh entry).
    TornEntry {
        /// Owning thread.
        tid: usize,
        /// Slot index within the thread's log region (line offset; slot 0
        /// is the header).
        slot: u64,
    },
    /// A corrupt log slot: checksum mismatch no tear can explain.
    ChecksumMismatch {
        /// Owning thread.
        tid: usize,
        /// Slot index within the thread's log region.
        slot: u64,
    },
    /// A poisoned line inside a thread's log region (data slot or header).
    PoisonedLine {
        /// Owning thread.
        tid: usize,
        /// Cache-line index (`LineAddr` raw value).
        line: u64,
    },
    /// The machine-wide commit-metadata line (global coordinated-commit
    /// cut) is poisoned: no thread's cut can be trusted.
    PoisonedMeta {
        /// Cache-line index (`LineAddr` raw value).
        line: u64,
    },
    /// A torn allocator-journal record (benign: the in-flight alloc or
    /// free is reclaimed).
    HeapTorn {
        /// Heap pool.
        pool: usize,
        /// Journal slot within the pool.
        slot: u64,
    },
    /// Corrupt allocator metadata: a journal record failing its checksum
    /// with no zero word, or a journal that replays inconsistently.
    HeapCorrupt {
        /// Heap pool.
        pool: usize,
        /// Journal slot within the pool.
        slot: u64,
    },
    /// The pool's newest published checkpoint table fails its checksums.
    HeapCorruptTable {
        /// Heap pool.
        pool: usize,
        /// First damaged table entry, or `u64::MAX` when the table
        /// header itself is inconsistent.
        entry: u64,
    },
    /// A poisoned line inside a pool's allocator metadata.
    HeapPoisoned {
        /// Heap pool.
        pool: usize,
        /// Cache-line index (`LineAddr` raw value).
        line: u64,
    },
    /// A pool header holding neither zero nor the heap magic.
    HeapBadHeader {
        /// Heap pool.
        pool: usize,
    },
}

impl RecoveryFault {
    /// `true` for damage that fails the `Strict` policy (anything a
    /// natural crash state cannot contain).
    pub fn is_fatal(self) -> bool {
        !matches!(
            self,
            RecoveryFault::TornEntry { .. } | RecoveryFault::HeapTorn { .. }
        )
    }

    /// Owning thread, when the fault lies inside one thread's log region.
    pub fn tid(self) -> Option<usize> {
        match self {
            RecoveryFault::TornEntry { tid, .. }
            | RecoveryFault::ChecksumMismatch { tid, .. }
            | RecoveryFault::PoisonedLine { tid, .. } => Some(tid),
            _ => None,
        }
    }

    /// Owning heap pool, for allocator-metadata faults.
    pub fn pool(self) -> Option<usize> {
        match self {
            RecoveryFault::HeapTorn { pool, .. }
            | RecoveryFault::HeapCorrupt { pool, .. }
            | RecoveryFault::HeapCorruptTable { pool, .. }
            | RecoveryFault::HeapPoisoned { pool, .. }
            | RecoveryFault::HeapBadHeader { pool } => Some(pool),
            _ => None,
        }
    }
}

impl From<HeapFault> for RecoveryFault {
    fn from(f: HeapFault) -> Self {
        match f {
            HeapFault::TornRecord { pool, slot } => RecoveryFault::HeapTorn { pool, slot },
            HeapFault::CorruptRecord { pool, slot }
            | HeapFault::InconsistentJournal { pool, slot } => {
                RecoveryFault::HeapCorrupt { pool, slot }
            }
            HeapFault::CorruptTable { pool, entry } => {
                RecoveryFault::HeapCorruptTable { pool, entry }
            }
            HeapFault::Poisoned { pool, line } => RecoveryFault::HeapPoisoned { pool, line },
            HeapFault::BadHeader { pool } => RecoveryFault::HeapBadHeader { pool },
        }
    }
}

impl std::fmt::Display for RecoveryFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RecoveryFault::TornEntry { tid, slot } => {
                write!(f, "torn log entry (thread {tid}, slot {slot})")
            }
            RecoveryFault::ChecksumMismatch { tid, slot } => {
                write!(f, "log checksum mismatch (thread {tid}, slot {slot})")
            }
            RecoveryFault::PoisonedLine { tid, line } => {
                write!(f, "poisoned log line {line} (thread {tid})")
            }
            RecoveryFault::PoisonedMeta { line } => {
                write!(f, "poisoned commit-metadata line {line}")
            }
            RecoveryFault::HeapTorn { pool, slot } => {
                write!(
                    f,
                    "torn allocator-journal record (pool {pool}, slot {slot})"
                )
            }
            RecoveryFault::HeapCorrupt { pool, slot } => {
                write!(f, "corrupt allocator metadata (pool {pool}, slot {slot})")
            }
            RecoveryFault::HeapCorruptTable { pool, entry } => {
                write!(f, "corrupt checkpoint table (pool {pool}, entry {entry})")
            }
            RecoveryFault::HeapPoisoned { pool, line } => {
                write!(f, "poisoned allocator-metadata line {line} (pool {pool})")
            }
            RecoveryFault::HeapBadHeader { pool } => {
                write!(f, "unrecognizable heap-pool header (pool {pool})")
            }
        }
    }
}

/// Structured failure of a `Strict`-policy recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryError {
    /// The first fatal fault encountered (scan order).
    pub first: RecoveryFault,
    /// Everything the scan detected, by class.
    pub detected: FaultCounts,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "strict recovery refused a damaged image: {} \
             ({} torn, {} corrupt, {} poisoned)",
            self.first, self.detected.torn, self.detected.checksum_mismatch, self.detected.poisoned
        )
    }
}

impl std::error::Error for RecoveryError {}

/// Result of a policy-aware recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyOutcome {
    /// The usual recovery statistics.
    pub report: RecoveryReport,
    /// Every damaged location, in scan order.
    pub faults: Vec<RecoveryFault>,
    /// Threads whose log regions held damage (always empty under
    /// `Strict`, which errors instead). Sorted ascending.
    pub salvaged_threads: Vec<usize>,
    /// Heap pools whose allocator metadata held fatal damage and were
    /// quarantined (always empty under `Strict`). Sorted ascending.
    pub salvaged_pools: Vec<usize>,
    /// Recovery's data-region writes in application order (replay then
    /// rollback). Re-applying any prefix-closed subset and re-running
    /// recovery converges to the same image (see module docs).
    pub writes: Vec<(Addr, u64)>,
}

/// Runs recovery over a crashed PM image, mutating it to the recovered
/// state, and reports what was done.
pub fn recover(img: &mut PmImage, layout: &PmLayout) -> RecoveryReport {
    recover_inner(img, layout, None)
}

/// As [`recover`], but emitting `RecoveryBegin`/`RecoveryEnd` events into
/// `sink` for the `scan`, `redo`, and `undo` phases. Timestamps are a
/// phase-local tick counter (recovery runs outside simulated time).
pub fn recover_traced(
    img: &mut PmImage,
    layout: &PmLayout,
    sink: &mut dyn TraceSink,
) -> RecoveryReport {
    recover_inner(img, layout, Some(sink))
}

/// Runs fault-aware recovery under `policy`.
///
/// `Strict` returns an error — leaving `img` untouched — when the scan
/// finds fatal damage; otherwise both policies mutate `img` to the
/// recovered state and describe what happened in the [`PolicyOutcome`].
/// On an undamaged image the mutation and the embedded
/// [`RecoveryReport`] are identical to [`recover`]'s.
///
/// # Errors
///
/// [`RecoveryError`] under [`RecoveryPolicy::Strict`] when a corrupt slot
/// or poisoned line is detected. `Salvage` never errors.
pub fn recover_with_policy(
    img: &mut PmImage,
    layout: &PmLayout,
    policy: RecoveryPolicy,
) -> Result<PolicyOutcome, RecoveryError> {
    recover_policy_inner(img, layout, policy, None)
}

/// As [`recover_with_policy`], tracing recovery phases plus one
/// `CorruptionDetected` event per damaged slot and one `RegionSalvaged`
/// event per salvaged thread.
pub fn recover_with_policy_traced(
    img: &mut PmImage,
    layout: &PmLayout,
    policy: RecoveryPolicy,
    sink: &mut dyn TraceSink,
) -> Result<PolicyOutcome, RecoveryError> {
    recover_policy_inner(img, layout, policy, Some(sink))
}

fn note(sink: &mut Option<&mut dyn TraceSink>, t: &mut u64, event: TraceEvent) {
    if let Some(s) = sink.as_deref_mut() {
        s.record(*t, event);
        *t += 1;
    }
}

/// Shared scan state: per-thread cuts plus the classified work lists.
struct ScanState {
    cuts: Vec<u64>,
    rollback: Vec<DecodedEntry>,
    replayable: Vec<DecodedEntry>,
    discarded: usize,
    sync_entries: usize,
    scanned: u64,
    detected: FaultCounts,
}

/// Folds one thread's detailed scan into the work lists. `header_cut` and
/// `global_cut` participate in the cut computation exactly as in the
/// legacy pass.
fn fold_thread_scan(state: &mut ScanState, tid: usize, scan: &DetailedScan, extra_cut: u64) {
    let cut = scan
        .entries
        .iter()
        .filter(|e| e.etype == EntryType::Commit)
        .map(|e| e.value)
        .max()
        .unwrap_or(0)
        .max(extra_cut);
    state.cuts[tid] = cut;
    state.scanned += scan.entries.len() as u64;
    state.detected.torn += scan.torn.len();
    state.detected.checksum_mismatch += scan.corrupt.len();
    state.detected.poisoned += scan.poisoned.len();
    for e in &scan.entries {
        match formats::recovery_action(e, cut) {
            RecoveryAction::None => {}
            RecoveryAction::Discard => state.discarded += 1,
            RecoveryAction::Replay => state.replayable.push(*e),
            RecoveryAction::RollBack => state.rollback.push(*e),
            RecoveryAction::Sync => state.sync_entries += 1,
        }
    }
}

/// Orders the work lists and applies them to `img`, tracing the `redo` and
/// `undo` phases. Returns the writes in application order.
fn apply_writes(
    img: &mut PmImage,
    state: &mut ScanState,
    sink: &mut Option<&mut dyn TraceSink>,
    t: &mut u64,
) -> Vec<(Addr, u64)> {
    let mut writes = Vec::with_capacity(state.replayable.len() + state.rollback.len());
    // Replay committed redo entries forward, in creation order.
    note(sink, t, TraceEvent::RecoveryBegin { phase: "redo" });
    state.replayable.sort_unstable_by_key(|e| e.seq);
    for e in &state.replayable {
        img.store(e.addr, e.value);
        writes.push((e.addr, e.value));
    }
    note(
        sink,
        t,
        TraceEvent::RecoveryEnd {
            phase: "redo",
            items: state.replayable.len() as u64,
        },
    );
    // Roll back in reverse order of creation, across all threads.
    note(sink, t, TraceEvent::RecoveryBegin { phase: "undo" });
    state
        .rollback
        .sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
    for e in &state.rollback {
        img.store(e.addr, e.value);
        writes.push((e.addr, e.value));
    }
    note(
        sink,
        t,
        TraceEvent::RecoveryEnd {
            phase: "undo",
            items: state.rollback.len() as u64,
        },
    );
    writes
}

fn report_of(state: ScanState, heap: HeapSummary) -> RecoveryReport {
    RecoveryReport {
        per_thread_cut: state.cuts,
        discarded_committed: state.discarded,
        rolled_back_stores: state.rollback.len(),
        replayed_redo: state.replayable.len(),
        sync_entries: state.sync_entries,
        detected: state.detected,
        heap,
    }
}

/// Scans and rebuilds the allocator metadata of every pool (read-only;
/// runs before the workload-log pass). Returns the raw recovery, the
/// faults lifted into the recovery taxonomy, and the report summary.
fn scan_heap(img: &PmImage, layout: &PmLayout) -> (HeapRecovery, Vec<RecoveryFault>, HeapSummary) {
    let rec = recover_heap(img, layout);
    let faults: Vec<RecoveryFault> = rec.faults.iter().map(|&f| f.into()).collect();
    let summary = HeapSummary {
        live_blocks: rec.live_blocks(),
        reclaimed_records: rec.reclaimed_records(),
        damaged_pools: rec.damaged_pools().len(),
    };
    (rec, faults, summary)
}

/// Folds heap faults into the damage taxonomy counts.
fn count_heap_faults(detected: &mut FaultCounts, faults: &[RecoveryFault]) {
    for f in faults {
        match f {
            RecoveryFault::HeapTorn { .. } => detected.torn += 1,
            RecoveryFault::HeapCorrupt { .. }
            | RecoveryFault::HeapCorruptTable { .. }
            | RecoveryFault::HeapBadHeader { .. } => detected.checksum_mismatch += 1,
            RecoveryFault::HeapPoisoned { .. } => detected.poisoned += 1,
            _ => {}
        }
    }
}

fn recover_inner(
    img: &mut PmImage,
    layout: &PmLayout,
    mut sink: Option<&mut dyn TraceSink>,
) -> RecoveryReport {
    let mut t = 0u64;
    let mut state = ScanState {
        cuts: vec![0u64; layout.threads()],
        rollback: Vec::new(),
        replayable: Vec::new(),
        discarded: 0,
        sync_entries: 0,
        scanned: 0,
        detected: FaultCounts::default(),
    };

    // Allocator metadata is scanned before the workload logs (read-only;
    // the legacy pass reads through damage and reports best-effort).
    let (_, heap_faults, heap_summary) = scan_heap(img, layout);
    count_heap_faults(&mut state.detected, &heap_faults);

    // The coordinated-commit protocol publishes a machine-wide cut in a
    // dedicated PM word; it covers every thread.
    let global_cut = img.load(layout.lock_addr(crate::runtime::GLOBAL_CUT_LOCK));

    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "scan" },
    );
    for tid in 0..layout.threads() {
        let region = layout.log_region(tid);
        let scan = scan_log_detailed(img, region);
        // Commit records carry the cut in their value field; stale records
        // from earlier batches have smaller cuts, so the max is correct.
        // The durable-cut header word covers entries truncated by a group
        // commit or coordinated commit.
        let header_cut = img.load(region.base.offset_words(1));
        fold_thread_scan(&mut state, tid, &scan, global_cut.max(header_cut));
    }
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "scan",
            items: state.scanned,
        },
    );

    apply_writes(img, &mut state, &mut sink, &mut t);
    report_of(state, heap_summary)
}

fn recover_policy_inner(
    img: &mut PmImage,
    layout: &PmLayout,
    policy: RecoveryPolicy,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<PolicyOutcome, RecoveryError> {
    let mut t = 0u64;
    let mut state = ScanState {
        cuts: vec![0u64; layout.threads()],
        rollback: Vec::new(),
        replayable: Vec::new(),
        discarded: 0,
        sync_entries: 0,
        scanned: 0,
        detected: FaultCounts::default(),
    };
    let mut faults: Vec<RecoveryFault> = Vec::new();
    let mut salvaged: Vec<usize> = Vec::new();

    // The allocator metadata is scanned first: workload-log replay writes
    // into heap data, so the heap's own books must be judged before
    // anything mutates. The scan is read-only and per-pool independent.
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "heap" },
    );
    let (heap_rec, heap_faults, heap_summary) = scan_heap(img, layout);
    let mut salvaged_pools = heap_rec.damaged_pools();
    count_heap_faults(&mut state.detected, &heap_faults);
    faults.extend(heap_faults.iter().copied());
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "heap",
            items: heap_summary.live_blocks,
        },
    );
    for (pool, rebuilt) in heap_rec.pools.iter().enumerate() {
        if let Some(p) = rebuilt {
            note(
                &mut sink,
                &mut t,
                TraceEvent::HeapRecovered {
                    pool: pool as u32,
                    live: p.live_count(),
                    reclaimed: heap_rec.scans[pool].torn_slots(),
                },
            );
        }
    }

    // The fault-aware pass refuses to trust a poisoned metadata line: the
    // global cut reads as 0 and the damage is reported. (The legacy pass
    // reads through poison.)
    let global_cut_addr = layout.lock_addr(crate::runtime::GLOBAL_CUT_LOCK);
    let meta_poisoned = img.is_poisoned(global_cut_addr.line());
    let global_cut = if meta_poisoned {
        faults.push(RecoveryFault::PoisonedMeta {
            line: global_cut_addr.line().raw(),
        });
        0
    } else {
        img.load(global_cut_addr)
    };

    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "scan" },
    );
    let mut scans = Vec::with_capacity(layout.threads());
    for tid in 0..layout.threads() {
        let region = layout.log_region(tid);
        let scan = scan_log_detailed(img, region);
        let region_line = region.base.line().raw();
        // Lines per slot == 1: slot i lives at region line + i.
        for &slot in &scan.torn {
            faults.push(RecoveryFault::TornEntry { tid, slot });
        }
        for &slot in &scan.corrupt {
            faults.push(RecoveryFault::ChecksumMismatch { tid, slot });
        }
        for &slot in &scan.poisoned {
            faults.push(RecoveryFault::PoisonedLine {
                tid,
                line: region_line + slot,
            });
        }
        // A poisoned header hides the durable-cut word; treat the cut as
        // unknown (0) and report the damage.
        let header_poisoned = img.is_poisoned(region.base.line());
        let header_cut = if header_poisoned {
            faults.push(RecoveryFault::PoisonedLine {
                tid,
                line: region_line,
            });
            0
        } else {
            img.load(region.base.offset_words(1))
        };
        if scan.damaged() || header_poisoned || meta_poisoned {
            salvaged.push(tid);
        }
        scans.push((scan, global_cut.max(header_cut), header_poisoned));
    }
    for (tid, (scan, extra_cut, header_poisoned)) in scans.iter().enumerate() {
        fold_thread_scan(&mut state, tid, scan, *extra_cut);
        if *header_poisoned {
            state.detected.poisoned += 1;
        }
    }
    if meta_poisoned {
        state.detected.poisoned += 1;
    }
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "scan",
            items: state.scanned,
        },
    );

    // Surface every damage site as a trace event, whatever the policy.
    // Heap faults carry no owning thread; they report the metadata line.
    for f in &faults {
        let (thread, line, kind) = match *f {
            RecoveryFault::TornEntry { tid, slot } => {
                let region_line = layout.log_region(tid).base.line().raw();
                (tid as u32, region_line + slot, "torn")
            }
            RecoveryFault::ChecksumMismatch { tid, slot } => {
                let region_line = layout.log_region(tid).base.line().raw();
                (tid as u32, region_line + slot, "checksum")
            }
            RecoveryFault::PoisonedLine { tid, line } => (tid as u32, line, "poison"),
            RecoveryFault::PoisonedMeta { line } => (u32::MAX, line, "poison"),
            RecoveryFault::HeapTorn { pool, slot } => (
                u32::MAX,
                layout.heap_journal_slot(pool, slot).line().raw(),
                "torn",
            ),
            RecoveryFault::HeapCorrupt { pool, slot } => (
                u32::MAX,
                layout.heap_journal_slot(pool, slot).line().raw(),
                "checksum",
            ),
            RecoveryFault::HeapCorruptTable { pool, .. }
            | RecoveryFault::HeapBadHeader { pool } => (
                u32::MAX,
                layout.pool_meta_base(pool).line().raw(),
                "checksum",
            ),
            RecoveryFault::HeapPoisoned { line, .. } => (u32::MAX, line, "poison"),
        };
        note(
            &mut sink,
            &mut t,
            TraceEvent::CorruptionDetected { thread, line, kind },
        );
    }

    match policy {
        RecoveryPolicy::Strict => {
            if let Some(&first) = faults.iter().find(|f| f.is_fatal()) {
                // Fail before mutating: `img` still holds the crash state.
                return Err(RecoveryError {
                    first,
                    detected: state.detected,
                });
            }
            salvaged.clear();
            salvaged_pools.clear();
        }
        RecoveryPolicy::Salvage => {
            for &pool in &salvaged_pools {
                let n = faults.iter().filter(|f| f.pool() == Some(pool)).count() as u64;
                note(
                    &mut sink,
                    &mut t,
                    TraceEvent::PoolSalvaged {
                        pool: pool as u32,
                        faults: n,
                    },
                );
            }
            for &tid in &salvaged {
                let dropped = {
                    let (scan, _, header_poisoned) = &scans[tid];
                    (scan.torn.len() + scan.corrupt.len() + scan.poisoned.len()) as u64
                        + u64::from(*header_poisoned)
                };
                note(
                    &mut sink,
                    &mut t,
                    TraceEvent::RegionSalvaged {
                        thread: tid as u32,
                        dropped,
                    },
                );
            }
        }
    }

    let writes = apply_writes(img, &mut state, &mut sink, &mut t);
    Ok(PolicyOutcome {
        report: report_of(state, heap_summary),
        faults,
        salvaged_threads: salvaged,
        salvaged_pools,
        writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FuncCtx;
    use crate::log::{EntryPayload, EntryType, UndoLog, W_AUX, W_CHECKSUM};
    use sw_pmem::CACHE_LINE_BYTES;

    /// One thread, two uncommitted undo entries: x (5 → 9) in slot 1 and
    /// y (6 → 8) in slot 2. Returns the crashed (fully persisted) image.
    fn fixture() -> (PmImage, PmLayout, Addr, Addr) {
        let layout = PmLayout::new(1, 64);
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut log = UndoLog::new(layout.log_region(0), 0);
        let x = layout.heap_base();
        let y = x.offset_words(8);
        ctx.store(0, x, 5);
        ctx.store(0, y, 6);
        log.append(
            &mut ctx,
            EntryPayload {
                etype: EntryType::Store,
                addr: x,
                value: 5,
                aux: 0,
            },
        );
        ctx.store(0, x, 9);
        log.append(
            &mut ctx,
            EntryPayload {
                etype: EntryType::Store,
                addr: y,
                value: 6,
                aux: 0,
            },
        );
        ctx.store(0, y, 8);
        ctx.mem_mut().persist_all();
        let img = ctx.mem().persisted_image().clone();
        (img, layout, x, y)
    }

    fn slot_base(layout: &PmLayout, slot: u64) -> Addr {
        Addr(layout.log_region(0).base.raw() + slot * CACHE_LINE_BYTES)
    }

    #[test]
    fn strict_matches_legacy_on_clean_image() {
        let (img, layout, x, y) = fixture();
        let mut legacy = img.clone();
        let legacy_report = recover(&mut legacy, &layout);
        let mut strict = img.clone();
        let out =
            recover_with_policy(&mut strict, &layout, RecoveryPolicy::Strict).expect("clean image");
        assert_eq!(strict, legacy, "identical recovered images");
        assert_eq!(out.report, legacy_report, "identical reports");
        assert!(out.faults.is_empty());
        assert!(out.salvaged_threads.is_empty());
        assert_eq!(out.report.rolled_back_stores, 2);
        assert_eq!(out.report.detected, FaultCounts::default());
        assert_eq!(strict.load(x), 5, "uncommitted x rolled back");
        assert_eq!(strict.load(y), 6, "uncommitted y rolled back");
        assert_eq!(out.writes.len(), 2);
    }

    #[test]
    fn strict_fails_fast_on_corruption_without_mutating() {
        let (mut img, layout, _, _) = fixture();
        // Flip the zero AUX word of slot 2: every word nonzero, checksum
        // stale — corruption no tear can explain.
        img.store(slot_base(&layout, 2).offset_words(W_AUX), 0xbad);
        let mut target = img.clone();
        let err = recover_with_policy(&mut target, &layout, RecoveryPolicy::Strict)
            .expect_err("corrupt slot must fail strict recovery");
        assert_eq!(
            err.first,
            RecoveryFault::ChecksumMismatch { tid: 0, slot: 2 }
        );
        assert_eq!(err.detected.checksum_mismatch, 1);
        assert_eq!(target, img, "strict failure leaves the image untouched");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn salvage_recovers_valid_entries_and_reports_damage() {
        let (mut img, layout, x, y) = fixture();
        img.store(slot_base(&layout, 2).offset_words(W_AUX), 0xbad);
        let out = recover_with_policy(&mut img, &layout, RecoveryPolicy::Salvage)
            .expect("salvage never errors");
        assert_eq!(out.salvaged_threads, vec![0]);
        assert_eq!(out.report.detected.checksum_mismatch, 1);
        assert_eq!(
            out.faults,
            vec![RecoveryFault::ChecksumMismatch { tid: 0, slot: 2 }]
        );
        // The intact undo entry still rolls back; the damaged one is lost.
        assert_eq!(img.load(x), 5);
        assert_eq!(img.load(y), 8, "y's undo entry was destroyed");
    }

    #[test]
    fn torn_slot_is_benign_under_strict() {
        let (mut img, layout, x, y) = fixture();
        // Tear slot 2's publication: its checksum word never persisted.
        img.store(slot_base(&layout, 2).offset_words(W_CHECKSUM), 0);
        let out = recover_with_policy(&mut img, &layout, RecoveryPolicy::Strict)
            .expect("tears occur naturally and must not fail strict");
        assert_eq!(out.report.detected.torn, 1);
        assert_eq!(
            out.faults,
            vec![RecoveryFault::TornEntry { tid: 0, slot: 2 }]
        );
        assert!(out.salvaged_threads.is_empty());
        assert_eq!(img.load(x), 5);
        assert_eq!(img.load(y), 8);
    }

    #[test]
    fn poisoned_slot_fails_strict_and_salvages() {
        let (mut img, layout, _, _) = fixture();
        let line = slot_base(&layout, 2).line();
        img.poison_line(line);
        let err = recover_with_policy(&mut img.clone(), &layout, RecoveryPolicy::Strict)
            .expect_err("poison must fail strict recovery");
        assert_eq!(
            err.first,
            RecoveryFault::PoisonedLine {
                tid: 0,
                line: line.raw()
            }
        );
        let out = recover_with_policy(&mut img, &layout, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(out.salvaged_threads, vec![0]);
        assert_eq!(out.report.detected.poisoned, 1);
    }

    #[test]
    fn poisoned_header_zeroes_cut_and_salvages() {
        let (mut img, layout, _, _) = fixture();
        img.poison_line(layout.log_region(0).base.line());
        let out = recover_with_policy(&mut img, &layout, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(out.salvaged_threads, vec![0]);
        assert_eq!(out.report.per_thread_cut, vec![0]);
        assert!(out
            .faults
            .iter()
            .any(|f| matches!(f, RecoveryFault::PoisonedLine { tid: 0, .. })));
    }

    #[test]
    fn poisoned_meta_line_salvages_every_thread() {
        let layout = PmLayout::new(2, 64);
        let ctx = FuncCtx::new(layout.clone(), 2);
        let mut img = ctx.mem().persisted_image().clone();
        let meta = layout.lock_addr(crate::runtime::GLOBAL_CUT_LOCK).line();
        img.poison_line(meta);
        let err = recover_with_policy(&mut img.clone(), &layout, RecoveryPolicy::Strict)
            .expect_err("meta poison must fail strict recovery");
        assert_eq!(err.first, RecoveryFault::PoisonedMeta { line: meta.raw() });
        let out = recover_with_policy(&mut img, &layout, RecoveryPolicy::Salvage).unwrap();
        assert_eq!(out.salvaged_threads, vec![0, 1]);
    }

    #[test]
    fn traced_policy_recovery_emits_detection_and_salvage_events() {
        use sw_trace::RingRecorder;
        let (mut img, layout, _, _) = fixture();
        img.store(slot_base(&layout, 2).offset_words(W_AUX), 0xbad);
        let rec = RingRecorder::new(64);
        let mut sink = rec.clone();
        recover_with_policy_traced(&mut img, &layout, RecoveryPolicy::Salvage, &mut sink)
            .expect("salvage never errors");
        let events = rec.events();
        assert!(events
            .iter()
            .any(|e| e.event.kind() == "corruption_detected"));
        assert!(events.iter().any(|e| matches!(
            e.event,
            TraceEvent::RegionSalvaged {
                thread: 0,
                dropped: 1
            }
        )));
    }

    #[test]
    fn interrupted_recovery_reconverges() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let (mut img, layout, _, _) = fixture();
        let mut rng = SmallRng::seed_from_u64(7);
        crate::harness::recovery_reconverges(&img, &layout, RecoveryPolicy::Strict, &mut rng)
            .expect("strict reconvergence on a clean image");
        img.store(slot_base(&layout, 2).offset_words(W_AUX), 0xbad);
        crate::harness::recovery_reconverges(&img, &layout, RecoveryPolicy::Salvage, &mut rng)
            .expect("salvage reconvergence on a damaged image");
    }
}
