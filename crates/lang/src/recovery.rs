//! Post-failure recovery (paper Figure 6(b)).
//!
//! Recovery inspects every per-thread log region in the crashed PM image:
//!
//! 1. For each thread, find the highest persisted commit cut (the paper's
//!    commit-intent marker): entries at or below the cut belong to regions
//!    whose commit was in progress or complete — they are discarded, never
//!    rolled back (Figure 6(b) step 2).
//! 2. Every surviving `Store` entry is rolled back — the old value is
//!    written over the in-place update — in reverse order of creation
//!    across **all** threads (Figure 6(b) step 3; global reverse sequence
//!    order unwinds same-address overwrites by later regions correctly).
//! 3. Synchronization entries (acquire/release/begin/end) carry
//!    happens-before metadata and are skipped by rollback.
//! 4. Under the redo extension ([`LogStrategy::Redo`]) the direction
//!    flips: committed `RedoStore` entries (at or below the cut) are
//!    *replayed forward* in creation order — their in-place updates may
//!    not have persisted — and uncommitted ones are discarded.
//!
//! [`LogStrategy::Redo`]: crate::LogStrategy::Redo

use sw_pmem::{PmImage, PmLayout};
use sw_trace::{TraceEvent, TraceSink};

use crate::log::{scan_log, DecodedEntry, EntryType};

/// Statistics about one recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-thread commit cut: the highest sequence number covered by a
    /// persisted commit record (0 when the thread never committed).
    pub per_thread_cut: Vec<u64>,
    /// Valid entries discarded because a commit record covered them.
    pub discarded_committed: usize,
    /// Store entries rolled back.
    pub rolled_back_stores: usize,
    /// Committed redo entries replayed forward.
    pub replayed_redo: usize,
    /// Synchronization entries skipped during rollback.
    pub sync_entries: usize,
}

impl RecoveryReport {
    /// `true` if recovery had nothing to undo or replay (clean shutdown).
    pub fn was_clean(&self) -> bool {
        self.rolled_back_stores == 0 && self.replayed_redo == 0
    }
}

/// Runs recovery over a crashed PM image, mutating it to the recovered
/// state, and reports what was done.
pub fn recover(img: &mut PmImage, layout: &PmLayout) -> RecoveryReport {
    recover_inner(img, layout, None)
}

/// As [`recover`], but emitting `RecoveryBegin`/`RecoveryEnd` events into
/// `sink` for the `scan`, `redo`, and `undo` phases. Timestamps are a
/// phase-local tick counter (recovery runs outside simulated time).
pub fn recover_traced(
    img: &mut PmImage,
    layout: &PmLayout,
    sink: &mut dyn TraceSink,
) -> RecoveryReport {
    recover_inner(img, layout, Some(sink))
}

fn note(sink: &mut Option<&mut dyn TraceSink>, t: &mut u64, event: TraceEvent) {
    if let Some(s) = sink.as_deref_mut() {
        s.record(*t, event);
        *t += 1;
    }
}

fn recover_inner(
    img: &mut PmImage,
    layout: &PmLayout,
    mut sink: Option<&mut dyn TraceSink>,
) -> RecoveryReport {
    let mut t = 0u64;
    let mut cuts = vec![0u64; layout.threads()];
    let mut survivors: Vec<DecodedEntry> = Vec::new();
    let mut discarded = 0usize;

    // The coordinated-commit protocol publishes a machine-wide cut in a
    // dedicated PM word; it covers every thread.
    let global_cut = img.load(layout.lock_addr(crate::runtime::GLOBAL_CUT_LOCK));

    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "scan" },
    );
    let mut scanned = 0u64;
    let mut replayable: Vec<DecodedEntry> = Vec::new();
    for (tid, cut_slot) in cuts.iter_mut().enumerate() {
        let region = layout.log_region(tid);
        let entries: Vec<DecodedEntry> = scan_log(img, region).collect();
        // Commit records carry the cut in their value field; stale records
        // from earlier batches have smaller cuts, so the max is correct.
        // The durable-cut header word covers entries truncated by a group
        // commit or coordinated commit.
        let header_cut = img.load(layout.log_region(tid).base.offset_words(1));
        let cut = entries
            .iter()
            .filter(|e| e.etype == EntryType::Commit)
            .map(|e| e.value)
            .max()
            .unwrap_or(0)
            .max(global_cut)
            .max(header_cut);
        *cut_slot = cut;
        scanned += entries.len() as u64;
        for e in entries {
            if e.etype == EntryType::Commit {
                continue;
            }
            if e.etype == EntryType::RedoStore {
                // Redo direction: committed entries replay, uncommitted
                // ones are dropped.
                if e.seq <= cut {
                    replayable.push(e);
                } else {
                    discarded += 1;
                }
                continue;
            }
            if e.seq <= cut {
                discarded += 1;
            } else {
                survivors.push(e);
            }
        }
    }

    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "scan",
            items: scanned,
        },
    );

    // Replay committed redo entries forward, in creation order.
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "redo" },
    );
    replayable.sort_unstable_by_key(|e| e.seq);
    let replayed_redo = replayable.len();
    for e in &replayable {
        img.store(e.addr, e.value);
    }
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "redo",
            items: replayed_redo as u64,
        },
    );

    // Roll back in reverse order of creation, across all threads.
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "undo" },
    );
    survivors.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
    let mut rolled_back = 0usize;
    let mut sync_entries = 0usize;
    for e in &survivors {
        match e.etype {
            EntryType::Store => {
                img.store(e.addr, e.value);
                rolled_back += 1;
            }
            EntryType::Commit => unreachable!("filtered above"),
            _ => sync_entries += 1,
        }
    }
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "undo",
            items: rolled_back as u64,
        },
    );

    RecoveryReport {
        per_thread_cut: cuts,
        discarded_committed: discarded,
        rolled_back_stores: rolled_back,
        replayed_redo,
        sync_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FuncCtx;
    use crate::runtime::{LangModel, RuntimeConfig, ThreadRuntime};
    use sw_model::isa::LockId;
    use sw_model::HwDesign;

    fn run_one_region(design: HwDesign, lang: LangModel, commit: bool) -> (FuncCtx, PmLayout) {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(&layout, 0, RuntimeConfig::new(design, lang));
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.store(&mut ctx, heap.offset_words(8), 8);
        rt.region_end(&mut ctx);
        if commit {
            rt.shutdown(&mut ctx);
        }
        (ctx, layout)
    }

    #[test]
    fn rollback_of_uncommitted_region() {
        // SFR leaves the region uncommitted; persist everything, crash,
        // recover: the region must be undone (entries valid, no commit).
        let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Sfr, false);
        ctx.mem_mut().persist_all();
        let mut img = ctx.mem().persisted_image().clone();
        let report = recover(&mut img, &layout);
        assert_eq!(report.rolled_back_stores, 2);
        assert_eq!(
            img.load(layout.heap_base()),
            0,
            "update rolled back to old value"
        );
        assert_eq!(img.load(layout.heap_base().offset_words(8)), 0);
    }

    #[test]
    fn committed_region_is_not_rolled_back() {
        let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Txn, false);
        ctx.mem_mut().persist_all();
        let mut img = ctx.mem().persisted_image().clone();
        let report = recover(&mut img, &layout);
        assert!(report.was_clean());
        assert_eq!(img.load(layout.heap_base()), 7);
        assert_eq!(img.load(layout.heap_base().offset_words(8)), 8);
    }

    #[test]
    fn nothing_persisted_recovers_to_initial_state() {
        let (ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Txn, false);
        let mut img = ctx.mem().persisted_image().clone(); // nothing persisted
        let report = recover(&mut img, &layout);
        assert!(report.was_clean());
        assert_eq!(img.load(layout.heap_base()), 0);
    }

    #[test]
    fn reverse_order_rollback_unwinds_overwrites() {
        // Two uncommitted regions writing the same word: rollback must land
        // on the value before the first region.
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Sfr),
        );
        for v in [5, 9] {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            rt.store(&mut ctx, heap, v);
            rt.region_end(&mut ctx);
        }
        ctx.mem_mut().persist_all();
        let mut img = ctx.mem().persisted_image().clone();
        let report = recover(&mut img, &layout);
        assert_eq!(report.rolled_back_stores, 2);
        assert_eq!(img.load(heap), 0);
    }

    #[test]
    fn report_tracks_commit_cuts() {
        let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Txn, false);
        ctx.mem_mut().persist_all();
        let mut img = ctx.mem().persisted_image().clone();
        let report = recover(&mut img, &layout);
        assert!(report.per_thread_cut[0] > 0);
    }

    #[test]
    fn traced_recovery_emits_phase_events() {
        let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Sfr, false);
        ctx.mem_mut().persist_all();
        let mut img = ctx.mem().persisted_image().clone();
        let mut rec = sw_trace::RingRecorder::new(64);
        let report = recover_traced(&mut img, &layout, &mut rec);
        assert_eq!(report.rolled_back_stores, 2);
        let events = rec.events();
        let begins = events
            .iter()
            .filter(|e| e.event.kind() == "recovery_begin")
            .count();
        let ends = events
            .iter()
            .filter(|e| e.event.kind() == "recovery_end")
            .count();
        assert_eq!(begins, 3, "scan, redo, undo each open a phase");
        assert_eq!(ends, 3, "every phase closes");
        assert!(
            events.iter().any(|e| matches!(
                e.event,
                TraceEvent::RecoveryEnd {
                    phase: "undo",
                    items: 2
                }
            )),
            "undo phase reports the two rolled-back stores"
        );
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Sfr, false);
        ctx.mem_mut().persist_all();
        let mut img = ctx.mem().persisted_image().clone();
        recover(&mut img, &layout);
        let snapshot = img.clone();
        recover(&mut img, &layout);
        assert_eq!(img, snapshot);
    }
}
