//! Post-failure recovery (paper Figure 6(b)) — one generic pass over the
//! log formats.
//!
//! Recovery inspects every per-thread log region in the crashed PM image:
//!
//! 1. For each thread, find the highest persisted commit cut (the paper's
//!    commit-intent marker): the max over commit-record values, the global
//!    coordinated-commit cut word, and the durable-cut header word.
//! 2. Every other decoded entry is classified by the [`LogFormat`] that
//!    owns its entry type ([`formats::recovery_action`]): entries covered
//!    by the cut are discarded (undo) or queued for forward *replay* in
//!    creation order (redo — their in-place updates may not have
//!    persisted); survivors are queued for *rollback* in reverse creation
//!    order (undo stores) or counted as synchronization metadata.
//! 3. Replay applies before rollback; both are global across threads
//!    (global reverse sequence order unwinds same-address overwrites by
//!    later regions correctly — Figure 6(b) step 3).
//!
//! Recovery itself never branches on the entry vocabulary: adding a log
//! format extends `formats/`, not this pass. A log-free (Native) run has
//! an empty log region, so recovery is trivially clean.
//!
//! [`LogFormat`]: crate::LogFormat

use sw_pmem::{PmImage, PmLayout};
use sw_trace::{TraceEvent, TraceSink};

use crate::formats::{self, RecoveryAction};
use crate::log::{scan_log, DecodedEntry, EntryType};

/// Statistics about one recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-thread commit cut: the highest sequence number covered by a
    /// persisted commit record (0 when the thread never committed).
    pub per_thread_cut: Vec<u64>,
    /// Valid entries discarded because a commit record covered them.
    pub discarded_committed: usize,
    /// Store entries rolled back.
    pub rolled_back_stores: usize,
    /// Committed redo entries replayed forward.
    pub replayed_redo: usize,
    /// Synchronization entries skipped during rollback.
    pub sync_entries: usize,
}

impl RecoveryReport {
    /// `true` if recovery had nothing to undo or replay (clean shutdown).
    pub fn was_clean(&self) -> bool {
        self.rolled_back_stores == 0 && self.replayed_redo == 0
    }
}

/// Runs recovery over a crashed PM image, mutating it to the recovered
/// state, and reports what was done.
pub fn recover(img: &mut PmImage, layout: &PmLayout) -> RecoveryReport {
    recover_inner(img, layout, None)
}

/// As [`recover`], but emitting `RecoveryBegin`/`RecoveryEnd` events into
/// `sink` for the `scan`, `redo`, and `undo` phases. Timestamps are a
/// phase-local tick counter (recovery runs outside simulated time).
pub fn recover_traced(
    img: &mut PmImage,
    layout: &PmLayout,
    sink: &mut dyn TraceSink,
) -> RecoveryReport {
    recover_inner(img, layout, Some(sink))
}

fn note(sink: &mut Option<&mut dyn TraceSink>, t: &mut u64, event: TraceEvent) {
    if let Some(s) = sink.as_deref_mut() {
        s.record(*t, event);
        *t += 1;
    }
}

fn recover_inner(
    img: &mut PmImage,
    layout: &PmLayout,
    mut sink: Option<&mut dyn TraceSink>,
) -> RecoveryReport {
    let mut t = 0u64;
    let mut cuts = vec![0u64; layout.threads()];
    let mut rollback: Vec<DecodedEntry> = Vec::new();
    let mut replayable: Vec<DecodedEntry> = Vec::new();
    let mut discarded = 0usize;
    let mut sync_entries = 0usize;

    // The coordinated-commit protocol publishes a machine-wide cut in a
    // dedicated PM word; it covers every thread.
    let global_cut = img.load(layout.lock_addr(crate::runtime::GLOBAL_CUT_LOCK));

    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "scan" },
    );
    let mut scanned = 0u64;
    for (tid, cut_slot) in cuts.iter_mut().enumerate() {
        let region = layout.log_region(tid);
        let entries: Vec<DecodedEntry> = scan_log(img, region).collect();
        // Commit records carry the cut in their value field; stale records
        // from earlier batches have smaller cuts, so the max is correct.
        // The durable-cut header word covers entries truncated by a group
        // commit or coordinated commit.
        let header_cut = img.load(layout.log_region(tid).base.offset_words(1));
        let cut = entries
            .iter()
            .filter(|e| e.etype == EntryType::Commit)
            .map(|e| e.value)
            .max()
            .unwrap_or(0)
            .max(global_cut)
            .max(header_cut);
        *cut_slot = cut;
        scanned += entries.len() as u64;
        for e in entries {
            match formats::recovery_action(&e, cut) {
                RecoveryAction::None => {}
                RecoveryAction::Discard => discarded += 1,
                RecoveryAction::Replay => replayable.push(e),
                RecoveryAction::RollBack => rollback.push(e),
                RecoveryAction::Sync => sync_entries += 1,
            }
        }
    }

    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "scan",
            items: scanned,
        },
    );

    // Replay committed redo entries forward, in creation order.
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "redo" },
    );
    replayable.sort_unstable_by_key(|e| e.seq);
    let replayed_redo = replayable.len();
    for e in &replayable {
        img.store(e.addr, e.value);
    }
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "redo",
            items: replayed_redo as u64,
        },
    );

    // Roll back in reverse order of creation, across all threads.
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryBegin { phase: "undo" },
    );
    rollback.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
    let rolled_back = rollback.len();
    for e in &rollback {
        img.store(e.addr, e.value);
    }
    note(
        &mut sink,
        &mut t,
        TraceEvent::RecoveryEnd {
            phase: "undo",
            items: rolled_back as u64,
        },
    );

    RecoveryReport {
        per_thread_cut: cuts,
        discarded_committed: discarded,
        rolled_back_stores: rolled_back,
        replayed_redo,
        sync_entries,
    }
}
