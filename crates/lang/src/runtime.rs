//! The model-agnostic region runtime: lifecycle, lock handling, and
//! store/load instrumentation, lowered onto a hardware design's ISA
//! primitives (Section V).
//!
//! Every per-model decision is delegated to the configured
//! [`CommitPolicy`](crate::CommitPolicy) (one module per language-level
//! model under `policies/`) and every undo/redo encoding decision to the
//! configured [`LogFormat`](crate::LogFormat) (under `formats/`). The
//! logged models share the instrumentation of Figure 5:
//!
//! ```text
//! region begin:  lock; lock-word store; CLWB; sync fence; begin entry
//! per store:     log entry; CLWB(log); pairwise fence;
//!                in-place store; CLWB(data); after-update fence
//! region end:    end entry; CLWB; drain fence (JoinStrand);
//!                [commit];  lock-word store; CLWB; unlock
//! ```
//!
//! They differ in *when logs commit* (the paper's Section VI-B "sensitivity
//! to language-level persistency model"): TXN commits eagerly at every
//! region end; SFR and ATLAS batch commits, logging happens-before metadata
//! at synchronization points and committing only when the log fills. ATLAS
//! additionally pays heavier-weight bookkeeping per lock operation. The
//! log-free Native policy skips the log entirely (legal only on designs
//! that persist stores at visibility).
//!
//! Locks live in PM (`PmLayout::lock_addr`): acquire and release write the
//! lock word, so strong persist atomicity orders persists across threads
//! exactly as prescribed at the end of the paper's Section III.

use std::collections::HashSet;

use sw_model::isa::LockId;
use sw_pmem::{Addr, PmLayout};

use crate::ctx::FuncCtx;
use crate::formats::{LogFormat, LogStrategy};
use crate::log::{EntryPayload, EntryType, UndoLog};
use crate::policies::{CommitPolicy, LangModel};
use sw_model::HwDesign;

/// Configuration of a [`ThreadRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Hardware design to lower onto.
    pub design: HwDesign,
    /// Language-level persistency model.
    pub lang: LangModel,
    /// Write-ahead-logging strategy.
    pub strategy: LogStrategy,
    /// Live-entry threshold at which batched models commit (`None`: 3/4 of
    /// log capacity). Ignored by TXN, which commits every region.
    pub commit_threshold: Option<u64>,
    /// Record per-region write sets for the crash-consistency checker.
    pub record_regions: bool,
}

impl RuntimeConfig {
    /// A configuration with default thresholds and no region recording.
    ///
    /// # Panics
    ///
    /// Panics when `lang` may not run on `design` — log-free models
    /// require persist-at-visibility (eADR-class) hardware. Front ends
    /// (`swctl`) check [`LangModel::legal_on`] first and report the pair
    /// gracefully; reaching this assert means a driver skipped that check.
    pub fn new(design: HwDesign, lang: LangModel) -> Self {
        assert!(
            lang.legal_on(design),
            "language model '{lang}' requires a design that persists stores at visibility \
             (eADR-class); '{design}' does not"
        );
        Self {
            design,
            lang,
            strategy: LogStrategy::Undo,
            commit_threshold: None,
            record_regions: false,
        }
    }

    /// Switches to redo logging (the Section VII extension).
    pub fn redo(mut self) -> Self {
        self.strategy = LogStrategy::Redo;
        self
    }

    /// Enables region recording (used by crash tests).
    pub fn recording(mut self) -> Self {
        self.record_regions = true;
        self
    }
}

/// The write set of one failure-atomic region, as recorded for the
/// crash-consistency checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionRecord {
    /// Thread that executed the region.
    pub tid: usize,
    /// Sequence number of the region's begin entry.
    pub first_seq: u64,
    /// Sequence number of the region's end entry (the terminating entry;
    /// commit cuts fall on these).
    pub last_seq: u64,
    /// `(addr, old, new)` for every PM store in the region, in order.
    pub writes: Vec<(Addr, u64, u64)>,
}

/// Per-thread runtime: a write-ahead log plus the region state machine.
#[derive(Debug)]
pub struct ThreadRuntime {
    tid: usize,
    cfg: RuntimeConfig,
    log: UndoLog,
    threshold: u64,
    locks_held: Vec<LockId>,
    in_region: bool,
    /// Addresses already undo-logged in the current region (first-touch
    /// logging: one entry per location per region; see `store`).
    logged: HashSet<Addr>,
    /// Whether the current region performed any PM store.
    region_had_stores: bool,
    /// Deferring formats (redo): the region's in-place updates, in order
    /// (applied after the commit record at region end).
    write_set: Vec<(Addr, u64)>,
    /// Deferring formats: read-own-writes index over `write_set`.
    write_index: std::collections::HashMap<Addr, u64>,
    current: Option<RegionRecord>,
    records: Vec<RegionRecord>,
}

impl ThreadRuntime {
    /// Creates the runtime for thread `tid` using its log region from
    /// `layout`.
    pub fn new(layout: &PmLayout, tid: usize, cfg: RuntimeConfig) -> Self {
        let log = UndoLog::new(layout.log_region(tid), tid);
        let threshold = cfg
            .commit_threshold
            .unwrap_or(log.capacity() * 3 / 4)
            .min(log.capacity() - 2);
        Self {
            tid,
            cfg,
            log,
            threshold,
            locks_held: Vec::new(),
            in_region: false,
            logged: HashSet::new(),
            region_had_stores: false,
            write_set: Vec::new(),
            write_index: std::collections::HashMap::new(),
            current: None,
            records: Vec::new(),
        }
    }

    /// The configuration this runtime was created with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The commit policy of the configured language model.
    fn policy(&self) -> &'static dyn CommitPolicy {
        self.cfg.lang.policy()
    }

    /// The entry format of the configured log strategy.
    fn format(&self) -> &'static dyn LogFormat {
        self.cfg.strategy.format()
    }

    /// Recorded region write sets (empty unless `record_regions` is set).
    pub fn records(&self) -> &[RegionRecord] {
        &self.records
    }

    /// Consumes the runtime, returning its recorded regions.
    pub fn into_records(self) -> Vec<RegionRecord> {
        self.records
    }

    /// Live (uncommitted) log entries.
    pub fn live_log_entries(&self) -> u64 {
        self.log.live()
    }

    /// Begins a failure-atomic region, acquiring `locks` in order.
    ///
    /// # Panics
    ///
    /// Panics if a region is already open on this thread.
    pub fn region_begin(&mut self, ctx: &mut FuncCtx, locks: &[LockId]) {
        assert!(
            !self.in_region,
            "regions do not nest (outermost-only semantics)"
        );
        self.in_region = true;
        self.logged.clear();
        self.region_had_stores = false;
        self.write_set.clear();
        self.write_index.clear();
        let uses_log = self.policy().uses_log();
        if uses_log && self.format().defers_updates() {
            // SPA chain stamp: strand-orders this region's commit record
            // after the previous region's (prefix property of the cut).
            let layout = ctx.mem().layout().clone();
            let chain = layout.lock_addr(REDO_CHAIN_LOCK_BASE + self.tid as u32);
            let stamp = ctx.next_seq();
            ctx.store(self.tid, chain, stamp);
            ctx.clwb(self.tid, chain);
            self.emit(ctx, self.cfg.design.pairwise_fence());
        }
        self.locks_held = locks.to_vec();
        let layout = ctx.mem().layout().clone();
        let mut first_seq = 0;
        for (i, &l) in locks.iter().enumerate() {
            ctx.lock(self.tid, l);
            let la = layout.lock_addr(l.0);
            let seq = match self.policy().begin_entry() {
                Some(etype) => {
                    // Happens-before predecessor: the last release stamped
                    // on the lock word (ATLAS/SFR log it in the acquire
                    // entry).
                    let hb_pred = ctx.load(self.tid, la);
                    ctx.compute(self.tid, self.policy().sync_cost());
                    self.log.append(
                        ctx,
                        EntryPayload {
                            etype,
                            addr: la,
                            value: hb_pred,
                            aux: l.0 as u64,
                        },
                    )
                }
                // Log-free: no entry, but the stamp still needs a fresh
                // sequence number.
                None => {
                    ctx.compute(self.tid, self.policy().sync_cost());
                    ctx.next_seq()
                }
            };
            if i == 0 {
                first_seq = seq;
            }
            // Stamp and flush the lock word so conflicting persists across
            // threads are ordered by strong persist atomicity, then fence so
            // subsequent region persists are ordered after the stamp
            // (Section III, "Establishing inter-thread persist order").
            // The flush is required: hardware only orders *flushed*
            // persists at a JoinStrand/SFENCE, so an unflushed stamp would
            // leave the formal Eq. 2 edge unenforced. The fence class is
            // the format's call (undo drains across strands, redo stays on
            // one); log-free runtimes run on designs with no fences.
            ctx.store(self.tid, la, seq);
            ctx.clwb(self.tid, la);
            if uses_log {
                self.emit(ctx, self.format().lock_stamp_fence(self.cfg.design));
            }
        }
        if locks.is_empty() {
            // Lock-free region (e.g. a single-threaded transaction): still
            // log the begin entry.
            ctx.compute(self.tid, self.policy().sync_cost());
            first_seq = match self.policy().begin_entry() {
                Some(etype) => self.log.append(
                    ctx,
                    EntryPayload {
                        etype,
                        addr: Addr::NULL,
                        value: 0,
                        aux: 0,
                    },
                ),
                None => ctx.next_seq(),
            };
            if uses_log {
                self.emit(ctx, self.cfg.design.pairwise_fence());
            }
        }
        if self.cfg.record_regions {
            self.current = Some(RegionRecord {
                tid: self.tid,
                first_seq,
                last_seq: 0,
                writes: Vec::new(),
            });
        }
    }

    /// Performs a failure-atomic PM store, instrumented per the configured
    /// format: undo logs the old value, flushes the entry, pairwise-fences,
    /// updates in place, flushes, after-update-fences (Figure 5's
    /// `log_store` + update); redo appends the new value and defers the
    /// update; log-free policies store in place, durably at visibility.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub fn store(&mut self, ctx: &mut FuncCtx, addr: Addr, value: u64) {
        assert!(self.in_region, "store outside a failure-atomic region");
        if !self.policy().uses_log() {
            // Log-free: the design persists the store at visibility; no
            // entry, no flush, no fence. Regions are not failure-atomic —
            // the policy's consistency contract is DurablePrefix.
            self.region_had_stores = true;
            let old = if self.cfg.record_regions {
                ctx.load(self.tid, addr)
            } else {
                0
            };
            ctx.store(self.tid, addr, value);
            if let Some(cur) = self.current.as_mut() {
                cur.writes.push((addr, old, value));
            }
            return;
        }
        if self.format().defers_updates() {
            self.deferred_store(ctx, addr, value);
            return;
        }
        let old = ctx.load(self.tid, addr);
        // First-touch logging: one undo entry per location per region.
        // Besides halving log traffic on overwrite-heavy regions, this is
        // required for correctness under strand persistency: two same-
        // region entries for one address would sit on separate strands,
        // unordered in PMO, and recovery could roll back with an old value
        // that was never durable. With one entry per location, later
        // updates are ordered behind it by strong persist atomicity.
        self.region_had_stores = true;
        if self.logged.insert(addr) {
            self.log
                .append(ctx, self.format().encode_store(addr, old, value));
            self.emit(ctx, self.cfg.design.pairwise_fence());
        }
        ctx.store(self.tid, addr, value);
        ctx.clwb(self.tid, addr);
        self.emit(ctx, self.cfg.design.after_update_fence());
        if let Some(cur) = self.current.as_mut() {
            cur.writes.push((addr, old, value));
        }
    }

    /// Deferring-format store (redo): append an entry with the *new* value
    /// and defer the in-place update to region end (after the commit
    /// record). Entries within the region share the strand with no barrier
    /// between them, so they drain concurrently.
    fn deferred_store(&mut self, ctx: &mut FuncCtx, addr: Addr, value: u64) {
        self.region_had_stores = true;
        let old = if self.cfg.record_regions {
            self.write_index
                .get(&addr)
                .copied()
                .unwrap_or_else(|| ctx.load(self.tid, addr))
        } else {
            0
        };
        self.log
            .append(ctx, self.format().encode_store(addr, old, value));
        self.write_set.push((addr, value));
        self.write_index.insert(addr, value);
        if let Some(cur) = self.current.as_mut() {
            cur.writes.push((addr, old, value));
        }
    }

    /// Reads a word, honoring the current region's deferred write set under
    /// a deferring format (read-own-writes). Equivalent to a plain context
    /// load under undo logging. Use this for all reads inside regions so
    /// workloads run unchanged under either strategy.
    pub fn load(&mut self, ctx: &mut FuncCtx, addr: Addr) -> u64 {
        if self.in_region && !self.write_index.is_empty() {
            if let Some(&v) = self.write_index.get(&addr) {
                return v;
            }
        }
        ctx.load(self.tid, addr)
    }

    /// Ends the current region: end entry, drain, commit (per the policy),
    /// release locks.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub fn region_end(&mut self, ctx: &mut FuncCtx) {
        assert!(self.in_region, "region_end without region_begin");
        if !self.policy().uses_log() {
            self.log_free_region_end(ctx);
            return;
        }
        if self.format().defers_updates() {
            self.deferred_region_end(ctx);
            return;
        }
        let layout = ctx.mem().layout().clone();
        ctx.compute(self.tid, self.policy().sync_cost());
        let lock_aux = self.locks_held.first().map_or(0, |l| l.0 as u64);
        let end_seq = match self.policy().end_entry() {
            Some(etype) => self.log.append(
                ctx,
                EntryPayload {
                    etype,
                    addr: Addr::NULL,
                    value: 0,
                    aux: lock_aux,
                },
            ),
            None => ctx.next_seq(),
        };
        // Persists of this region must not leak past the region end
        // (Figure 5: the region is enclosed in JoinStrand operations), and
        // must complete before the lock release is visible.
        self.emit(ctx, self.cfg.design.drain_fence());
        if self.policy().commit_at_region_end(
            self.region_had_stores,
            self.log.live(),
            self.threshold,
        ) {
            self.log.commit_all(ctx, self.cfg.design);
        }
        self.release_locks(ctx, &layout);
        self.in_region = false;
        if let Some(mut cur) = self.current.take() {
            cur.last_seq = end_seq;
            self.records.push(cur);
        }
    }

    /// Deferring-format region end (the Section VII sketch): end entry,
    /// persist barrier, per-region commit record, persist barrier, deferred
    /// in-place updates, lock releases — all on this region's strand, with
    /// no durability drain. Group commit runs only when the log fills.
    fn deferred_region_end(&mut self, ctx: &mut FuncCtx) {
        let layout = ctx.mem().layout().clone();
        ctx.compute(self.tid, self.policy().sync_cost());
        let lock_aux = self.locks_held.first().map_or(0, |l| l.0 as u64);
        if let Some(etype) = self.policy().end_entry() {
            self.log.append(
                ctx,
                EntryPayload {
                    etype,
                    addr: Addr::NULL,
                    value: 0,
                    aux: lock_aux,
                },
            );
        }
        // All redo entries persist before the commit record...
        self.emit(ctx, self.cfg.design.pairwise_fence());
        let cut = self.log.last_seq();
        self.log.append(
            ctx,
            EntryPayload {
                etype: EntryType::Commit,
                addr: Addr::NULL,
                value: cut,
                aux: 0,
            },
        );
        // ...and the commit record persists before any in-place update.
        self.emit(ctx, self.cfg.design.pairwise_fence());
        // End-of-region chain stamp: with the begin stamp this gives the
        // commit records of a thread the prefix property
        // (commitrec_N ≤p endstamp_N ≤SPA≤ beginstamp_N+1 ≤p commitrec_N+1),
        // so a later durable cut always covers earlier regions' entries.
        {
            let chain = layout.lock_addr(REDO_CHAIN_LOCK_BASE + self.tid as u32);
            let stamp = ctx.next_seq();
            ctx.store(self.tid, chain, stamp);
            ctx.clwb(self.tid, chain);
        }
        for (addr, value) in std::mem::take(&mut self.write_set) {
            ctx.store(self.tid, addr, value);
            ctx.clwb(self.tid, addr);
        }
        self.write_index.clear();
        self.release_locks(ctx, &layout);
        self.in_region = false;
        self.emit(ctx, self.cfg.design.after_update_fence());
        if let Some(mut cur) = self.current.take() {
            cur.last_seq = cut;
            self.records.push(cur);
        }
        if self.log.live() >= self.threshold {
            self.group_commit(ctx);
        }
    }

    /// Log-free region end: nothing to log or commit — stamp and release
    /// the lock words so the SPA ordering protocol is preserved.
    fn log_free_region_end(&mut self, ctx: &mut FuncCtx) {
        let layout = ctx.mem().layout().clone();
        ctx.compute(self.tid, self.policy().sync_cost());
        let end_seq = ctx.next_seq();
        self.release_locks(ctx, &layout);
        self.in_region = false;
        if let Some(mut cur) = self.current.take() {
            cur.last_seq = end_seq;
            self.records.push(cur);
        }
    }

    /// Stamps, flushes, and releases the held locks in reverse acquisition
    /// order (shared tail of every region-end path).
    fn release_locks(&mut self, ctx: &mut FuncCtx, layout: &PmLayout) {
        for &l in self.locks_held.clone().iter().rev() {
            let la = layout.lock_addr(l.0);
            ctx.compute(self.tid, self.policy().sync_cost());
            let stamp = ctx.next_seq();
            ctx.store(self.tid, la, stamp);
            ctx.clwb(self.tid, la);
            ctx.unlock(self.tid, l);
        }
        self.locks_held.clear();
    }

    /// Redo group commit: merge all strands (everything durable), then
    /// truncate the log. The durable cut is published by
    /// [`UndoLog::discard_all`] before any entry disappears.
    fn group_commit(&mut self, ctx: &mut FuncCtx) {
        self.emit(ctx, self.cfg.design.drain_fence());
        self.log.discard_all(ctx, self.cfg.design);
    }

    /// Commits (or discards, for deferring formats) any batched log
    /// entries; a no-op for log-free policies.
    fn flush_log(&mut self, ctx: &mut FuncCtx) {
        if !self.policy().uses_log() {
            return;
        }
        if self.format().defers_updates() {
            self.group_commit(ctx);
        } else {
            self.log.commit_all(ctx, self.cfg.design);
        }
    }

    /// Commits any batched log entries (clean shutdown).
    ///
    /// # Panics
    ///
    /// Panics if a region is still open.
    pub fn shutdown(&mut self, ctx: &mut FuncCtx) {
        assert!(!self.in_region, "shutdown inside a region");
        self.flush_log(ctx);
    }

    /// Thread id this runtime belongs to.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Emits `fence` on this thread if the design defines one.
    fn emit(&self, ctx: &mut FuncCtx, fence: Option<sw_model::isa::FenceKind>) {
        if let Some(f) = fence {
            ctx.fence(self.tid, f);
        }
    }

    /// `true` when the batched log has reached its commit threshold —
    /// drivers of shared data structures should then run a
    /// [`coordinated_commit`] across all threads. Always `false` for
    /// policies that commit eagerly per region or keep no log.
    pub fn needs_commit(&self) -> bool {
        self.policy().needs_commit(self.log.live(), self.threshold)
    }

    /// Commits this thread's log immediately (used by
    /// [`coordinated_commit`]).
    ///
    /// # Panics
    ///
    /// Panics if a region is open.
    pub fn commit_now(&mut self, ctx: &mut FuncCtx) {
        assert!(!self.in_region, "commit inside a region");
        self.flush_log(ctx);
    }
}

/// Lock-word slot reserved for the coordinated-commit token chain.
pub const COMMIT_TOKEN_LOCK: u32 = 4095;
/// First lock-word slot used for per-thread redo commit-chain stamps.
pub const REDO_CHAIN_LOCK_BASE: u32 = 3800;
/// Lock-word slot holding the durable global commit cut.
pub const GLOBAL_CUT_LOCK: u32 = 4094;

/// Commits every thread's batched log under a globally consistent cut.
///
/// The batched SFR/ATLAS models must never leave a *committed* region that
/// conflicts with (or observed) an *uncommitted* earlier one — the
/// decoupled-SFR design the paper builds on prunes logs in global
/// happens-before order for exactly this reason. This function emulates
/// that pruner with a three-phase protocol whose ordering is carried by
/// strong persist atomicity on shared PM words:
///
/// 1. **Quiesce sweep** — every thread drains, then stores to a shared
///    token word. SPA chains the stores, so the final token persisting
///    implies every thread's data and log entries persisted.
/// 2. **Cut publication** — one store writes the coordination's cut
///    sequence number to the durable global-cut word (recovery reads it).
/// 3. **Discard sweep** — a second token chain orders each thread's log
///    invalidation *after* the cut publication, so entries only ever
///    disappear once the cut that covers them is durable.
///
/// A crash anywhere in the protocol leaves either: no visible cut and all
/// entries intact (full rollback of the batch), or a visible cut proving
/// all covered data durable (batch committed) — never a mixture.
///
/// Calling it again with no new appends is a no-op: neither the token
/// chain nor a new cut is published, so back-to-back coordinations (e.g. a
/// degenerate `coordination_threshold`) cannot double-commit.
///
/// # Panics
///
/// Panics if any runtime has an open region.
pub fn coordinated_commit(ctx: &mut FuncCtx, rts: &mut [ThreadRuntime]) {
    assert!(
        rts.iter().all(|rt| !rt.in_region),
        "coordinated commit with an open region"
    );
    if rts.iter().all(|rt| rt.live_log_entries() == 0) {
        return;
    }
    let layout = ctx.mem().layout().clone();
    let token = layout.lock_addr(COMMIT_TOKEN_LOCK);
    let cut_word = layout.lock_addr(GLOBAL_CUT_LOCK);
    let cut = ctx.current_seq();

    // Phase 1: quiesce sweep — data_t ≤p token_t ≤p token_{t+1} ≤p … .
    for rt in rts.iter_mut() {
        let tid = rt.tid();
        if let Some(f) = rt.cfg.design.drain_fence() {
            ctx.fence(tid, f);
        }
        let stamp = ctx.next_seq();
        ctx.store(tid, token, stamp);
        ctx.clwb(tid, token);
        if let Some(f) = rt.cfg.design.drain_fence() {
            ctx.fence(tid, f);
        }
    }

    // Phase 2: publish the cut (last thread in the chain).
    let publisher = rts.last().expect("non-empty").tid();
    let design = rts.last().expect("non-empty").cfg.design;
    ctx.store(publisher, cut_word, cut);
    ctx.clwb(publisher, cut_word);
    if let Some(f) = design.drain_fence() {
        ctx.fence(publisher, f);
    }

    // Phase 3: discard sweep. Each thread re-stores the cut word (strong
    // persist atomicity chains these after the publication) and drains
    // before invalidating, so entries only vanish once the covering cut is
    // durable.
    for rt in rts.iter_mut() {
        let tid = rt.tid();
        let design = rt.cfg.design;
        ctx.store(tid, cut_word, cut);
        ctx.clwb(tid, cut_word);
        if let Some(f) = design.drain_fence() {
            ctx.fence(tid, f);
        }
        rt.log.discard_all(ctx, design);
    }
}
