//! Language-level persistency runtimes: failure-atomic transactions (TXN),
//! synchronization-free regions (SFR), and ATLAS outermost critical
//! sections, lowered onto a hardware design's ISA primitives (Section V).
//!
//! All three share the undo-log instrumentation of Figure 5:
//!
//! ```text
//! region begin:  lock; lock-word store; CLWB; sync fence; begin entry
//! per store:     log entry; CLWB(log); pairwise fence;
//!                in-place store; CLWB(data); after-update fence
//! region end:    end entry; CLWB; drain fence (JoinStrand);
//!                [commit];  lock-word store; CLWB; unlock
//! ```
//!
//! They differ in *when logs commit* (the paper's Section VI-B "sensitivity
//! to language-level persistency model"): TXN commits eagerly at every
//! region end; SFR and ATLAS batch commits, logging happens-before metadata
//! at synchronization points and committing only when the log fills. ATLAS
//! additionally pays heavier-weight bookkeeping per lock operation.
//!
//! Locks live in PM (`PmLayout::lock_addr`): acquire and release write the
//! lock word, so strong persist atomicity orders persists across threads
//! exactly as prescribed at the end of the paper's Section III.

use std::collections::HashSet;

use sw_model::isa::LockId;
use sw_pmem::{Addr, PmLayout};

use crate::ctx::FuncCtx;
use crate::log::{EntryPayload, EntryType, UndoLog};
use sw_model::HwDesign;

/// A language-level persistency model from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LangModel {
    /// Failure-atomic transactions (PMDK-style); eager commit at region end.
    Txn,
    /// Synchronization-free regions; batched commits, light sync logging.
    Sfr,
    /// ATLAS outermost critical sections; batched commits, heavier-weight
    /// happens-before bookkeeping per lock operation.
    Atlas,
}

impl LangModel {
    /// All models, in the paper's presentation order.
    pub const ALL: [LangModel; 3] = [LangModel::Txn, LangModel::Sfr, LangModel::Atlas];

    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            LangModel::Txn => "txn",
            LangModel::Sfr => "sfr",
            LangModel::Atlas => "atlas",
        }
    }

    /// Cycles of bookkeeping work per synchronization operation (modelled
    /// as `Compute`): ATLAS's lock-graph maintenance is the heaviest, SFR's
    /// acquire/release logging lighter, TXN's begin/end lightest.
    fn sync_compute(self) -> u32 {
        match self {
            LangModel::Txn => 8,
            LangModel::Sfr => 14,
            LangModel::Atlas => 42,
        }
    }

    fn begin_entry(self) -> EntryType {
        match self {
            LangModel::Txn => EntryType::TxBegin,
            LangModel::Sfr | LangModel::Atlas => EntryType::Acquire,
        }
    }

    fn end_entry(self) -> EntryType {
        match self {
            LangModel::Txn => EntryType::TxEnd,
            LangModel::Sfr | LangModel::Atlas => EntryType::Release,
        }
    }
}

impl std::fmt::Display for LangModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which write-ahead-logging strategy the runtime uses.
///
/// The paper evaluates undo logging and sketches redo logging as future
/// work (Section VII, "Hardware logging"): *"Under strand persistency,
/// each failure-atomic transaction may be performed on a separate strand.
/// Within each strand, transactions can create redo logs, issue a persist
/// barrier and then perform in-place updates. A group commit operation can
/// merge strands and commit prior transactions."* [`LogStrategy::Redo`]
/// implements exactly that sketch:
///
/// * each region runs on its own strand: chain stamp, sync entries, redo
///   entries (new values), persist barrier, a per-region commit record,
///   persist barrier, then the deferred in-place updates — so an update
///   can never persist before the commit record that covers it;
/// * reads inside a region go through [`ThreadRuntime::load`] for
///   read-own-writes over the deferred write set;
/// * a `JoinStrand` **group commit** periodically merges strands and
///   truncates the log (no per-region drain at all — this is where redo
///   beats undo under strands);
/// * recovery *replays* committed redo entries forward instead of rolling
///   back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogStrategy {
    /// Undo logging (the paper's evaluated design, Figure 5).
    Undo,
    /// Redo logging with strand-based group commit (the Section VII
    /// extension).
    Redo,
}

impl LogStrategy {
    /// Both strategies.
    pub const ALL: [LogStrategy; 2] = [LogStrategy::Undo, LogStrategy::Redo];

    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            LogStrategy::Undo => "undo",
            LogStrategy::Redo => "redo",
        }
    }
}

impl std::fmt::Display for LogStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a [`ThreadRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Hardware design to lower onto.
    pub design: HwDesign,
    /// Language-level persistency model.
    pub lang: LangModel,
    /// Write-ahead-logging strategy.
    pub strategy: LogStrategy,
    /// Live-entry threshold at which batched models commit (`None`: 3/4 of
    /// log capacity). Ignored by TXN, which commits every region.
    pub commit_threshold: Option<u64>,
    /// Record per-region write sets for the crash-consistency checker.
    pub record_regions: bool,
}

impl RuntimeConfig {
    /// A configuration with default thresholds and no region recording.
    pub fn new(design: HwDesign, lang: LangModel) -> Self {
        Self {
            design,
            lang,
            strategy: LogStrategy::Undo,
            commit_threshold: None,
            record_regions: false,
        }
    }

    /// Switches to redo logging (the Section VII extension).
    pub fn redo(mut self) -> Self {
        self.strategy = LogStrategy::Redo;
        self
    }

    /// Enables region recording (used by crash tests).
    pub fn recording(mut self) -> Self {
        self.record_regions = true;
        self
    }
}

/// The write set of one failure-atomic region, as recorded for the
/// crash-consistency checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionRecord {
    /// Thread that executed the region.
    pub tid: usize,
    /// Sequence number of the region's begin entry.
    pub first_seq: u64,
    /// Sequence number of the region's end entry (the terminating entry;
    /// commit cuts fall on these).
    pub last_seq: u64,
    /// `(addr, old, new)` for every PM store in the region, in order.
    pub writes: Vec<(Addr, u64, u64)>,
}

/// Per-thread runtime: an undo log plus the region state machine.
#[derive(Debug)]
pub struct ThreadRuntime {
    tid: usize,
    cfg: RuntimeConfig,
    log: UndoLog,
    threshold: u64,
    locks_held: Vec<LockId>,
    in_region: bool,
    /// Addresses already undo-logged in the current region (first-touch
    /// logging: one entry per location per region; see `store`).
    logged: HashSet<Addr>,
    /// Whether the current region performed any PM store.
    region_had_stores: bool,
    /// Redo strategy: the region's deferred in-place updates, in order
    /// (applied after the commit record at region end).
    write_set: Vec<(Addr, u64)>,
    /// Redo strategy: read-own-writes index over `write_set`.
    write_index: std::collections::HashMap<Addr, u64>,
    current: Option<RegionRecord>,
    records: Vec<RegionRecord>,
}

impl ThreadRuntime {
    /// Creates the runtime for thread `tid` using its log region from
    /// `layout`.
    pub fn new(layout: &PmLayout, tid: usize, cfg: RuntimeConfig) -> Self {
        let log = UndoLog::new(layout.log_region(tid), tid);
        let threshold = cfg
            .commit_threshold
            .unwrap_or(log.capacity() * 3 / 4)
            .min(log.capacity() - 2);
        Self {
            tid,
            cfg,
            log,
            threshold,
            locks_held: Vec::new(),
            in_region: false,
            logged: HashSet::new(),
            region_had_stores: false,
            write_set: Vec::new(),
            write_index: std::collections::HashMap::new(),
            current: None,
            records: Vec::new(),
        }
    }

    /// The configuration this runtime was created with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Recorded region write sets (empty unless `record_regions` is set).
    pub fn records(&self) -> &[RegionRecord] {
        &self.records
    }

    /// Consumes the runtime, returning its recorded regions.
    pub fn into_records(self) -> Vec<RegionRecord> {
        self.records
    }

    /// Live (uncommitted) log entries.
    pub fn live_log_entries(&self) -> u64 {
        self.log.live()
    }

    /// Begins a failure-atomic region, acquiring `locks` in order.
    ///
    /// # Panics
    ///
    /// Panics if a region is already open on this thread.
    pub fn region_begin(&mut self, ctx: &mut FuncCtx, locks: &[LockId]) {
        assert!(
            !self.in_region,
            "regions do not nest (outermost-only semantics)"
        );
        self.in_region = true;
        self.logged.clear();
        self.region_had_stores = false;
        self.write_set.clear();
        self.write_index.clear();
        if self.cfg.strategy == LogStrategy::Redo {
            // SPA chain stamp: strand-orders this region's commit record
            // after the previous region's (prefix property of the cut).
            let layout = ctx.mem().layout().clone();
            let chain = layout.lock_addr(REDO_CHAIN_LOCK_BASE + self.tid as u32);
            let stamp = ctx.next_seq();
            ctx.store(self.tid, chain, stamp);
            ctx.clwb(self.tid, chain);
            self.emit(ctx, self.cfg.design.pairwise_fence());
        }
        self.locks_held = locks.to_vec();
        let layout = ctx.mem().layout().clone();
        let mut first_seq = 0;
        for (i, &l) in locks.iter().enumerate() {
            ctx.lock(self.tid, l);
            let la = layout.lock_addr(l.0);
            // Happens-before predecessor: the last release stamped on the
            // lock word (ATLAS/SFR log it in the acquire entry).
            let hb_pred = ctx.load(self.tid, la);
            ctx.compute(self.tid, self.cfg.lang.sync_compute());
            let seq = self.log.append(
                ctx,
                EntryPayload {
                    etype: self.cfg.lang.begin_entry(),
                    addr: la,
                    value: hb_pred,
                    aux: l.0 as u64,
                },
            );
            if i == 0 {
                first_seq = seq;
            }
            // Stamp and flush the lock word so conflicting persists across
            // threads are ordered by strong persist atomicity, then fence so
            // subsequent region persists are ordered after the stamp
            // (Section III, "Establishing inter-thread persist order").
            // The flush is required: hardware only orders *flushed*
            // persists at a JoinStrand/SFENCE, so an unflushed stamp would
            // leave the formal Eq. 2 edge unenforced. Undo needs the
            // cross-strand JoinStrand edge; redo keeps the whole region on
            // one strand, so a persist barrier suffices (and avoids the
            // drain).
            ctx.store(self.tid, la, seq);
            ctx.clwb(self.tid, la);
            let fence = match self.cfg.strategy {
                LogStrategy::Undo => self.cfg.design.drain_fence(),
                LogStrategy::Redo => self.cfg.design.pairwise_fence(),
            };
            self.emit(ctx, fence);
        }
        if locks.is_empty() {
            // Lock-free region (e.g. a single-threaded transaction): still
            // log the begin entry.
            ctx.compute(self.tid, self.cfg.lang.sync_compute());
            first_seq = self.log.append(
                ctx,
                EntryPayload {
                    etype: self.cfg.lang.begin_entry(),
                    addr: Addr::NULL,
                    value: 0,
                    aux: 0,
                },
            );
            self.emit(ctx, self.cfg.design.pairwise_fence());
        }
        if self.cfg.record_regions {
            self.current = Some(RegionRecord {
                tid: self.tid,
                first_seq,
                last_seq: 0,
                writes: Vec::new(),
            });
        }
    }

    /// Performs a failure-atomic PM store: undo-log the old value, flush the
    /// entry, pairwise fence, in-place update, flush, after-update fence
    /// (Figure 5's `log_store` + update instrumentation).
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub fn store(&mut self, ctx: &mut FuncCtx, addr: Addr, value: u64) {
        assert!(self.in_region, "store outside a failure-atomic region");
        if self.cfg.strategy == LogStrategy::Redo {
            self.redo_store(ctx, addr, value);
            return;
        }
        let old = ctx.load(self.tid, addr);
        // First-touch logging: one undo entry per location per region.
        // Besides halving log traffic on overwrite-heavy regions, this is
        // required for correctness under strand persistency: two same-
        // region entries for one address would sit on separate strands,
        // unordered in PMO, and recovery could roll back with an old value
        // that was never durable. With one entry per location, later
        // updates are ordered behind it by strong persist atomicity.
        self.region_had_stores = true;
        if self.logged.insert(addr) {
            self.log.append(
                ctx,
                EntryPayload {
                    etype: EntryType::Store,
                    addr,
                    value: old,
                    aux: 0,
                },
            );
            self.emit(ctx, self.cfg.design.pairwise_fence());
        }
        ctx.store(self.tid, addr, value);
        ctx.clwb(self.tid, addr);
        self.emit(ctx, self.cfg.design.after_update_fence());
        if let Some(cur) = self.current.as_mut() {
            cur.writes.push((addr, old, value));
        }
    }

    /// Redo-strategy store: append a redo entry with the *new* value and
    /// defer the in-place update to region end (after the commit record).
    /// Entries within the region share the strand with no barrier between
    /// them, so they drain concurrently.
    fn redo_store(&mut self, ctx: &mut FuncCtx, addr: Addr, value: u64) {
        self.region_had_stores = true;
        let old = if self.cfg.record_regions {
            self.write_index
                .get(&addr)
                .copied()
                .unwrap_or_else(|| ctx.load(self.tid, addr))
        } else {
            0
        };
        self.log.append(
            ctx,
            EntryPayload {
                etype: EntryType::RedoStore,
                addr,
                value,
                aux: 0,
            },
        );
        self.write_set.push((addr, value));
        self.write_index.insert(addr, value);
        if let Some(cur) = self.current.as_mut() {
            cur.writes.push((addr, old, value));
        }
    }

    /// Reads a word, honoring the current region's deferred write set under
    /// the redo strategy (read-own-writes). Equivalent to a plain context
    /// load under undo logging. Use this for all reads inside regions so
    /// workloads run unchanged under either strategy.
    pub fn load(&mut self, ctx: &mut FuncCtx, addr: Addr) -> u64 {
        if self.cfg.strategy == LogStrategy::Redo && self.in_region {
            if let Some(&v) = self.write_index.get(&addr) {
                return v;
            }
        }
        ctx.load(self.tid, addr)
    }

    /// Ends the current region: end entry, drain, commit (eager or batched),
    /// release locks.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub fn region_end(&mut self, ctx: &mut FuncCtx) {
        assert!(self.in_region, "region_end without region_begin");
        if self.cfg.strategy == LogStrategy::Redo {
            self.redo_region_end(ctx);
            return;
        }
        let layout = ctx.mem().layout().clone();
        ctx.compute(self.tid, self.cfg.lang.sync_compute());
        let lock_aux = self.locks_held.first().map_or(0, |l| l.0 as u64);
        let end_seq = self.log.append(
            ctx,
            EntryPayload {
                etype: self.cfg.lang.end_entry(),
                addr: Addr::NULL,
                value: 0,
                aux: lock_aux,
            },
        );
        // Persists of this region must not leak past the region end
        // (Figure 5: the region is enclosed in JoinStrand operations), and
        // must complete before the lock release is visible.
        self.emit(ctx, self.cfg.design.drain_fence());
        let commit_now = match self.cfg.lang {
            // Read-only transactions have nothing to make durable; their
            // sync entries are swept up by a later commit (PMDK likewise
            // skips commit machinery for read-only transactions).
            LangModel::Txn => self.region_had_stores,
            LangModel::Sfr | LangModel::Atlas => self.log.live() >= self.threshold,
        };
        if commit_now {
            self.log.commit_all(ctx, self.cfg.design);
        }
        for &l in self.locks_held.clone().iter().rev() {
            let la = layout.lock_addr(l.0);
            ctx.compute(self.tid, self.cfg.lang.sync_compute());
            let stamp = ctx.next_seq();
            ctx.store(self.tid, la, stamp);
            ctx.clwb(self.tid, la);
            ctx.unlock(self.tid, l);
        }
        self.locks_held.clear();
        self.in_region = false;
        if let Some(mut cur) = self.current.take() {
            cur.last_seq = end_seq;
            self.records.push(cur);
        }
    }

    /// Redo region end (the Section VII sketch): end entry, persist
    /// barrier, per-region commit record, persist barrier, deferred
    /// in-place updates, lock releases — all on this region's strand, with
    /// no durability drain. Group commit runs only when the log fills.
    fn redo_region_end(&mut self, ctx: &mut FuncCtx) {
        let layout = ctx.mem().layout().clone();
        ctx.compute(self.tid, self.cfg.lang.sync_compute());
        let lock_aux = self.locks_held.first().map_or(0, |l| l.0 as u64);
        self.log.append(
            ctx,
            EntryPayload {
                etype: self.cfg.lang.end_entry(),
                addr: Addr::NULL,
                value: 0,
                aux: lock_aux,
            },
        );
        // All redo entries persist before the commit record...
        self.emit(ctx, self.cfg.design.pairwise_fence());
        let cut = self.log.last_seq();
        self.log.append(
            ctx,
            EntryPayload {
                etype: EntryType::Commit,
                addr: Addr::NULL,
                value: cut,
                aux: 0,
            },
        );
        // ...and the commit record persists before any in-place update.
        self.emit(ctx, self.cfg.design.pairwise_fence());
        // End-of-region chain stamp: with the begin stamp this gives the
        // commit records of a thread the prefix property
        // (commitrec_N ≤p endstamp_N ≤SPA≤ beginstamp_N+1 ≤p commitrec_N+1),
        // so a later durable cut always covers earlier regions' entries.
        {
            let chain = layout.lock_addr(REDO_CHAIN_LOCK_BASE + self.tid as u32);
            let stamp = ctx.next_seq();
            ctx.store(self.tid, chain, stamp);
            ctx.clwb(self.tid, chain);
        }
        for (addr, value) in std::mem::take(&mut self.write_set) {
            ctx.store(self.tid, addr, value);
            ctx.clwb(self.tid, addr);
        }
        self.write_index.clear();
        for &l in self.locks_held.clone().iter().rev() {
            let la = layout.lock_addr(l.0);
            ctx.compute(self.tid, self.cfg.lang.sync_compute());
            let stamp = ctx.next_seq();
            ctx.store(self.tid, la, stamp);
            ctx.clwb(self.tid, la);
            ctx.unlock(self.tid, l);
        }
        self.locks_held.clear();
        self.in_region = false;
        self.emit(ctx, self.cfg.design.after_update_fence());
        if let Some(mut cur) = self.current.take() {
            cur.last_seq = cut;
            self.records.push(cur);
        }
        if self.log.live() >= self.threshold {
            self.group_commit(ctx);
        }
    }

    /// Redo group commit: merge all strands (everything durable), then
    /// truncate the log. The durable cut is published by
    /// [`UndoLog::discard_all`] before any entry disappears.
    fn group_commit(&mut self, ctx: &mut FuncCtx) {
        self.emit(ctx, self.cfg.design.drain_fence());
        self.log.discard_all(ctx, self.cfg.design);
    }

    /// Commits any batched log entries (clean shutdown).
    ///
    /// # Panics
    ///
    /// Panics if a region is still open.
    pub fn shutdown(&mut self, ctx: &mut FuncCtx) {
        assert!(!self.in_region, "shutdown inside a region");
        match self.cfg.strategy {
            LogStrategy::Undo => self.log.commit_all(ctx, self.cfg.design),
            LogStrategy::Redo => self.group_commit(ctx),
        }
    }

    /// Thread id this runtime belongs to.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Emits `fence` on this thread if the design defines one.
    fn emit(&self, ctx: &mut FuncCtx, fence: Option<sw_model::isa::FenceKind>) {
        if let Some(f) = fence {
            ctx.fence(self.tid, f);
        }
    }

    /// `true` when the batched log has reached its commit threshold —
    /// drivers of shared data structures should then run a
    /// [`coordinated_commit`] across all threads.
    pub fn needs_commit(&self) -> bool {
        self.log.live() >= self.threshold
    }

    /// Commits this thread's log immediately (used by
    /// [`coordinated_commit`]).
    ///
    /// # Panics
    ///
    /// Panics if a region is open.
    pub fn commit_now(&mut self, ctx: &mut FuncCtx) {
        assert!(!self.in_region, "commit inside a region");
        match self.cfg.strategy {
            LogStrategy::Undo => self.log.commit_all(ctx, self.cfg.design),
            LogStrategy::Redo => self.group_commit(ctx),
        }
    }
}

/// Lock-word slot reserved for the coordinated-commit token chain.
pub const COMMIT_TOKEN_LOCK: u32 = 4095;
/// First lock-word slot used for per-thread redo commit-chain stamps.
pub const REDO_CHAIN_LOCK_BASE: u32 = 3800;
/// Lock-word slot holding the durable global commit cut.
pub const GLOBAL_CUT_LOCK: u32 = 4094;

/// Commits every thread's batched log under a globally consistent cut.
///
/// The batched SFR/ATLAS models must never leave a *committed* region that
/// conflicts with (or observed) an *uncommitted* earlier one — the
/// decoupled-SFR design the paper builds on prunes logs in global
/// happens-before order for exactly this reason. This function emulates
/// that pruner with a three-phase protocol whose ordering is carried by
/// strong persist atomicity on shared PM words:
///
/// 1. **Quiesce sweep** — every thread drains, then stores to a shared
///    token word. SPA chains the stores, so the final token persisting
///    implies every thread's data and log entries persisted.
/// 2. **Cut publication** — one store writes the coordination's cut
///    sequence number to the durable global-cut word (recovery reads it).
/// 3. **Discard sweep** — a second token chain orders each thread's log
///    invalidation *after* the cut publication, so entries only ever
///    disappear once the cut that covers them is durable.
///
/// A crash anywhere in the protocol leaves either: no visible cut and all
/// entries intact (full rollback of the batch), or a visible cut proving
/// all covered data durable (batch committed) — never a mixture.
///
/// # Panics
///
/// Panics if any runtime has an open region.
pub fn coordinated_commit(ctx: &mut FuncCtx, rts: &mut [ThreadRuntime]) {
    if rts.iter().all(|rt| rt.live_log_entries() == 0) {
        return;
    }
    let layout = ctx.mem().layout().clone();
    let token = layout.lock_addr(COMMIT_TOKEN_LOCK);
    let cut_word = layout.lock_addr(GLOBAL_CUT_LOCK);
    let cut = ctx.current_seq();

    // Phase 1: quiesce sweep — data_t ≤p token_t ≤p token_{t+1} ≤p … .
    for rt in rts.iter_mut() {
        let tid = rt.tid();
        if let Some(f) = rt.cfg.design.drain_fence() {
            ctx.fence(tid, f);
        }
        let stamp = ctx.next_seq();
        ctx.store(tid, token, stamp);
        ctx.clwb(tid, token);
        if let Some(f) = rt.cfg.design.drain_fence() {
            ctx.fence(tid, f);
        }
    }

    // Phase 2: publish the cut (last thread in the chain).
    let publisher = rts.last().expect("non-empty").tid();
    let design = rts.last().expect("non-empty").cfg.design;
    ctx.store(publisher, cut_word, cut);
    ctx.clwb(publisher, cut_word);
    if let Some(f) = design.drain_fence() {
        ctx.fence(publisher, f);
    }

    // Phase 3: discard sweep. Each thread re-stores the cut word (strong
    // persist atomicity chains these after the publication) and drains
    // before invalidating, so entries only vanish once the covering cut is
    // durable.
    for rt in rts.iter_mut() {
        let tid = rt.tid();
        let design = rt.cfg.design;
        ctx.store(tid, cut_word, cut);
        ctx.clwb(tid, cut_word);
        if let Some(f) = design.drain_fence() {
            ctx.fence(tid, f);
        }
        rt.log.discard_all(ctx, design);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_model::isa::{FenceKind, IsaOp};

    fn setup(design: HwDesign, lang: LangModel) -> (FuncCtx, ThreadRuntime, Addr) {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let ctx = FuncCtx::new(layout.clone(), 1);
        let rt = ThreadRuntime::new(&layout, 0, RuntimeConfig::new(design, lang).recording());
        (ctx, rt, heap)
    }

    #[test]
    fn txn_region_executes_stores() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Txn);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.store(&mut ctx, heap.offset_words(8), 8);
        rt.region_end(&mut ctx);
        assert_eq!(ctx.mem().load(heap), 7);
        assert_eq!(ctx.mem().load(heap.offset_words(8)), 8);
    }

    #[test]
    fn txn_commits_eagerly() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Txn);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        assert_eq!(rt.live_log_entries(), 0);
    }

    #[test]
    fn sfr_batches_commits() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Sfr);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        assert!(
            rt.live_log_entries() > 0,
            "SFR does not commit at region end"
        );
        rt.shutdown(&mut ctx);
        assert_eq!(rt.live_log_entries(), 0);
    }

    #[test]
    fn batched_commit_triggers_at_threshold() {
        let layout = PmLayout::new(1, 32);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut cfg = RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Sfr);
        cfg.commit_threshold = Some(8);
        let mut rt = ThreadRuntime::new(&layout, 0, cfg);
        for i in 0..6 {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            rt.store(&mut ctx, heap.offset_words(i * 8), i);
            rt.region_end(&mut ctx);
        }
        assert!(
            rt.live_log_entries() < 8 + 4,
            "log must have committed at least once"
        );
    }

    #[test]
    fn strandweaver_store_lowering_matches_figure5() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Txn);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        let trace_start = ctx.traces()[0].len();
        rt.store(&mut ctx, heap, 7);
        let trace: Vec<IsaOp> = ctx.traces()[0][trace_start..].to_vec();
        // load(old) .. 6 entry stores .. clwb(entry) .. PB .. store .. clwb .. NS
        let fences: Vec<FenceKind> = trace
            .iter()
            .filter_map(|op| match op {
                IsaOp::Fence(f) => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(
            fences,
            vec![FenceKind::PersistBarrier, FenceKind::NewStrand]
        );
        let clwbs = trace.iter().filter(|op| op.is_clwb()).count();
        assert_eq!(
            clwbs, 2,
            "one flush for the entry line, one for the data line"
        );
        assert!(matches!(
            trace.last(),
            Some(IsaOp::Fence(FenceKind::NewStrand))
        ));
    }

    #[test]
    fn intel_store_lowering_uses_sfences() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::IntelX86, LangModel::Txn);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        let trace_start = ctx.traces()[0].len();
        rt.store(&mut ctx, heap, 7);
        let fences: Vec<FenceKind> = ctx.traces()[0][trace_start..]
            .iter()
            .filter_map(|op| match op {
                IsaOp::Fence(f) => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(fences, vec![FenceKind::Sfence, FenceKind::Sfence]);
    }

    #[test]
    fn non_atomic_emits_no_fences_at_store() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::NonAtomic, LangModel::Txn);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        let trace_start = ctx.traces()[0].len();
        rt.store(&mut ctx, heap, 7);
        let fence_count = ctx.traces()[0][trace_start..]
            .iter()
            .filter(|op| matches!(op, IsaOp::Fence(_)))
            .count();
        assert_eq!(fence_count, 0);
    }

    #[test]
    fn region_records_capture_old_and_new() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Txn);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 9);
        rt.region_end(&mut ctx);
        let recs = rt.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].writes, vec![(heap, 0, 7)]);
        assert_eq!(recs[1].writes, vec![(heap, 7, 9)]);
        assert!(recs[0].first_seq < recs[0].last_seq);
        assert!(recs[0].last_seq < recs[1].first_seq);
    }

    #[test]
    fn lock_words_are_stamped_in_pm() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Atlas);
        let la = ctx.mem().layout().lock_addr(3);
        rt.region_begin(&mut ctx, &[LockId(3)]);
        let acquire_stamp = ctx.mem().load(la);
        assert!(acquire_stamp > 0);
        rt.store(&mut ctx, heap, 1);
        rt.region_end(&mut ctx);
        assert!(ctx.mem().load(la) > acquire_stamp, "release stamps again");
    }

    #[test]
    #[should_panic(expected = "outside a failure-atomic region")]
    fn store_outside_region_panics() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Txn);
        rt.store(&mut ctx, heap, 1);
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_region_panics() {
        let (mut ctx, mut rt, _) = setup(HwDesign::StrandWeaver, LangModel::Txn);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.region_begin(&mut ctx, &[LockId(1)]);
    }
}

#[cfg(test)]
mod redo_tests {
    use super::*;
    use sw_model::isa::{FenceKind, IsaOp};

    fn setup(design: HwDesign) -> (FuncCtx, ThreadRuntime, Addr) {
        let layout = PmLayout::new(1, 256);
        let heap = layout.heap_base();
        let ctx = FuncCtx::new(layout.clone(), 1);
        let rt = ThreadRuntime::new(
            &layout,
            0,
            RuntimeConfig::new(design, LangModel::Txn)
                .redo()
                .recording(),
        );
        (ctx, rt, heap)
    }

    #[test]
    fn redo_region_executes_and_defers_updates() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        // Deferred: not yet visible in memory, but read-own-writes sees it.
        assert_eq!(ctx.mem().load(heap), 0, "in-place update deferred");
        assert_eq!(rt.load(&mut ctx, heap), 7, "read-own-writes");
        rt.region_end(&mut ctx);
        assert_eq!(ctx.mem().load(heap), 7, "applied at region end");
    }

    #[test]
    fn redo_overwrites_in_one_region_apply_in_order() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 1);
        rt.store(&mut ctx, heap, 2);
        assert_eq!(rt.load(&mut ctx, heap), 2);
        rt.region_end(&mut ctx);
        assert_eq!(ctx.mem().load(heap), 2);
    }

    #[test]
    fn redo_emits_no_drain_at_region_end() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        let joins = ctx.traces()[0]
            .iter()
            .filter(|o| matches!(o, IsaOp::Fence(FenceKind::JoinStrand)))
            .count();
        assert_eq!(joins, 0, "redo defers durability to group commit");
    }

    #[test]
    fn redo_commit_record_precedes_updates_in_trace() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        // The in-place store to `heap` must appear after the last persist
        // barrier (which follows the commit record).
        let trace = &ctx.traces()[0];
        let update_pos = trace
            .iter()
            .position(|o| matches!(o, IsaOp::Store(a) if *a == heap))
            .expect("in-place update present");
        let last_pb_before = trace[..update_pos]
            .iter()
            .rposition(|o| matches!(o, IsaOp::Fence(FenceKind::PersistBarrier)))
            .expect("a persist barrier precedes the update");
        assert!(last_pb_before < update_pos);
    }

    #[test]
    fn redo_recovery_replays_committed_but_unapplied_region() {
        let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
        let base = crate::harness::baseline(&mut ctx);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        // Craft the adversarial crash: everything persisted EXCEPT the
        // in-place update. Find the update via the execution and verify the
        // formal model + recovery handle it: sample many crashes and check
        // that whenever recovery reports a replay, the value is correct.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        use rand::SeedableRng;
        let mut saw_replay = false;
        for _ in 0..200 {
            let outcome =
                crate::harness::crash_and_recover(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
            let v = outcome.image.load(heap);
            assert!(
                v == 0 || v == 7,
                "redo recovery must be all-or-nothing, got {v}"
            );
            if outcome.report.replayed_redo > 0 {
                assert_eq!(v, 7, "committed region must be fully applied after replay");
                saw_replay = true;
            }
        }
        assert!(
            saw_replay,
            "sampling should hit committed-but-unapplied states"
        );
    }

    #[test]
    fn redo_group_commit_truncates_log_and_stays_recoverable() {
        let layout = PmLayout::new(1, 64);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), 1);
        let mut cfg = RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn).redo();
        cfg.commit_threshold = Some(10);
        let mut rt = ThreadRuntime::new(&layout, 0, cfg);
        for k in 0..8u64 {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            rt.store(&mut ctx, heap.offset_words(k * 8), k + 1);
            rt.region_end(&mut ctx);
        }
        assert!(
            rt.live_log_entries() < 10 + 6,
            "group commit must have truncated"
        );
        // Clean shutdown and recovery: all values durable.
        rt.shutdown(&mut ctx);
        ctx.mem_mut().persist_all();
        let mut img = ctx.mem().persisted_image().clone();
        let report = crate::recovery::recover(&mut img, &layout);
        let _ = report;
        for k in 0..8u64 {
            assert_eq!(img.load(heap.offset_words(k * 8)), k + 1);
        }
    }

    #[test]
    fn redo_crashes_are_always_consistent_across_threads() {
        use rand::SeedableRng;
        let threads = 2;
        let layout = PmLayout::new(threads, 128);
        let heap = layout.heap_base();
        let mut ctx = FuncCtx::new(layout.clone(), threads);
        let base = crate::harness::baseline(&mut ctx);
        let mut rts: Vec<ThreadRuntime> = (0..threads)
            .map(|t| {
                ThreadRuntime::new(
                    &layout,
                    t,
                    RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn)
                        .redo()
                        .recording(),
                )
            })
            .collect();
        for round in 0..5usize {
            for (t, rt) in rts.iter_mut().enumerate() {
                rt.region_begin(&mut ctx, &[LockId(0)]);
                let v = (round * threads + t + 1) as u64;
                rt.store(&mut ctx, heap, v);
                rt.store(&mut ctx, heap.offset_words(8), v);
                rt.region_end(&mut ctx);
            }
        }
        let regions: Vec<RegionRecord> = rts
            .into_iter()
            .flat_map(ThreadRuntime::into_records)
            .collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
        for _ in 0..120 {
            let outcome =
                crate::harness::crash_and_recover(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
            crate::harness::check_replay_consistency(&outcome, &base, &regions).unwrap();
            assert_eq!(
                outcome.image.load(heap),
                outcome.image.load(heap.offset_words(8)),
                "canary pair must never tear under redo"
            );
        }
    }
}
