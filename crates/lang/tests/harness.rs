//! Crash-injection harness end-to-end: canary workloads per model and
//! design, checked against each model's consistency contract.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sw_lang::harness::{
    baseline, check_prefix_consistency, check_replay_consistency, crash_and_recover, crash_image,
    crash_rounds,
};
use sw_lang::{
    coordinated_commit, FuncCtx, HwDesign, LangModel, RegionRecord, RuntimeConfig, ThreadRuntime,
};
use sw_model::isa::LockId;
use sw_pmem::{Addr, PmImage, PmLayout};

/// Runs `regions_per_thread` regions on each of `threads` threads, each
/// region writing a canary pair (x, y) with x == y.
///
/// With `shared_data` every thread updates the *same* pair (exercising
/// cross-thread strong persist atomicity); without it each thread owns
/// its pair. Eagerly-committing TXN guarantees globally consistent
/// commit cuts (a committed region's lock predecessors are committed),
/// so it is checked with shared data. The batched SFR/ATLAS runtimes
/// guarantee per-thread cuts only — cross-thread cut consistency needs
/// the decoupled-SFR log pruner the paper inherits from prior work — so
/// they are checked with per-thread data (see DESIGN.md).
fn canary_workload(
    design: HwDesign,
    lang: LangModel,
    threads: usize,
    regions_per_thread: usize,
    shared_data: bool,
) -> (FuncCtx, PmImage, Vec<RegionRecord>) {
    let layout = PmLayout::new(threads, 128);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), threads);
    ctx.set_record_program(false);
    // Setup phase: nothing to initialize beyond zeroed memory.
    let base = baseline(&mut ctx);
    ctx.set_record_program(true);
    let mut rts: Vec<ThreadRuntime> = (0..threads)
        .map(|t| ThreadRuntime::new(&layout, t, RuntimeConfig::new(design, lang).recording()))
        .collect();
    for round in 0..regions_per_thread {
        for (t, rt) in rts.iter_mut().enumerate() {
            // All threads share lock 0.
            rt.region_begin(&mut ctx, &[LockId(0)]);
            let pair = if shared_data {
                heap
            } else {
                heap.offset_words(16 * t as u64)
            };
            let v = (round * threads + t + 1) as u64;
            rt.store(&mut ctx, pair, v);
            rt.store(&mut ctx, pair.offset_words(8), v);
            rt.region_end(&mut ctx);
        }
    }
    let regions: Vec<RegionRecord> = rts
        .into_iter()
        .flat_map(ThreadRuntime::into_records)
        .collect();
    (ctx, base, regions)
}

#[test]
fn strandweaver_crashes_are_always_consistent() {
    let (ctx, base, regions) = canary_workload(HwDesign::StrandWeaver, LangModel::Txn, 2, 4, true);
    let mut rng = SmallRng::seed_from_u64(7);
    assert_eq!(
        crash_rounds(&ctx, &base, &regions, HwDesign::StrandWeaver, 60, &mut rng),
        0
    );
}

#[test]
fn intel_and_hops_crashes_are_always_consistent() {
    for design in [HwDesign::IntelX86, HwDesign::Hops] {
        let (ctx, base, regions) = canary_workload(design, LangModel::Txn, 2, 4, true);
        let mut rng = SmallRng::seed_from_u64(11);
        assert_eq!(
            crash_rounds(&ctx, &base, &regions, design, 60, &mut rng),
            0,
            "{design}"
        );
    }
}

#[test]
fn batched_models_are_consistent_on_thread_local_data() {
    for lang in [LangModel::Sfr, LangModel::Atlas] {
        let (ctx, base, regions) = canary_workload(HwDesign::StrandWeaver, lang, 2, 4, false);
        let mut rng = SmallRng::seed_from_u64(17);
        assert_eq!(
            crash_rounds(&ctx, &base, &regions, HwDesign::StrandWeaver, 60, &mut rng),
            0,
            "{lang}"
        );
    }
}

#[test]
fn coordinated_commits_make_batched_shared_data_consistent() {
    // Shared canary pair + batched SFR commits, but committed through
    // the coordinated (hb-safe) protocol: every sampled crash must be
    // consistent.
    let threads = 2;
    let layout = PmLayout::new(threads, 128);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), threads);
    let base = baseline(&mut ctx);
    let mut rts: Vec<ThreadRuntime> = (0..threads)
        .map(|t| {
            let mut cfg = RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Sfr).recording();
            cfg.commit_threshold = Some(100); // self-commit disabled
            ThreadRuntime::new(&layout, t, cfg)
        })
        .collect();
    for round in 0..5usize {
        for (t, rt) in rts.iter_mut().enumerate() {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            let v = (round * threads + t + 1) as u64;
            rt.store(&mut ctx, heap, v);
            rt.store(&mut ctx, heap.offset_words(8), v);
            rt.region_end(&mut ctx);
        }
        if round % 2 == 1 {
            coordinated_commit(&mut ctx, &mut rts);
        }
    }
    let regions: Vec<RegionRecord> = rts
        .into_iter()
        .flat_map(ThreadRuntime::into_records)
        .collect();
    let mut rng = SmallRng::seed_from_u64(23);
    assert_eq!(
        crash_rounds(&ctx, &base, &regions, HwDesign::StrandWeaver, 120, &mut rng),
        0,
        "coordinated commits keep per-thread cuts globally consistent"
    );
}

#[test]
fn non_atomic_eventually_violates_consistency() {
    // The paper's NON-ATOMIC design removes the log→update ordering and
    // "does not assure correct failure recovery" — the harness must be
    // able to observe that.
    let (ctx, base, regions) = canary_workload(HwDesign::NonAtomic, LangModel::Txn, 2, 6, true);
    let mut rng = SmallRng::seed_from_u64(13);
    let failures = crash_rounds(&ctx, &base, &regions, HwDesign::NonAtomic, 300, &mut rng);
    assert!(
        failures > 0,
        "non-atomic should break atomicity under crash sampling"
    );
}

#[test]
fn canary_pairs_match_after_recovery() {
    let (ctx, base, regions) = canary_workload(HwDesign::StrandWeaver, LangModel::Sfr, 2, 4, false);
    let heap = ctx.mem().layout().heap_base();
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..40 {
        let outcome = crash_and_recover(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
        check_replay_consistency(&outcome, &base, &regions).unwrap();
        for t in 0..2u64 {
            let pair = heap.offset_words(16 * t);
            assert_eq!(
                outcome.image.load(pair),
                outcome.image.load(pair.offset_words(8)),
                "canary pair must never tear"
            );
        }
    }
}

#[test]
fn native_on_eadr_satisfies_prefix_consistency() {
    // Log-free regions on persist-at-visibility hardware: every sampled
    // crash state must be the baseline plus a prefix of the store order
    // (shared data — strict persistency chains the global order).
    let (ctx, base, regions) = canary_workload(HwDesign::Eadr, LangModel::Native, 2, 4, true);
    let mut rng = SmallRng::seed_from_u64(29);
    for _ in 0..120 {
        let outcome = crash_and_recover(&ctx, &base, HwDesign::Eadr, &mut rng);
        assert!(
            outcome.report.was_clean(),
            "log-free recovery has nothing to repair"
        );
        check_prefix_consistency(&outcome, &base, &regions).unwrap();
    }
}

#[test]
fn logged_models_on_eadr_stay_replay_consistent() {
    // The logged models remain legal (and failure-atomic) on eADR; the
    // log is pure overhead there, which is exactly what Native measures.
    let (ctx, base, regions) = canary_workload(HwDesign::Eadr, LangModel::Txn, 2, 4, true);
    let mut rng = SmallRng::seed_from_u64(37);
    assert_eq!(
        crash_rounds(&ctx, &base, &regions, HwDesign::Eadr, 60, &mut rng),
        0
    );
}

#[test]
fn prefix_check_rejects_non_prefix_images() {
    // Fabricate an outcome whose image applies the *second* write of a
    // region but not the first: no prefix of the store order matches.
    let (ctx, base, regions) = canary_workload(HwDesign::Eadr, LangModel::Native, 1, 1, true);
    let heap = ctx.mem().layout().heap_base();
    let mut rng = SmallRng::seed_from_u64(41);
    let mut outcome = crash_and_recover(&ctx, &base, HwDesign::Eadr, &mut rng);
    outcome.image.store(heap, 0); // undo write 1
    outcome.image.store(heap.offset_words(8), 1); // keep write 2
    assert!(check_prefix_consistency(&outcome, &base, &regions).is_err());
}

#[test]
fn crash_image_layers_over_baseline() {
    let layout = PmLayout::new(1, 64);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), 1);
    ctx.set_record_program(false);
    ctx.store(0, heap.offset_words(100), 55); // setup data
    let base = baseline(&mut ctx);
    ctx.set_record_program(true);
    let mut rng = SmallRng::seed_from_u64(1);
    let (img, persisted) = crash_image(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
    assert_eq!(persisted, 0, "no phase stores were executed");
    assert_eq!(img.load(heap.offset_words(100)), 55, "baseline survives");
    assert_eq!(img.load(Addr(0x1000_0000)), 0);
}
