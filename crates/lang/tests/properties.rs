//! Property-based crash-consistency tests: arbitrary region workloads must
//! recover consistently under every recoverable design and language model.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sw_lang::harness::{baseline, check_replay_consistency, crash_and_recover};
use sw_lang::{
    FuncCtx, HwDesign, LangModel, LogStrategy, RegionRecord, RuntimeConfig, ThreadRuntime,
};
use sw_model::isa::LockId;
use sw_pmem::PmLayout;

/// One region: which thread runs it and which (word, value) writes it does.
type RegionPlan = (usize, Vec<(u64, u64)>);

fn arb_regions() -> impl Strategy<Value = Vec<RegionPlan>> {
    prop::collection::vec(
        (0usize..2, prop::collection::vec((0u64..8, 1u64..100), 1..5)),
        1..10,
    )
}

fn run_plan(
    plan: &[RegionPlan],
    design: HwDesign,
    lang: LangModel,
) -> (FuncCtx, sw_pmem::PmImage, Vec<RegionRecord>) {
    run_plan_with(plan, design, lang, LogStrategy::Undo)
}

fn run_plan_with(
    plan: &[RegionPlan],
    design: HwDesign,
    lang: LangModel,
    strategy: LogStrategy,
) -> (FuncCtx, sw_pmem::PmImage, Vec<RegionRecord>) {
    let layout = PmLayout::new(2, 256);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), 2);
    ctx.set_record_program(false);
    let base = baseline(&mut ctx);
    ctx.set_record_program(true);
    let mut rts: Vec<ThreadRuntime> = (0..2)
        .map(|t| {
            let mut cfg = RuntimeConfig::new(design, lang).recording();
            cfg.strategy = strategy;
            ThreadRuntime::new(&layout, t, cfg)
        })
        .collect();
    for (tid, writes) in plan {
        let rt = &mut rts[*tid];
        rt.region_begin(&mut ctx, &[LockId(0)]);
        for (w, v) in writes {
            // All threads share the same 8 words: cross-thread conflicts
            // exercise SPA ordering and the commit-cut chain.
            rt.store(&mut ctx, heap.offset_words(w * 8), *v);
        }
        rt.region_end(&mut ctx);
    }
    if lang.batches_commits() && strategy == LogStrategy::Undo {
        sw_lang::coordinated_commit(&mut ctx, &mut rts);
    }
    let records = rts
        .into_iter()
        .flat_map(ThreadRuntime::into_records)
        .collect();
    (ctx, base, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary conflicting TXN workloads recover consistently under
    /// every ordered design.
    #[test]
    fn txn_crashes_recover_consistently(plan in arb_regions(), seed in 0u64..10_000) {
        for design in [HwDesign::StrandWeaver, HwDesign::NoPersistQueue,
                       HwDesign::IntelX86, HwDesign::Hops] {
            let (ctx, base, records) = run_plan(&plan, design, LangModel::Txn);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..8 {
                let outcome = crash_and_recover(&ctx, &base, design, &mut rng);
                let r = check_replay_consistency(&outcome, &base, &records);
                prop_assert!(r.is_ok(), "{design:?}: {:?}", r);
            }
        }
    }

    /// Batched models with coordinated commits recover consistently even
    /// with cross-thread conflicts.
    #[test]
    fn batched_crashes_recover_consistently(plan in arb_regions(), seed in 0u64..10_000) {
        for lang in [LangModel::Sfr, LangModel::Atlas] {
            let (ctx, base, records) = run_plan(&plan, HwDesign::StrandWeaver, lang);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..8 {
                let outcome = crash_and_recover(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
                let r = check_replay_consistency(&outcome, &base, &records);
                prop_assert!(r.is_ok(), "{lang:?}: {:?}", r);
            }
        }
    }

    /// Arbitrary conflicting redo workloads recover consistently.
    #[test]
    fn redo_crashes_recover_consistently(plan in arb_regions(), seed in 0u64..10_000) {
        for design in [HwDesign::StrandWeaver, HwDesign::IntelX86] {
            let (ctx, base, records) =
                run_plan_with(&plan, design, LangModel::Txn, LogStrategy::Redo);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..8 {
                let outcome = crash_and_recover(&ctx, &base, design, &mut rng);
                let r = check_replay_consistency(&outcome, &base, &records);
                prop_assert!(r.is_ok(), "{design:?} redo: {:?}", r);
            }
        }
    }

    /// Recovery is idempotent on arbitrary sampled crash states, for every
    /// (language model × log strategy) pair: running `recover` twice on the
    /// same crash image yields the same image as running it once. The
    /// log-free Native model runs on eADR (its only legal class), where an
    /// idempotent recovery is trivially a no-op pass over an empty log.
    #[test]
    fn recovery_is_idempotent(plan in arb_regions(), seed in 0u64..10_000) {
        for lang in LangModel::ALL {
            for strategy in LogStrategy::ALL {
                let design = if lang.legal_on(HwDesign::StrandWeaver) {
                    HwDesign::StrandWeaver
                } else {
                    HwDesign::Eadr
                };
                let (ctx, base, _records) = run_plan_with(&plan, design, lang, strategy);
                let mut rng = SmallRng::seed_from_u64(seed);
                let (mut img, _) = sw_lang::harness::crash_image(&ctx, &base, design, &mut rng);
                let layout = ctx.mem().layout().clone();
                sw_lang::recovery::recover(&mut img, &layout);
                let snapshot = img.clone();
                sw_lang::recovery::recover(&mut img, &layout);
                prop_assert_eq!(&img, &snapshot, "{}/{} not idempotent", lang, strategy);
            }
        }
    }

    /// On naturally sampled (uninjected) crash images, `Strict`-policy
    /// recovery is bit-identical to the legacy pass for every language
    /// model × log strategy: same recovered image, same report, no fatal
    /// faults, nothing salvaged. Natural crash states can contain torn
    /// slots, but never checksum-valid garbage or poison, so `Strict`
    /// must never refuse one.
    #[test]
    fn strict_policy_matches_legacy_on_natural_images(plan in arb_regions(), seed in 0u64..10_000) {
        for lang in LangModel::ALL {
            for strategy in LogStrategy::ALL {
                let design = if lang.legal_on(HwDesign::StrandWeaver) {
                    HwDesign::StrandWeaver
                } else {
                    HwDesign::Eadr
                };
                let (ctx, base, _records) = run_plan_with(&plan, design, lang, strategy);
                let mut rng = SmallRng::seed_from_u64(seed);
                let (img, _) = sw_lang::harness::crash_image(&ctx, &base, design, &mut rng);
                let layout = ctx.mem().layout().clone();
                let mut legacy = img.clone();
                let legacy_report = sw_lang::recovery::recover(&mut legacy, &layout);
                let mut strict = img.clone();
                let outcome = sw_lang::recovery::recover_with_policy(
                    &mut strict,
                    &layout,
                    sw_lang::RecoveryPolicy::Strict,
                );
                prop_assert!(outcome.is_ok(), "{}/{}: {:?}", lang, strategy, outcome);
                let outcome = outcome.unwrap();
                prop_assert_eq!(&strict, &legacy, "{}/{} image diverged", lang, strategy);
                prop_assert_eq!(&outcome.report, &legacy_report);
                prop_assert!(outcome.salvaged_threads.is_empty());
                prop_assert!(outcome.faults.iter().all(|f| !f.is_fatal()));
            }
        }
    }
}
