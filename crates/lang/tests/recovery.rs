//! Recovery behavior across models: rollback of uncommitted regions,
//! commit-cut tracking, idempotence, and phase tracing.

use sw_lang::recovery::{recover, recover_traced};
use sw_lang::{FuncCtx, HwDesign, LangModel, RuntimeConfig, ThreadRuntime};
use sw_model::isa::LockId;
use sw_pmem::PmLayout;
use sw_trace::TraceEvent;

fn run_one_region(design: HwDesign, lang: LangModel, commit: bool) -> (FuncCtx, PmLayout) {
    let layout = PmLayout::new(1, 256);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), 1);
    let mut rt = ThreadRuntime::new(&layout, 0, RuntimeConfig::new(design, lang));
    rt.region_begin(&mut ctx, &[LockId(0)]);
    rt.store(&mut ctx, heap, 7);
    rt.store(&mut ctx, heap.offset_words(8), 8);
    rt.region_end(&mut ctx);
    if commit {
        rt.shutdown(&mut ctx);
    }
    (ctx, layout)
}

#[test]
fn rollback_of_uncommitted_region() {
    // SFR leaves the region uncommitted; persist everything, crash,
    // recover: the region must be undone (entries valid, no commit).
    let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Sfr, false);
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    let report = recover(&mut img, &layout);
    assert_eq!(report.rolled_back_stores, 2);
    assert_eq!(
        img.load(layout.heap_base()),
        0,
        "update rolled back to old value"
    );
    assert_eq!(img.load(layout.heap_base().offset_words(8)), 0);
}

#[test]
fn committed_region_is_not_rolled_back() {
    let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Txn, false);
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    let report = recover(&mut img, &layout);
    assert!(report.was_clean());
    assert_eq!(img.load(layout.heap_base()), 7);
    assert_eq!(img.load(layout.heap_base().offset_words(8)), 8);
}

#[test]
fn nothing_persisted_recovers_to_initial_state() {
    let (ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Txn, false);
    let mut img = ctx.mem().persisted_image().clone(); // nothing persisted
    let report = recover(&mut img, &layout);
    assert!(report.was_clean());
    assert_eq!(img.load(layout.heap_base()), 0);
}

#[test]
fn reverse_order_rollback_unwinds_overwrites() {
    // Two uncommitted regions writing the same word: rollback must land
    // on the value before the first region.
    let layout = PmLayout::new(1, 256);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), 1);
    let mut rt = ThreadRuntime::new(
        &layout,
        0,
        RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Sfr),
    );
    for v in [5, 9] {
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, v);
        rt.region_end(&mut ctx);
    }
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    let report = recover(&mut img, &layout);
    assert_eq!(report.rolled_back_stores, 2);
    assert_eq!(img.load(heap), 0);
}

#[test]
fn report_tracks_commit_cuts() {
    let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Txn, false);
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    let report = recover(&mut img, &layout);
    assert!(report.per_thread_cut[0] > 0);
}

#[test]
fn native_runs_recover_clean() {
    // Log-free: the log region stays empty, so recovery finds nothing to
    // do regardless of where the crash landed.
    let (mut ctx, layout) = run_one_region(HwDesign::Eadr, LangModel::Native, false);
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    let report = recover(&mut img, &layout);
    assert!(report.was_clean());
    assert_eq!(report.discarded_committed, 0);
    assert_eq!(report.sync_entries, 0);
    assert_eq!(img.load(layout.heap_base()), 7, "updates stay in place");
}

#[test]
fn traced_recovery_emits_phase_events() {
    let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Sfr, false);
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    let mut rec = sw_trace::RingRecorder::new(64);
    let report = recover_traced(&mut img, &layout, &mut rec);
    assert_eq!(report.rolled_back_stores, 2);
    let events = rec.events();
    let begins = events
        .iter()
        .filter(|e| e.event.kind() == "recovery_begin")
        .count();
    let ends = events
        .iter()
        .filter(|e| e.event.kind() == "recovery_end")
        .count();
    assert_eq!(begins, 3, "scan, redo, undo each open a phase");
    assert_eq!(ends, 3, "every phase closes");
    assert!(
        events.iter().any(|e| matches!(
            e.event,
            TraceEvent::RecoveryEnd {
                phase: "undo",
                items: 2
            }
        )),
        "undo phase reports the two rolled-back stores"
    );
}

#[test]
fn recovery_is_idempotent() {
    let (mut ctx, layout) = run_one_region(HwDesign::StrandWeaver, LangModel::Sfr, false);
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    recover(&mut img, &layout);
    let snapshot = img.clone();
    recover(&mut img, &layout);
    assert_eq!(img, snapshot);
}
