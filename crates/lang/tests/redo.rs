//! The redo-logging extension (paper Section VII sketch): deferred
//! updates, read-own-writes, group commit, and replay-based recovery.

use rand::SeedableRng;
use sw_lang::{FuncCtx, HwDesign, LangModel, RegionRecord, RuntimeConfig, ThreadRuntime};
use sw_model::isa::{FenceKind, IsaOp, LockId};
use sw_pmem::{Addr, PmLayout};

fn setup(design: HwDesign) -> (FuncCtx, ThreadRuntime, Addr) {
    let layout = PmLayout::new(1, 256);
    let heap = layout.heap_base();
    let ctx = FuncCtx::new(layout.clone(), 1);
    let rt = ThreadRuntime::new(
        &layout,
        0,
        RuntimeConfig::new(design, LangModel::Txn)
            .redo()
            .recording(),
    );
    (ctx, rt, heap)
}

#[test]
fn redo_region_executes_and_defers_updates() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    rt.store(&mut ctx, heap, 7);
    // Deferred: not yet visible in memory, but read-own-writes sees it.
    assert_eq!(ctx.mem().load(heap), 0, "in-place update deferred");
    assert_eq!(rt.load(&mut ctx, heap), 7, "read-own-writes");
    rt.region_end(&mut ctx);
    assert_eq!(ctx.mem().load(heap), 7, "applied at region end");
}

#[test]
fn redo_overwrites_in_one_region_apply_in_order() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    rt.store(&mut ctx, heap, 1);
    rt.store(&mut ctx, heap, 2);
    assert_eq!(rt.load(&mut ctx, heap), 2);
    rt.region_end(&mut ctx);
    assert_eq!(ctx.mem().load(heap), 2);
}

#[test]
fn redo_emits_no_drain_at_region_end() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    rt.store(&mut ctx, heap, 7);
    rt.region_end(&mut ctx);
    let joins = ctx.traces()[0]
        .iter()
        .filter(|o| matches!(o, IsaOp::Fence(FenceKind::JoinStrand)))
        .count();
    assert_eq!(joins, 0, "redo defers durability to group commit");
}

#[test]
fn redo_commit_record_precedes_updates_in_trace() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    rt.store(&mut ctx, heap, 7);
    rt.region_end(&mut ctx);
    // The in-place store to `heap` must appear after the last persist
    // barrier (which follows the commit record).
    let trace = &ctx.traces()[0];
    let update_pos = trace
        .iter()
        .position(|o| matches!(o, IsaOp::Store(a) if *a == heap))
        .expect("in-place update present");
    let last_pb_before = trace[..update_pos]
        .iter()
        .rposition(|o| matches!(o, IsaOp::Fence(FenceKind::PersistBarrier)))
        .expect("a persist barrier precedes the update");
    assert!(last_pb_before < update_pos);
}

#[test]
fn redo_recovery_replays_committed_but_unapplied_region() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver);
    let base = sw_lang::harness::baseline(&mut ctx);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    rt.store(&mut ctx, heap, 7);
    rt.region_end(&mut ctx);
    // Craft the adversarial crash: everything persisted EXCEPT the
    // in-place update. Find the update via the execution and verify the
    // formal model + recovery handle it: sample many crashes and check
    // that whenever recovery reports a replay, the value is correct.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let mut saw_replay = false;
    for _ in 0..200 {
        let outcome =
            sw_lang::harness::crash_and_recover(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
        let v = outcome.image.load(heap);
        assert!(
            v == 0 || v == 7,
            "redo recovery must be all-or-nothing, got {v}"
        );
        if outcome.report.replayed_redo > 0 {
            assert_eq!(v, 7, "committed region must be fully applied after replay");
            saw_replay = true;
        }
    }
    assert!(
        saw_replay,
        "sampling should hit committed-but-unapplied states"
    );
}

#[test]
fn redo_group_commit_truncates_log_and_stays_recoverable() {
    let layout = PmLayout::new(1, 64);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), 1);
    let mut cfg = RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn).redo();
    cfg.commit_threshold = Some(10);
    let mut rt = ThreadRuntime::new(&layout, 0, cfg);
    for k in 0..8u64 {
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap.offset_words(k * 8), k + 1);
        rt.region_end(&mut ctx);
    }
    assert!(
        rt.live_log_entries() < 10 + 6,
        "group commit must have truncated"
    );
    // Clean shutdown and recovery: all values durable.
    rt.shutdown(&mut ctx);
    ctx.mem_mut().persist_all();
    let mut img = ctx.mem().persisted_image().clone();
    let report = sw_lang::recovery::recover(&mut img, &layout);
    let _ = report;
    for k in 0..8u64 {
        assert_eq!(img.load(heap.offset_words(k * 8)), k + 1);
    }
}

#[test]
fn redo_crashes_are_always_consistent_across_threads() {
    let threads = 2;
    let layout = PmLayout::new(threads, 128);
    let heap = layout.heap_base();
    let mut ctx = FuncCtx::new(layout.clone(), threads);
    let base = sw_lang::harness::baseline(&mut ctx);
    let mut rts: Vec<ThreadRuntime> = (0..threads)
        .map(|t| {
            ThreadRuntime::new(
                &layout,
                t,
                RuntimeConfig::new(HwDesign::StrandWeaver, LangModel::Txn)
                    .redo()
                    .recording(),
            )
        })
        .collect();
    for round in 0..5usize {
        for (t, rt) in rts.iter_mut().enumerate() {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            let v = (round * threads + t + 1) as u64;
            rt.store(&mut ctx, heap, v);
            rt.store(&mut ctx, heap.offset_words(8), v);
            rt.region_end(&mut ctx);
        }
    }
    let regions: Vec<RegionRecord> = rts
        .into_iter()
        .flat_map(ThreadRuntime::into_records)
        .collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
    for _ in 0..120 {
        let outcome =
            sw_lang::harness::crash_and_recover(&ctx, &base, HwDesign::StrandWeaver, &mut rng);
        sw_lang::harness::check_replay_consistency(&outcome, &base, &regions).unwrap();
        assert_eq!(
            outcome.image.load(heap),
            outcome.image.load(heap.offset_words(8)),
            "canary pair must never tear under redo"
        );
    }
}
