//! Model-agnostic runtime behavior: Figure 5 lowering per design, region
//! recording, and lifecycle assertions.

use sw_lang::{FuncCtx, HwDesign, LangModel, RuntimeConfig, ThreadRuntime};
use sw_model::isa::{FenceKind, IsaOp, LockId};
use sw_pmem::{Addr, PmLayout};

fn setup(design: HwDesign, lang: LangModel) -> (FuncCtx, ThreadRuntime, Addr) {
    let layout = PmLayout::new(1, 256);
    let heap = layout.heap_base();
    let ctx = FuncCtx::new(layout.clone(), 1);
    let rt = ThreadRuntime::new(&layout, 0, RuntimeConfig::new(design, lang).recording());
    (ctx, rt, heap)
}

#[test]
fn strandweaver_store_lowering_matches_figure5() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Txn);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    let trace_start = ctx.traces()[0].len();
    rt.store(&mut ctx, heap, 7);
    let trace: Vec<IsaOp> = ctx.traces()[0][trace_start..].to_vec();
    // load(old) .. 6 entry stores .. clwb(entry) .. PB .. store .. clwb .. NS
    let fences: Vec<FenceKind> = trace
        .iter()
        .filter_map(|op| match op {
            IsaOp::Fence(f) => Some(*f),
            _ => None,
        })
        .collect();
    assert_eq!(
        fences,
        vec![FenceKind::PersistBarrier, FenceKind::NewStrand]
    );
    let clwbs = trace.iter().filter(|op| op.is_clwb()).count();
    assert_eq!(
        clwbs, 2,
        "one flush for the entry line, one for the data line"
    );
    assert!(matches!(
        trace.last(),
        Some(IsaOp::Fence(FenceKind::NewStrand))
    ));
}

#[test]
fn intel_store_lowering_uses_sfences() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::IntelX86, LangModel::Txn);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    let trace_start = ctx.traces()[0].len();
    rt.store(&mut ctx, heap, 7);
    let fences: Vec<FenceKind> = ctx.traces()[0][trace_start..]
        .iter()
        .filter_map(|op| match op {
            IsaOp::Fence(f) => Some(*f),
            _ => None,
        })
        .collect();
    assert_eq!(fences, vec![FenceKind::Sfence, FenceKind::Sfence]);
}

#[test]
fn non_atomic_emits_no_fences_at_store() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::NonAtomic, LangModel::Txn);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    let trace_start = ctx.traces()[0].len();
    rt.store(&mut ctx, heap, 7);
    let fence_count = ctx.traces()[0][trace_start..]
        .iter()
        .filter(|op| matches!(op, IsaOp::Fence(_)))
        .count();
    assert_eq!(fence_count, 0);
}

#[test]
fn native_lowering_is_a_bare_store() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::Eadr, LangModel::Native);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    let trace_start = ctx.traces()[0].len();
    rt.store(&mut ctx, heap, 7);
    let trace: Vec<IsaOp> = ctx.traces()[0][trace_start..].to_vec();
    // Recording mode adds the old-value load; the store itself is bare.
    assert_eq!(
        trace,
        vec![IsaOp::Load(heap), IsaOp::Store(heap)],
        "log-free: no entry, no flush, no fence"
    );
}

#[test]
fn region_records_capture_old_and_new() {
    for lang in LangModel::ALL {
        let design = if lang.legal_on(HwDesign::StrandWeaver) {
            HwDesign::StrandWeaver
        } else {
            HwDesign::Eadr
        };
        let (mut ctx, mut rt, heap) = setup(design, lang);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 7);
        rt.region_end(&mut ctx);
        rt.region_begin(&mut ctx, &[LockId(0)]);
        rt.store(&mut ctx, heap, 9);
        rt.region_end(&mut ctx);
        let recs = rt.records();
        assert_eq!(recs.len(), 2, "{lang}");
        assert_eq!(recs[0].writes, vec![(heap, 0, 7)], "{lang}");
        assert_eq!(recs[1].writes, vec![(heap, 7, 9)], "{lang}");
        assert!(recs[0].first_seq < recs[0].last_seq, "{lang}");
        assert!(recs[0].last_seq < recs[1].first_seq, "{lang}");
    }
}

#[test]
#[should_panic(expected = "outside a failure-atomic region")]
fn store_outside_region_panics() {
    let (mut ctx, mut rt, heap) = setup(HwDesign::StrandWeaver, LangModel::Txn);
    rt.store(&mut ctx, heap, 1);
}

#[test]
#[should_panic(expected = "do not nest")]
fn nested_region_panics() {
    let (mut ctx, mut rt, _) = setup(HwDesign::StrandWeaver, LangModel::Txn);
    rt.region_begin(&mut ctx, &[LockId(0)]);
    rt.region_begin(&mut ctx, &[LockId(1)]);
}
