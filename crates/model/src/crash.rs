//! Crash-state construction: which PM states can recovery observe?
//!
//! A failure may strike at any moment; the stores that have already drained
//! to PM form a set that is *down-closed* under the persist memory order
//! (if `b` persisted and `a ≤p b`, then `a` persisted too). Conversely,
//! every down-closed set is a prefix of some linear extension of the PMO,
//! i.e. reachable by some legal draining schedule. This module enumerates
//! (for litmus-sized programs) and samples (for workload-sized programs)
//! those sets and materializes the resulting PM contents.

use std::collections::{BTreeSet, HashMap};

use sw_pmem::Addr;

use crate::pmo::{Pmo, StoreId};

/// Materializes the PM contents produced by persisting exactly the stores in
/// `in_set` (one flag per store). Stores are applied in visibility order, so
/// the last same-word store in the set wins — consistent with strong persist
/// atomicity. Words never stored-to are absent from the map (they hold their
/// initial value, conventionally zero).
///
/// # Panics
///
/// Panics if `in_set.len() != pmo.num_stores()` or if the set is not
/// down-closed (such a state is unreachable and asking for it is a bug).
pub fn materialize(pmo: &Pmo, in_set: &[bool]) -> HashMap<Addr, u64> {
    assert!(
        pmo.is_down_closed(in_set),
        "crash set must be down-closed under PMO"
    );
    let mut state = HashMap::new();
    // StoreIds are assigned in execution order, so ascending id = ascending
    // visibility order.
    for (id, info) in pmo.stores() {
        if in_set[id.0] {
            state.insert(info.addr, info.value);
        }
    }
    state
}

/// Enumerates **all** reachable crash states, projected onto `observe`:
/// each state is the vector of values at the observed addresses (0 when
/// never persisted). Exponential in the number of stores; intended for
/// litmus tests (≲ 20 stores).
pub fn enumerate_states(pmo: &Pmo, observe: &[Addr]) -> BTreeSet<Vec<u64>> {
    let n = pmo.num_stores();
    let mut in_set = vec![false; n];
    let mut out = BTreeSet::new();
    // Stores are id-ordered by execution position and all PMO edges point
    // forward, so deciding membership in id order sees predecessors first.
    fn rec(
        pmo: &Pmo,
        i: usize,
        in_set: &mut [bool],
        observe: &[Addr],
        out: &mut BTreeSet<Vec<u64>>,
    ) {
        if i == in_set.len() {
            let state = materialize(pmo, in_set);
            out.insert(
                observe
                    .iter()
                    .map(|a| state.get(a).copied().unwrap_or(0))
                    .collect(),
            );
            return;
        }
        // Excluding store i is always legal (its successors will then be
        // excluded too, enforced below).
        in_set[i] = false;
        rec(pmo, i + 1, in_set, observe, out);
        // Including store i is legal iff all direct predecessors included.
        if pmo
            .direct_predecessors(StoreId(i))
            .iter()
            .all(|p| in_set[p.0])
        {
            in_set[i] = true;
            rec(pmo, i + 1, in_set, observe, out);
            in_set[i] = false;
        }
    }
    rec(pmo, 0, &mut in_set, observe, &mut out);
    out
}

/// Samples one reachable crash set: draws a random linear extension of the
/// PMO (randomized Kahn's algorithm) and cuts it at a random prefix length.
/// Every down-closed set has non-zero probability.
pub fn sample_set<R: rand::Rng>(pmo: &Pmo, rng: &mut R) -> Vec<bool> {
    let n = pmo.num_stores();
    let mut indegree: Vec<usize> = (0..n)
        .map(|i| pmo.direct_predecessors(StoreId(i)).len())
        .collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let cut = if n == 0 { 0 } else { rng.gen_range(0..=n) };
    let mut in_set = vec![false; n];
    for _ in 0..cut {
        let pick = ready.swap_remove(rng.gen_range(0..ready.len()));
        in_set[pick] = true;
        for &s in pmo.direct_successors(StoreId(pick)) {
            indegree[s.0] -= 1;
            if indegree[s.0] == 0 {
                ready.push(s.0);
            }
        }
    }
    in_set
}

/// Samples one reachable crash state projected onto full PM contents.
pub fn sample_state<R: rand::Rng>(pmo: &Pmo, rng: &mut R) -> HashMap<Addr, u64> {
    let set = sample_set(pmo, rng);
    materialize(pmo, &set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{OpKind, Program};
    use crate::pmo::MemoryModel;

    fn pm(addr: u64) -> Addr {
        Addr(0x1000_0000 + addr)
    }

    /// A; PB; B on one strand.
    fn ordered_pair() -> Pmo {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::store(pm(64), 1));
        Pmo::compute(&p.single_threaded_execution(), MemoryModel::StrandWeaver)
    }

    #[test]
    fn enumerate_respects_barrier() {
        let pmo = ordered_pair();
        let states = enumerate_states(&pmo, &[pm(0), pm(64)]);
        let expect: BTreeSet<Vec<u64>> = [vec![0, 0], vec![1, 0], vec![1, 1]].into_iter().collect();
        assert_eq!(states, expect, "(A=0,B=1) is the forbidden state");
    }

    #[test]
    fn enumerate_unordered_pair_allows_all_four() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::NewStrand);
        p.push(0, OpKind::store(pm(64), 1));
        let pmo = Pmo::compute(&p.single_threaded_execution(), MemoryModel::StrandWeaver);
        let states = enumerate_states(&pmo, &[pm(0), pm(64)]);
        assert_eq!(states.len(), 4);
    }

    #[test]
    fn materialize_same_word_takes_latest_in_set() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::store(pm(0), 2));
        let pmo = Pmo::compute(&p.single_threaded_execution(), MemoryModel::StrandWeaver);
        // SPA forces {second} ⊇ {first}; the full set yields value 2.
        let state = materialize(&pmo, &[true, true]);
        assert_eq!(state[&pm(0)], 2);
        let state = materialize(&pmo, &[true, false]);
        assert_eq!(state[&pm(0)], 1);
    }

    #[test]
    #[should_panic(expected = "down-closed")]
    fn materialize_rejects_non_down_closed() {
        let pmo = ordered_pair();
        materialize(&pmo, &[false, true]);
    }

    #[test]
    fn sampled_sets_are_down_closed() {
        let pmo = ordered_pair();
        let mut rng = rand::thread_rng();
        for _ in 0..200 {
            let set = sample_set(&pmo, &mut rng);
            assert!(pmo.is_down_closed(&set));
        }
    }

    #[test]
    fn sampling_reaches_every_enumerated_state() {
        // A; PB; B; NS; C — 2 (A,B prefixes) × 2 (C in/out) = 6 states...
        // enumerate to get ground truth, then sample until all are seen.
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::store(pm(64), 1));
        p.push(0, OpKind::NewStrand);
        p.push(0, OpKind::store(pm(128), 1));
        let pmo = Pmo::compute(&p.single_threaded_execution(), MemoryModel::StrandWeaver);
        let observe = [pm(0), pm(64), pm(128)];
        let expect = enumerate_states(&pmo, &observe);
        assert_eq!(expect.len(), 6);
        let mut seen = BTreeSet::new();
        let mut rng = rand::thread_rng();
        for _ in 0..2000 {
            let state = sample_state(&pmo, &mut rng);
            seen.insert(
                observe
                    .iter()
                    .map(|a| state.get(a).copied().unwrap_or(0))
                    .collect::<Vec<u64>>(),
            );
            if seen == expect {
                break;
            }
        }
        assert_eq!(seen, expect);
    }

    #[test]
    fn empty_program_has_single_state() {
        let p = Program::new(1);
        let pmo = Pmo::compute(&p.single_threaded_execution(), MemoryModel::StrandWeaver);
        let states = enumerate_states(&pmo, &[pm(0)]);
        assert_eq!(states.len(), 1);
        assert!(states.contains(&vec![0]));
    }
}
