//! The hardware persistency designs of the evaluation and the single-table
//! description (`DesignSpec`) each one is defined by.
//!
//! A design is described in exactly one place: its [`DesignSpec`] entry,
//! which names the formal [`MemoryModel`] it implements, the label the
//! benchmark tables print, and the [`DesignLowering`] the logging runtime
//! (`sw-lang`) and the simulator's trace builders both consume. The timing
//! behaviour lives in the matching `PersistEngine` module under
//! `sw-sim::engines`; adding a design means one spec entry here and one
//! engine module there.

use crate::isa::FenceKind;
use crate::pmo::MemoryModel;

/// A hardware persistency design from Section VI of the paper, plus the
/// battery-backed **eADR** design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwDesign {
    /// Intel's existing ISA: `CLWB` + `SFENCE` epochs. `SFENCE` stalls
    /// subsequent stores until prior flushes *complete*.
    IntelX86,
    /// HOPS: delegated epoch persistency with lightweight `ofence` and
    /// durable `dfence`.
    Hops,
    /// StrandWeaver without the persist queue: strand primitives flow
    /// through the store queue (intermediate design of Section VI-B).
    NoPersistQueue,
    /// Full StrandWeaver: persist queue + strand buffer unit.
    StrandWeaver,
    /// No ordering between logs and updates: the paper's non-recoverable
    /// performance upper bound.
    NonAtomic,
    /// eADR: battery-backed caches inside the persistence domain. Stores
    /// persist at coherence visibility, `CLWB` is architecturally a no-op,
    /// and fences only order the store queue.
    Eadr,
}

/// How the logging runtime lowers its ordering points onto one design's
/// ISA — the per-design fence vocabulary of Figure 5, shared by `sw-lang`
/// (runtime lowering) and `sw-sim` (trace construction in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignLowering {
    /// Fence between an undo-log append and its in-place update (the
    /// pairwise log→update ordering required for correct recovery).
    pub pairwise: Option<FenceKind>,
    /// Fence after the in-place update, separating one log/update pair
    /// from the next. StrandWeaver starts a fresh strand (Figure 5), which
    /// *removes* ordering; the epoch designs must fence, which *adds*
    /// ordering — this asymmetry is the paper's core claim.
    pub after_update: Option<FenceKind>,
    /// Fence that makes all prior persists durable before proceeding (used
    /// at region commit: before the commit marker, between invalidation and
    /// the head-pointer update, etc.).
    pub drain: Option<FenceKind>,
}

/// The complete single-table description of one design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpec {
    /// Short label used in benchmark tables and `swctl --design`.
    pub label: &'static str,
    /// The formal ordering model the design implements.
    pub memory_model: MemoryModel,
    /// The runtime fence lowering.
    pub lowering: DesignLowering,
}

impl HwDesign {
    /// All designs in the order the figures present them (the paper's five
    /// followed by the eADR extension).
    pub const ALL: [HwDesign; 6] = [
        HwDesign::IntelX86,
        HwDesign::Hops,
        HwDesign::NoPersistQueue,
        HwDesign::StrandWeaver,
        HwDesign::NonAtomic,
        HwDesign::Eadr,
    ];

    /// The one-place definition of this design. Every other accessor reads
    /// from here.
    pub const fn spec(self) -> &'static DesignSpec {
        match self {
            // SFENCE everywhere: pairwise, between pairs, and at drains.
            HwDesign::IntelX86 => &DesignSpec {
                label: "intel-x86",
                memory_model: MemoryModel::IntelX86,
                lowering: DesignLowering {
                    pairwise: Some(FenceKind::Sfence),
                    after_update: Some(FenceKind::Sfence),
                    drain: Some(FenceKind::Sfence),
                },
            },
            // Lightweight ofence epochs; dfence only where durability is
            // actually required.
            HwDesign::Hops => &DesignSpec {
                label: "hops",
                memory_model: MemoryModel::Hops,
                lowering: DesignLowering {
                    pairwise: Some(FenceKind::Ofence),
                    after_update: Some(FenceKind::Ofence),
                    drain: Some(FenceKind::Dfence),
                },
            },
            // Same *order* as StrandWeaver — it differs only in timing
            // (head-of-line blocking in the store queue).
            HwDesign::NoPersistQueue => &DesignSpec {
                label: "no-persist-queue",
                memory_model: MemoryModel::StrandWeaver,
                lowering: DesignLowering {
                    pairwise: Some(FenceKind::PersistBarrier),
                    after_update: Some(FenceKind::NewStrand),
                    drain: Some(FenceKind::JoinStrand),
                },
            },
            HwDesign::StrandWeaver => &DesignSpec {
                label: "strandweaver",
                memory_model: MemoryModel::StrandWeaver,
                lowering: DesignLowering {
                    pairwise: Some(FenceKind::PersistBarrier),
                    after_update: Some(FenceKind::NewStrand),
                    drain: Some(FenceKind::JoinStrand),
                },
            },
            // The paper's NON-ATOMIC design removes only the pairwise
            // SFENCE between log creation and in-place update ("we remove
            // the SFENCE between the log entry creation and in-place
            // update"); it is Intel hardware otherwise, so region and
            // commit drains remain SFENCEs.
            HwDesign::NonAtomic => &DesignSpec {
                label: "non-atomic",
                memory_model: MemoryModel::NonAtomic,
                lowering: DesignLowering {
                    pairwise: None,
                    after_update: None,
                    drain: Some(FenceKind::Sfence),
                },
            },
            // Battery-backed caches: a store is durable the moment it is
            // visible, so persist order *is* visibility order (strict
            // persistency) and the runtime needs no ordering fences at all.
            HwDesign::Eadr => &DesignSpec {
                label: "eadr",
                memory_model: MemoryModel::Strict,
                lowering: DesignLowering {
                    pairwise: None,
                    after_update: None,
                    drain: None,
                },
            },
        }
    }

    /// The formal ordering model the design implements.
    pub fn memory_model(self) -> MemoryModel {
        self.spec().memory_model
    }

    /// The runtime fence lowering (see [`DesignLowering`]).
    pub fn lowering(self) -> DesignLowering {
        self.spec().lowering
    }

    /// Fence emitted between an undo-log append and its in-place update.
    pub fn pairwise_fence(self) -> Option<FenceKind> {
        self.spec().lowering.pairwise
    }

    /// Fence emitted after the in-place update, separating one log/update
    /// pair from the next.
    pub fn after_update_fence(self) -> Option<FenceKind> {
        self.spec().lowering.after_update
    }

    /// Fence that makes all prior persists durable before proceeding.
    pub fn drain_fence(self) -> Option<FenceKind> {
        self.spec().lowering.drain
    }

    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        self.spec().label
    }

    /// `true` for eADR-class designs: every store is durable the moment it
    /// becomes visible, so the runtime lowering needs no ordering or drain
    /// fences at all. Derived from the spec so a future battery-backed
    /// design is classified by what it guarantees, not by name. Log-free
    /// language models (`sw-lang`'s `Native`) are legal only on these
    /// designs.
    pub fn persists_at_visibility(self) -> bool {
        let low = self.spec().lowering;
        low.pairwise.is_none() && low.after_update.is_none() && low.drain.is_none()
    }

    /// `true` when logged runtimes can recover crash states of this
    /// design: the design either enforces the pairwise log→update
    /// ordering recovery relies on, or persists stores at visibility
    /// (where the ordering holds for free). Only the deliberately broken
    /// `NonAtomic` upper bound fails this — crash-consistency matrices
    /// iterate `HwDesign::ALL` filtered by this predicate instead of
    /// hand-listing designs.
    pub fn recoverable(self) -> bool {
        self.spec().lowering.pairwise.is_some() || self.persists_at_visibility()
    }

    /// Looks a design up by its [`label`](HwDesign::label).
    pub fn from_label(s: &str) -> Option<HwDesign> {
        HwDesign::ALL.into_iter().find(|d| d.label() == s)
    }
}

impl std::fmt::Display for HwDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_models() {
        assert_eq!(HwDesign::IntelX86.memory_model(), MemoryModel::IntelX86);
        assert_eq!(HwDesign::Hops.memory_model(), MemoryModel::Hops);
        assert_eq!(
            HwDesign::StrandWeaver.memory_model(),
            MemoryModel::StrandWeaver
        );
        assert_eq!(
            HwDesign::NoPersistQueue.memory_model(),
            MemoryModel::StrandWeaver
        );
        assert_eq!(HwDesign::NonAtomic.memory_model(), MemoryModel::NonAtomic);
        assert_eq!(HwDesign::Eadr.memory_model(), MemoryModel::Strict);
    }

    #[test]
    fn non_atomic_drops_only_pairwise_ordering() {
        let d = HwDesign::NonAtomic;
        assert_eq!(d.pairwise_fence(), None);
        assert_eq!(d.after_update_fence(), None);
        assert_eq!(
            d.drain_fence(),
            Some(FenceKind::Sfence),
            "commit drains remain"
        );
    }

    #[test]
    fn strandweaver_lowering_matches_figure5() {
        let d = HwDesign::StrandWeaver;
        assert_eq!(d.pairwise_fence(), Some(FenceKind::PersistBarrier));
        assert_eq!(d.after_update_fence(), Some(FenceKind::NewStrand));
        assert_eq!(d.drain_fence(), Some(FenceKind::JoinStrand));
    }

    #[test]
    fn intel_uses_sfence_everywhere() {
        let d = HwDesign::IntelX86;
        assert_eq!(d.pairwise_fence(), Some(FenceKind::Sfence));
        assert_eq!(d.after_update_fence(), Some(FenceKind::Sfence));
        assert_eq!(d.drain_fence(), Some(FenceKind::Sfence));
    }

    #[test]
    fn hops_distinguishes_ordering_from_durability() {
        let d = HwDesign::Hops;
        assert_eq!(d.pairwise_fence(), Some(FenceKind::Ofence));
        assert_eq!(d.drain_fence(), Some(FenceKind::Dfence));
    }

    #[test]
    fn eadr_needs_no_fences_at_all() {
        let low = HwDesign::Eadr.lowering();
        assert_eq!(low.pairwise, None);
        assert_eq!(low.after_update, None);
        assert_eq!(low.drain, None, "durability is free at visibility");
    }

    #[test]
    fn only_non_atomic_is_unrecoverable() {
        for d in HwDesign::ALL {
            assert_eq!(d.recoverable(), d != HwDesign::NonAtomic, "{d}");
        }
    }

    #[test]
    fn labels_are_distinct_and_resolvable() {
        let labels: std::collections::HashSet<_> =
            HwDesign::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), HwDesign::ALL.len());
        for d in HwDesign::ALL {
            assert_eq!(HwDesign::from_label(d.label()), Some(d));
        }
        assert_eq!(HwDesign::from_label("gem5"), None);
    }

    #[test]
    fn accessors_read_from_the_spec_table() {
        for d in HwDesign::ALL {
            let spec = d.spec();
            assert_eq!(d.label(), spec.label);
            assert_eq!(d.memory_model(), spec.memory_model);
            assert_eq!(d.lowering(), spec.lowering);
        }
    }
}
