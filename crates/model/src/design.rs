//! The five hardware persistency designs of the paper's evaluation and how
//! the logging runtime lowers its ordering points onto each.

use crate::isa::FenceKind;
use crate::pmo::MemoryModel;

/// A hardware persistency design from Section VI of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwDesign {
    /// Intel's existing ISA: `CLWB` + `SFENCE` epochs. `SFENCE` stalls
    /// subsequent stores until prior flushes *complete*.
    IntelX86,
    /// HOPS: delegated epoch persistency with lightweight `ofence` and
    /// durable `dfence`.
    Hops,
    /// StrandWeaver without the persist queue: strand primitives flow
    /// through the store queue (intermediate design of Section VI-B).
    NoPersistQueue,
    /// Full StrandWeaver: persist queue + strand buffer unit.
    StrandWeaver,
    /// No ordering between logs and updates: the paper's non-recoverable
    /// performance upper bound.
    NonAtomic,
}

impl HwDesign {
    /// All designs in the order the paper's figures present them.
    pub const ALL: [HwDesign; 5] = [
        HwDesign::IntelX86,
        HwDesign::Hops,
        HwDesign::NoPersistQueue,
        HwDesign::StrandWeaver,
        HwDesign::NonAtomic,
    ];

    /// The formal ordering model the design implements. The intermediate
    /// no-persist-queue design enforces the same *order* as StrandWeaver —
    /// it differs only in timing (head-of-line blocking in the store queue).
    pub fn memory_model(self) -> MemoryModel {
        match self {
            HwDesign::IntelX86 => MemoryModel::IntelX86,
            HwDesign::Hops => MemoryModel::Hops,
            HwDesign::NoPersistQueue | HwDesign::StrandWeaver => MemoryModel::StrandWeaver,
            HwDesign::NonAtomic => MemoryModel::NonAtomic,
        }
    }

    /// Fence emitted between an undo-log append and its in-place update
    /// (the pairwise log→update ordering required for correct recovery).
    pub fn pairwise_fence(self) -> Option<FenceKind> {
        match self {
            HwDesign::IntelX86 => Some(FenceKind::Sfence),
            HwDesign::Hops => Some(FenceKind::Ofence),
            HwDesign::NoPersistQueue | HwDesign::StrandWeaver => Some(FenceKind::PersistBarrier),
            HwDesign::NonAtomic => None,
        }
    }

    /// Fence emitted after the in-place update, separating one log/update
    /// pair from the next. StrandWeaver starts a fresh strand (Figure 5),
    /// which *removes* ordering; the epoch designs must fence, which *adds*
    /// ordering — this asymmetry is the paper's core claim.
    pub fn after_update_fence(self) -> Option<FenceKind> {
        match self {
            HwDesign::IntelX86 => Some(FenceKind::Sfence),
            HwDesign::Hops => Some(FenceKind::Ofence),
            HwDesign::NoPersistQueue | HwDesign::StrandWeaver => Some(FenceKind::NewStrand),
            HwDesign::NonAtomic => None,
        }
    }

    /// Fence that makes all prior persists durable before proceeding (used
    /// at region commit: before the commit marker, between invalidation and
    /// the head-pointer update, etc.).
    ///
    /// The paper's NON-ATOMIC design removes only the pairwise SFENCE
    /// between log creation and in-place update ("we remove the SFENCE
    /// between the log entry creation and in-place update"); it is Intel
    /// hardware otherwise, so region and commit drains remain SFENCEs.
    pub fn drain_fence(self) -> Option<FenceKind> {
        match self {
            HwDesign::IntelX86 | HwDesign::NonAtomic => Some(FenceKind::Sfence),
            HwDesign::Hops => Some(FenceKind::Dfence),
            HwDesign::NoPersistQueue | HwDesign::StrandWeaver => Some(FenceKind::JoinStrand),
        }
    }

    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            HwDesign::IntelX86 => "intel-x86",
            HwDesign::Hops => "hops",
            HwDesign::NoPersistQueue => "no-persist-queue",
            HwDesign::StrandWeaver => "strandweaver",
            HwDesign::NonAtomic => "non-atomic",
        }
    }
}

impl std::fmt::Display for HwDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_models() {
        assert_eq!(HwDesign::IntelX86.memory_model(), MemoryModel::IntelX86);
        assert_eq!(HwDesign::Hops.memory_model(), MemoryModel::Hops);
        assert_eq!(
            HwDesign::StrandWeaver.memory_model(),
            MemoryModel::StrandWeaver
        );
        assert_eq!(
            HwDesign::NoPersistQueue.memory_model(),
            MemoryModel::StrandWeaver
        );
        assert_eq!(HwDesign::NonAtomic.memory_model(), MemoryModel::NonAtomic);
    }

    #[test]
    fn non_atomic_drops_only_pairwise_ordering() {
        let d = HwDesign::NonAtomic;
        assert_eq!(d.pairwise_fence(), None);
        assert_eq!(d.after_update_fence(), None);
        assert_eq!(
            d.drain_fence(),
            Some(FenceKind::Sfence),
            "commit drains remain"
        );
    }

    #[test]
    fn strandweaver_lowering_matches_figure5() {
        let d = HwDesign::StrandWeaver;
        assert_eq!(d.pairwise_fence(), Some(FenceKind::PersistBarrier));
        assert_eq!(d.after_update_fence(), Some(FenceKind::NewStrand));
        assert_eq!(d.drain_fence(), Some(FenceKind::JoinStrand));
    }

    #[test]
    fn intel_uses_sfence_everywhere() {
        let d = HwDesign::IntelX86;
        assert_eq!(d.pairwise_fence(), Some(FenceKind::Sfence));
        assert_eq!(d.after_update_fence(), Some(FenceKind::Sfence));
        assert_eq!(d.drain_fence(), Some(FenceKind::Sfence));
    }

    #[test]
    fn hops_distinguishes_ordering_from_durability() {
        let d = HwDesign::Hops;
        assert_eq!(d.pairwise_fence(), Some(FenceKind::Ofence));
        assert_eq!(d.drain_fence(), Some(FenceKind::Dfence));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            HwDesign::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), HwDesign::ALL.len());
    }
}
