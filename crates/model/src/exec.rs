//! Witnessed executions: global interleavings of per-thread programs.

use crate::ops::{OpKind, Program, ThreadId};

/// A reference to one operation of a [`Program`]: thread + program index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpRef {
    /// Thread the operation belongs to.
    pub thread: ThreadId,
    /// Program-order index within the thread.
    pub index: usize,
}

/// A witnessed **volatile memory order**: one global total order over all
/// operations of a [`Program`], respecting each thread's program order.
///
/// Under the paper's TSO baseline, store visibility is a total order and
/// same-thread operations become visible in program order; an `Execution` is
/// one such witness. The persist memory order is computed *from* an
/// execution by [`Pmo::compute`](crate::Pmo::compute).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    program: Program,
    order: Vec<OpRef>,
}

impl Execution {
    /// Creates an execution from a program and a global order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the program's operations or
    /// violates some thread's program order.
    pub fn new(program: Program, order: Vec<OpRef>) -> Self {
        assert_eq!(
            order.len(),
            program.len(),
            "order must cover every operation exactly once"
        );
        let mut next = vec![0usize; program.num_threads()];
        for r in &order {
            let t = r.thread.0;
            assert!(t < program.num_threads(), "thread {t} out of range");
            assert_eq!(
                r.index, next[t],
                "order violates program order of {}",
                r.thread
            );
            next[t] += 1;
        }
        Self { program, order }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of operations in the execution.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the execution has no operations.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates over `(global position, OpRef, OpKind)` in visibility order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, OpRef, OpKind)> + '_ {
        self.order
            .iter()
            .enumerate()
            .map(|(pos, r)| (pos, *r, self.program.op(r.thread.0, r.index).kind))
    }

    /// The operation kind at global position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn kind_at(&self, pos: usize) -> OpKind {
        let r = self.order[pos];
        self.program.op(r.thread.0, r.index).kind
    }

    /// The op reference at global position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn op_ref_at(&self, pos: usize) -> OpRef {
        self.order[pos]
    }
}

/// Enumerates every interleaving of the program's threads, up to `cap`
/// executions. Intended for litmus-sized programs (a handful of operations);
/// the count grows multinomially.
///
/// Returns fewer than `cap` executions only if the program has fewer
/// interleavings.
pub fn enumerate_interleavings(program: &Program, cap: usize) -> Vec<Execution> {
    let mut out = Vec::new();
    let mut next = vec![0usize; program.num_threads()];
    let mut order = Vec::with_capacity(program.len());
    recurse(program, &mut next, &mut order, &mut out, cap);
    out
}

fn recurse(
    program: &Program,
    next: &mut [usize],
    order: &mut Vec<OpRef>,
    out: &mut Vec<Execution>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if order.len() == program.len() {
        out.push(Execution::new(program.clone(), order.clone()));
        return;
    }
    for t in 0..program.num_threads() {
        if next[t] < program.thread_ops(t).len() {
            order.push(OpRef {
                thread: ThreadId(t),
                index: next[t],
            });
            next[t] += 1;
            recurse(program, next, order, out, cap);
            next[t] -= 1;
            order.pop();
        }
    }
}

/// Samples one interleaving uniformly at random among next-op choices
/// (not uniform over interleavings, but covers the space well for testing).
pub fn random_interleaving<R: rand::Rng>(program: &Program, rng: &mut R) -> Execution {
    let mut next = vec![0usize; program.num_threads()];
    let mut remaining: Vec<usize> = (0..program.num_threads())
        .filter(|&t| !program.thread_ops(t).is_empty())
        .collect();
    let mut order = Vec::with_capacity(program.len());
    while !remaining.is_empty() {
        let pick = remaining[rng.gen_range(0..remaining.len())];
        order.push(OpRef {
            thread: ThreadId(pick),
            index: next[pick],
        });
        next[pick] += 1;
        if next[pick] == program.thread_ops(pick).len() {
            remaining.retain(|&t| t != pick);
        }
    }
    Execution::new(program.clone(), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_pmem::Addr;

    fn two_thread_program() -> Program {
        let mut p = Program::new(2);
        p.push(0, OpKind::store(Addr(0), 1));
        p.push(0, OpKind::store(Addr(8), 2));
        p.push(1, OpKind::store(Addr(16), 3));
        p
    }

    #[test]
    fn enumeration_counts_interleavings() {
        // 3 ops, threads of size 2 and 1: C(3,1) = 3 interleavings.
        let p = two_thread_program();
        let all = enumerate_interleavings(&p, 1000);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn enumeration_respects_cap() {
        let p = two_thread_program();
        assert_eq!(enumerate_interleavings(&p, 2).len(), 2);
    }

    #[test]
    fn interleavings_respect_program_order() {
        let p = two_thread_program();
        for e in enumerate_interleavings(&p, 1000) {
            let positions: Vec<usize> = e
                .iter()
                .filter(|(_, r, _)| r.thread == ThreadId(0))
                .map(|(pos, _, _)| pos)
                .collect();
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn random_interleaving_is_valid() {
        let p = two_thread_program();
        let mut rng = rand::thread_rng();
        for _ in 0..50 {
            let e = random_interleaving(&p, &mut rng);
            assert_eq!(e.len(), 3); // Execution::new validates the rest
        }
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn execution_rejects_reordered_thread_ops() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(Addr(0), 1));
        p.push(0, OpKind::store(Addr(8), 2));
        let order = vec![
            OpRef {
                thread: ThreadId(0),
                index: 1,
            },
            OpRef {
                thread: ThreadId(0),
                index: 0,
            },
        ];
        Execution::new(p, order);
    }

    #[test]
    #[should_panic(expected = "every operation")]
    fn execution_rejects_incomplete_order() {
        let p = two_thread_program();
        Execution::new(p, vec![]);
    }

    #[test]
    fn kind_at_and_op_ref_at() {
        let mut p = Program::new(1);
        p.push(0, OpKind::NewStrand);
        let e = p.single_threaded_execution();
        assert_eq!(e.kind_at(0), OpKind::NewStrand);
        assert_eq!(
            e.op_ref_at(0),
            OpRef {
                thread: ThreadId(0),
                index: 0
            }
        );
    }
}
