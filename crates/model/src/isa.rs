//! Shared ISA-level instruction vocabulary.
//!
//! The language-level runtimes in `sw-lang` lower logging and data accesses
//! to streams of [`IsaOp`]s; the timing simulator in `sw-sim` replays those
//! streams. The formal model ignores [`IsaOp::Clwb`] (persists are modelled
//! at stores; a CLWB only affects *when* a persist happens, which is the
//! simulator's concern) and treats lock operations as scheduling constraints
//! rather than persist-ordering events.

use std::fmt;

use sw_pmem::Addr;

use crate::ops::OpKind;

/// A mutual-exclusion lock identifier (locks are runtime/volatile objects;
/// the paper notes they may also be persistent, in which case SPA orders
/// their persists — an orthogonal concern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock{}", self.0)
    }
}

/// Persist-ordering fence instructions across all modelled designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// StrandWeaver persist barrier (orders persists within a strand).
    PersistBarrier,
    /// StrandWeaver `NewStrand`.
    NewStrand,
    /// StrandWeaver `JoinStrand`.
    JoinStrand,
    /// Intel x86 `SFENCE`.
    Sfence,
    /// HOPS `ofence`.
    Ofence,
    /// HOPS `dfence`.
    Dfence,
}

impl FenceKind {
    /// The formal-model operation corresponding to this fence.
    pub fn op_kind(self) -> OpKind {
        match self {
            FenceKind::PersistBarrier => OpKind::PersistBarrier,
            FenceKind::NewStrand => OpKind::NewStrand,
            FenceKind::JoinStrand => OpKind::JoinStrand,
            FenceKind::Sfence => OpKind::Sfence,
            FenceKind::Ofence => OpKind::Ofence,
            FenceKind::Dfence => OpKind::Dfence,
        }
    }
}

/// One dynamic ISA-level instruction, the simulator's input vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaOp {
    /// Load a word.
    Load(Addr),
    /// Store a word.
    Store(Addr),
    /// Flush the cache line containing the address toward the PM
    /// controller (non-invalidating, like `CLWB`).
    Clwb(Addr),
    /// A persist-ordering fence.
    Fence(FenceKind),
    /// Acquire a lock (spins / arbitrates in the timing simulator).
    Lock(LockId),
    /// Release a lock.
    Unlock(LockId),
    /// `cycles` of non-memory work (models computation between accesses).
    Compute(u32),
}

impl IsaOp {
    /// Returns the address touched by a memory instruction, if any.
    pub fn addr(self) -> Option<Addr> {
        match self {
            IsaOp::Load(a) | IsaOp::Store(a) | IsaOp::Clwb(a) => Some(a),
            _ => None,
        }
    }

    /// Returns `true` for [`IsaOp::Clwb`].
    pub fn is_clwb(self) -> bool {
        matches!(self, IsaOp::Clwb(_))
    }
}

/// A per-thread dynamic instruction stream for the timing simulator.
pub type IsaTrace = Vec<IsaOp>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_to_op_kind_roundtrip() {
        assert_eq!(FenceKind::PersistBarrier.op_kind(), OpKind::PersistBarrier);
        assert_eq!(FenceKind::NewStrand.op_kind(), OpKind::NewStrand);
        assert_eq!(FenceKind::JoinStrand.op_kind(), OpKind::JoinStrand);
        assert_eq!(FenceKind::Sfence.op_kind(), OpKind::Sfence);
        assert_eq!(FenceKind::Ofence.op_kind(), OpKind::Ofence);
        assert_eq!(FenceKind::Dfence.op_kind(), OpKind::Dfence);
    }

    #[test]
    fn isa_op_addr_extraction() {
        let a = Addr(64);
        assert_eq!(IsaOp::Load(a).addr(), Some(a));
        assert_eq!(IsaOp::Store(a).addr(), Some(a));
        assert_eq!(IsaOp::Clwb(a).addr(), Some(a));
        assert_eq!(IsaOp::Fence(FenceKind::Sfence).addr(), None);
        assert_eq!(IsaOp::Compute(5).addr(), None);
        assert_eq!(IsaOp::Lock(LockId(0)).addr(), None);
    }

    #[test]
    fn clwb_classification() {
        assert!(IsaOp::Clwb(Addr(0)).is_clwb());
        assert!(!IsaOp::Store(Addr(0)).is_clwb());
    }
}
