//! Formal strand persistency model from *Relaxed Persist Ordering Using
//! Strand Persistency* (ISCA 2020), Section III.
//!
//! This crate is the **oracle** of the reproduction. It defines:
//!
//! * the operation vocabulary ([`OpKind`], [`Program`]) — PM loads and
//!   stores plus the ordering primitives of every hardware design studied in
//!   the paper (persist barrier, `NewStrand`, `JoinStrand`, `SFENCE`,
//!   `OFENCE`, `DFENCE`);
//! * [`Execution`] — a witnessed volatile memory order (VMO): one global
//!   interleaving of the per-thread programs;
//! * [`Pmo`] — the persist memory order computed from an execution under a
//!   chosen [`MemoryModel`], implementing Equations 1–4 of the paper
//!   (intra-strand persist-barrier ordering, `JoinStrand` ordering, strong
//!   persist atomicity, and transitivity);
//! * [`crash`] — enumeration and sampling of the PM states reachable at a
//!   failure: exactly the PMO-down-closed subsets of stores;
//! * [`litmus`] — a litmus-test engine plus the paper's Figure 2(a–j)
//!   scenarios.
//!
//! Scope notes (also recorded in `DESIGN.md`):
//!
//! * The persist order is computed over **stores** only. Loads never create
//!   persist-order edges (the paper's Figure 2(g,h): conflicting loads do not
//!   order persists), and no equation can link a load into a store→store
//!   chain, so restricting the relation to stores loses nothing.
//! * Witnessed interleavings are sequentially consistent. SC executions are
//!   a subset of TSO executions, so every state this crate reports allowed is
//!   allowed on the paper's TSO machine; the Figure 2 forbidden states are
//!   forbidden by *persist* ordering, which we model exactly.
//! * Persists are word-granular. Real hardware drains whole cache lines,
//!   which only merges (never reorders) persists; the word-granular state
//!   space is a superset, making correctness checks against it stronger.
//!
//! # Example: persist barriers order within a strand only
//!
//! ```
//! use sw_model::{MemoryModel, OpKind, Program, Pmo};
//! use sw_pmem::Addr;
//!
//! let (a, b, c) = (Addr(0x1000_0040), Addr(0x1000_0080), Addr(0x1000_00c0));
//! let mut p = Program::new(1);
//! p.push(0, OpKind::store(a, 1));
//! p.push(0, OpKind::PersistBarrier);
//! p.push(0, OpKind::store(b, 1));
//! p.push(0, OpKind::NewStrand);
//! p.push(0, OpKind::store(c, 1));
//!
//! let exec = p.single_threaded_execution();
//! let pmo = Pmo::compute(&exec, MemoryModel::StrandWeaver);
//! let (sa, sb, sc) = (pmo.store_at(0, 0).unwrap(), pmo.store_at(0, 2).unwrap(),
//!                     pmo.store_at(0, 4).unwrap());
//! assert!(pmo.ordered_before(sa, sb));   // persist barrier orders A before B
//! assert!(!pmo.ordered_before(sa, sc));  // C is on a new strand: concurrent
//! assert!(!pmo.ordered_before(sb, sc));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crash;
mod design;
mod exec;
pub mod isa;
pub mod litmus;
mod ops;
mod pmo;

pub use design::{DesignLowering, DesignSpec, HwDesign};
pub use exec::{enumerate_interleavings, random_interleaving, Execution, OpRef};
pub use ops::{Op, OpKind, Program, ThreadId};
pub use pmo::{MemoryModel, Pmo, StoreId};
