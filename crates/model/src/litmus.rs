//! Litmus tests: the paper's Figure 2 scenarios and an engine to check them.
//!
//! A litmus test is a small multi-threaded [`Program`] plus assertions about
//! which post-crash PM states are reachable. The engine enumerates every
//! interleaving (VMO witness), computes the PMO of each under a chosen
//! [`MemoryModel`], enumerates all down-closed crash states, and checks the
//! union against `forbidden` / `required` state lists.

use std::collections::BTreeSet;

use sw_pmem::Addr;

use crate::crash::enumerate_states;
use crate::exec::{enumerate_interleavings, Execution};
use crate::ops::{OpKind, Program};
use crate::pmo::{MemoryModel, Pmo};

/// Maximum interleavings the engine will enumerate before panicking; litmus
/// programs are expected to stay tiny.
const INTERLEAVING_CAP: usize = 100_000;

/// A litmus test: program, observed addresses, and state assertions.
#[derive(Debug, Clone)]
pub struct Litmus {
    /// Test name (e.g. `"fig2ab-intra-strand"`).
    pub name: String,
    /// The multi-threaded program.
    pub program: Program,
    /// Addresses whose post-crash values define a "state". States are
    /// vectors of values in this order.
    pub observe: Vec<Addr>,
    /// States that must **not** be reachable.
    pub forbidden: Vec<Vec<u64>>,
    /// States that **must** be reachable (sanity that the relaxation is
    /// real, not vacuous).
    pub required: Vec<Vec<u64>>,
    /// Optional restriction on which interleavings to consider (used when a
    /// scenario fixes the inter-thread visibility direction, as Figure 2(i)
    /// does).
    pub vmo_filter: Option<fn(&Execution) -> bool>,
}

/// Result of running a litmus test under one memory model.
#[derive(Debug, Clone)]
pub struct LitmusOutcome {
    /// All reachable states (projections onto the observed addresses).
    pub reachable: BTreeSet<Vec<u64>>,
    /// Forbidden states that were (incorrectly) reachable.
    pub violations: Vec<Vec<u64>>,
    /// Required states that were not reachable.
    pub missing: Vec<Vec<u64>>,
}

impl LitmusOutcome {
    /// `true` if no forbidden state was reachable and every required state
    /// was.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.missing.is_empty()
    }
}

impl Litmus {
    /// Runs the litmus test under `model`, enumerating all interleavings and
    /// crash states.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the interleaving cap (it is not a
    /// litmus-sized program).
    pub fn run(&self, model: MemoryModel) -> LitmusOutcome {
        let execs = enumerate_interleavings(&self.program, INTERLEAVING_CAP);
        assert!(
            execs.len() < INTERLEAVING_CAP,
            "program too large for litmus enumeration"
        );
        let mut reachable = BTreeSet::new();
        for exec in &execs {
            if let Some(filter) = self.vmo_filter {
                if !filter(exec) {
                    continue;
                }
            }
            let pmo = Pmo::compute(exec, model);
            reachable.extend(enumerate_states(&pmo, &self.observe));
        }
        let violations = self
            .forbidden
            .iter()
            .filter(|s| reachable.contains(*s))
            .cloned()
            .collect();
        let missing = self
            .required
            .iter()
            .filter(|s| !reachable.contains(*s))
            .cloned()
            .collect();
        LitmusOutcome {
            reachable,
            violations,
            missing,
        }
    }

    /// Runs under `model` and returns an error describing any violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable report if a forbidden state is reachable or
    /// a required state is not.
    pub fn check(&self, model: MemoryModel) -> Result<(), String> {
        let out = self.run(model);
        if out.passed() {
            Ok(())
        } else {
            Err(format!(
                "litmus {} failed under {model:?}: forbidden-but-reachable {:?}, required-but-missing {:?}",
                self.name, out.violations, out.missing
            ))
        }
    }
}

/// Address of PM location `A` used by the Figure 2 scenarios.
pub fn loc_a() -> Addr {
    Addr(0x1000_0000)
}
/// Address of PM location `B` used by the Figure 2 scenarios.
pub fn loc_b() -> Addr {
    Addr(0x1000_0040)
}
/// Address of PM location `C` used by the Figure 2 scenarios.
pub fn loc_c() -> Addr {
    Addr(0x1000_0080)
}

/// Figure 2(a,b) — intra-strand ordering: `A; PB; B; NS; C` on one thread.
/// The barrier orders A before B; C is on a fresh strand and concurrent
/// with both. Forbidden: B persisted without A.
pub fn fig2_ab() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::PersistBarrier);
    p.push(0, OpKind::store(loc_b(), 1));
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_c(), 1));
    Litmus {
        name: "fig2ab-intra-strand".into(),
        program: p,
        observe: vec![loc_a(), loc_b(), loc_c()],
        forbidden: vec![vec![0, 1, 0], vec![0, 1, 1]],
        // C may persist before A and B (strand concurrency).
        required: vec![vec![0, 0, 1], vec![1, 1, 1], vec![1, 0, 0]],
        vmo_filter: None,
    }
}

/// Figure 2(c,d) — inter-strand ordering via `JoinStrand`:
/// `A; NS; B; JS; C`. C may not persist before A and B.
pub fn fig2_cd() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_b(), 1));
    p.push(0, OpKind::JoinStrand);
    p.push(0, OpKind::store(loc_c(), 1));
    Litmus {
        name: "fig2cd-join-strand".into(),
        program: p,
        observe: vec![loc_a(), loc_b(), loc_c()],
        forbidden: vec![vec![0, 0, 1], vec![1, 0, 1], vec![0, 1, 1]],
        // A and B are mutually unordered; all four of their combinations
        // occur without C.
        required: vec![vec![0, 0, 0], vec![1, 0, 0], vec![0, 1, 0], vec![1, 1, 1]],
        vmo_filter: None,
    }
}

/// Figure 2(e,f) — strong persist atomicity across strands:
/// `A=1; NS; A=2; PB; B=1`. SPA orders the two stores of A; transitivity
/// then orders `A=1` before `B` even though they sit on different strands.
/// Forbidden: B persisted while A still shows a pre-`A=2` value.
pub fn fig2_ef() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_a(), 2));
    p.push(0, OpKind::PersistBarrier);
    p.push(0, OpKind::store(loc_b(), 1));
    Litmus {
        name: "fig2ef-spa-transitivity".into(),
        program: p,
        observe: vec![loc_a(), loc_b()],
        forbidden: vec![vec![0, 1], vec![1, 1]],
        required: vec![vec![0, 0], vec![1, 0], vec![2, 0], vec![2, 1]],
        vmo_filter: None,
    }
}

/// Figure 2(g,h) — loads do not order persists: `A=1; NS; load A; B=1`.
/// Even though the load of A is program-ordered after the store, persist B
/// may drain first: state `(A=0, B=1)` is allowed.
pub fn fig2_gh() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::load(loc_a()));
    p.push(0, OpKind::store(loc_b(), 1));
    Litmus {
        name: "fig2gh-loads-dont-order".into(),
        program: p,
        observe: vec![loc_a(), loc_b()],
        forbidden: vec![],
        required: vec![vec![0, 1], vec![1, 0], vec![1, 1], vec![0, 0]],
        vmo_filter: None,
    }
}

/// Figure 2(i,j) — inter-thread strong persist atomicity. Thread 0 persists
/// A and B on separate strands; thread 1 stores B then C with a persist
/// barrier. Restricted to interleavings where thread 0's store to B becomes
/// visible first, SPA + the barrier order T0's B before T1's B before C:
/// recovery must never see C persisted while B still holds T0's value (or
/// no value).
pub fn fig2_ij() -> Litmus {
    let mut p = Program::new(2);
    p.push(0, OpKind::store(loc_a(), 1)); // strand 0 of T0
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_b(), 1)); // strand 1 of T0
    p.push(1, OpKind::store(loc_b(), 2));
    p.push(1, OpKind::PersistBarrier);
    p.push(1, OpKind::store(loc_c(), 1));
    fn t0_b_first(e: &Execution) -> bool {
        // Position of T0's store to B (thread 0, index 2) must precede
        // T1's store to B (thread 1, index 0).
        let mut pos0 = None;
        let mut pos1 = None;
        for (pos, r, _) in e.iter() {
            if r.thread.0 == 0 && r.index == 2 {
                pos0 = Some(pos);
            }
            if r.thread.0 == 1 && r.index == 0 {
                pos1 = Some(pos);
            }
        }
        pos0.unwrap() < pos1.unwrap()
    }
    Litmus {
        name: "fig2ij-inter-thread-spa".into(),
        program: p,
        observe: vec![loc_a(), loc_b(), loc_c()],
        // C=1 requires B=2 (T1's value); B=1 or B=0 with C=1 is forbidden.
        forbidden: vec![vec![0, 0, 1], vec![1, 0, 1], vec![0, 1, 1], vec![1, 1, 1]],
        // A is concurrent with everything: it may be missing even when C
        // persisted, and present when nothing else is.
        required: vec![vec![0, 2, 1], vec![1, 0, 0], vec![0, 1, 0], vec![1, 2, 1]],
        vmo_filter: Some(t0_b_first),
    }
}

/// Figure 1(e,f) companion — the motivation example: desired order
/// `A ≤p B` with `C` concurrent. Under strand persistency (`A; PB; B` on
/// one strand, `C` on another) state `(A=0,B=0,C=1)` is reachable; under an
/// epoch model the same intent expressed with `SFENCE` serializes C after A
/// (or before B), losing the concurrency.
pub fn fig1_ef_strand() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::PersistBarrier);
    p.push(0, OpKind::store(loc_b(), 1));
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_c(), 1));
    Litmus {
        name: "fig1ef-desired-order".into(),
        program: p,
        observe: vec![loc_a(), loc_b(), loc_c()],
        forbidden: vec![vec![0, 1, 0], vec![0, 1, 1]],
        required: vec![vec![0, 0, 1]],
        vmo_filter: None,
    }
}

/// Section III prose: persist order across strands can be established by
/// giving both accesses to the shared location write semantics (read-
/// modify-write instead of load) — the write-based variant of Figure 2(g).
pub fn rmw_orders_across_strands() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::NewStrand);
    // The "load" of A is upgraded to a store (RMW write semantics).
    p.push(0, OpKind::store(loc_a(), 2));
    p.push(0, OpKind::PersistBarrier);
    p.push(0, OpKind::store(loc_b(), 1));
    Litmus {
        name: "rmw-orders-across-strands".into(),
        program: p,
        observe: vec![loc_a(), loc_b()],
        // Unlike the load variant (Figure 2(g)), B now requires A=2.
        forbidden: vec![vec![0, 1], vec![1, 1]],
        required: vec![vec![2, 1], vec![1, 0]],
        vmo_filter: None,
    }
}

/// Chained `JoinStrand`s are transitive: `A; JS; B; JS; C` is totally
/// ordered even though every store could sit on a different strand.
pub fn join_strand_chain() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::JoinStrand);
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_b(), 1));
    p.push(0, OpKind::JoinStrand);
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_c(), 1));
    Litmus {
        name: "join-strand-chain".into(),
        program: p,
        observe: vec![loc_a(), loc_b(), loc_c()],
        forbidden: vec![vec![0, 1, 0], vec![0, 0, 1], vec![0, 1, 1], vec![1, 0, 1]],
        required: vec![vec![0, 0, 0], vec![1, 0, 0], vec![1, 1, 0], vec![1, 1, 1]],
        vmo_filter: None,
    }
}

/// Persist barriers only order their own strand even when strands
/// interleave in program order: `A; NS; B; PB; C` — the barrier orders
/// B before C (same strand) but A remains concurrent with both.
pub fn barrier_scoped_to_strand() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::NewStrand);
    p.push(0, OpKind::store(loc_b(), 1));
    p.push(0, OpKind::PersistBarrier);
    p.push(0, OpKind::store(loc_c(), 1));
    Litmus {
        name: "barrier-scoped-to-strand".into(),
        program: p,
        observe: vec![loc_a(), loc_b(), loc_c()],
        forbidden: vec![vec![0, 0, 1], vec![1, 0, 1]],
        required: vec![vec![0, 1, 0], vec![0, 1, 1], vec![1, 0, 0]],
        vmo_filter: None,
    }
}

/// The lock hand-off pattern at the end of Section III: thread 0 persists
/// A, joins, and releases a PM lock word; thread 1 acquires (stores to the
/// lock word after thread 0's release in VMO), joins, and persists B.
/// SPA on the lock word plus the JoinStrands forbid B persisting without A.
pub fn lock_handoff() -> Litmus {
    let lock = Addr(0x1000_0400);
    let mut p = Program::new(2);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::JoinStrand); // before unlock
    p.push(0, OpKind::store(lock, 1)); // release
    p.push(1, OpKind::store(lock, 2)); // acquire (write semantics)
    p.push(1, OpKind::JoinStrand); // after lock
    p.push(1, OpKind::store(loc_b(), 1));
    fn release_first(e: &Execution) -> bool {
        let mut rel = None;
        let mut acq = None;
        for (pos, r, _) in e.iter() {
            if r.thread.0 == 0 && r.index == 2 {
                rel = Some(pos);
            }
            if r.thread.0 == 1 && r.index == 0 {
                acq = Some(pos);
            }
        }
        rel.unwrap() < acq.unwrap()
    }
    Litmus {
        name: "lock-handoff".into(),
        program: p,
        observe: vec![loc_a(), loc_b()],
        forbidden: vec![vec![0, 1]],
        required: vec![vec![0, 0], vec![1, 0], vec![1, 1]],
        vmo_filter: Some(release_first),
    }
}

/// Without the JoinStrand after the acquire, the hand-off edge is lost:
/// B may persist before A (sanity check that `lock_handoff`'s fences are
/// all load-bearing).
pub fn lock_handoff_without_join() -> Litmus {
    let lock = Addr(0x1000_0400);
    let mut p = Program::new(2);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::JoinStrand);
    p.push(0, OpKind::store(lock, 1));
    p.push(1, OpKind::store(lock, 2));
    // No JoinStrand after acquire.
    p.push(1, OpKind::store(loc_b(), 1));
    Litmus {
        name: "lock-handoff-without-join".into(),
        program: p,
        observe: vec![loc_a(), loc_b()],
        forbidden: vec![],
        required: vec![vec![0, 1]],
        vmo_filter: None,
    }
}

/// Intra-thread SPA: overwriting the same word twice on one strand with no
/// barrier still persists in order, and the line-level state recovery can
/// observe is only a prefix of the overwrite sequence.
pub fn same_word_overwrites() -> Litmus {
    let mut p = Program::new(1);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::store(loc_a(), 2));
    p.push(0, OpKind::store(loc_a(), 3));
    Litmus {
        name: "same-word-overwrites".into(),
        program: p,
        observe: vec![loc_a()],
        forbidden: vec![],
        required: vec![vec![0], vec![1], vec![2], vec![3]],
        vmo_filter: None,
    }
}

/// Three-thread SPA transitivity: a conflict chain through a shared word
/// carries ordering from thread 0's A to thread 2's C.
pub fn three_thread_spa_chain() -> Litmus {
    let shared = Addr(0x1000_0440);
    let mut p = Program::new(3);
    p.push(0, OpKind::store(loc_a(), 1));
    p.push(0, OpKind::PersistBarrier);
    p.push(0, OpKind::store(shared, 1));
    p.push(1, OpKind::store(shared, 2));
    p.push(1, OpKind::PersistBarrier);
    p.push(1, OpKind::store(shared, 3));
    p.push(2, OpKind::store(shared, 4));
    p.push(2, OpKind::PersistBarrier);
    p.push(2, OpKind::store(loc_c(), 1));
    fn ordered(e: &Execution) -> bool {
        // Require the shared-word stores to be visible in thread order
        // T0 < T1 < T1 < T2.
        let mut pos = Vec::new();
        for (p_, r, k) in e.iter() {
            if let crate::OpKind::Store { addr, .. } = k {
                if addr.raw() == 0x1000_0440 {
                    pos.push((p_, r.thread.0));
                }
            }
        }
        pos.windows(2).all(|w| w[0].1 <= w[1].1)
    }
    Litmus {
        name: "three-thread-spa-chain".into(),
        program: p,
        observe: vec![loc_a(), loc_c()],
        forbidden: vec![vec![0, 1]],
        required: vec![vec![0, 0], vec![1, 0], vec![1, 1]],
        vmo_filter: Some(ordered),
    }
}

/// The full Figure 2 suite (plus the Figure 1(e,f) companion and the
/// Section III prose scenarios).
pub fn all() -> Vec<Litmus> {
    vec![
        fig2_ab(),
        fig2_cd(),
        fig2_ef(),
        fig2_gh(),
        fig2_ij(),
        fig1_ef_strand(),
        rmw_orders_across_strands(),
        join_strand_chain(),
        barrier_scoped_to_strand(),
        lock_handoff(),
        lock_handoff_without_join(),
        same_word_overwrites(),
        three_thread_spa_chain(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_suite_passes_under_strandweaver() {
        for litmus in all() {
            litmus.check(MemoryModel::StrandWeaver).unwrap();
        }
    }

    #[test]
    fn fig2ab_reachable_state_count() {
        let out = fig2_ab().run(MemoryModel::StrandWeaver);
        // A-then-B prefixes {∅,{A},{A,B}} × C ∈ {0,1} = 6 states.
        assert_eq!(out.reachable.len(), 6);
    }

    #[test]
    fn fig2ab_under_strict_is_stronger() {
        // Strict persistency forbids C persisting early, so (0,0,1) is not
        // reachable — the `required` clause fails, showing the relaxation
        // that strands add.
        let out = fig2_ab().run(MemoryModel::Strict);
        assert!(
            out.violations.is_empty(),
            "strict is stronger, never weaker"
        );
        assert!(out.missing.contains(&vec![0, 0, 1]));
    }

    #[test]
    fn fig2ab_under_non_atomic_violates() {
        // Without any ordering, B can persist before A — forbidden states
        // become reachable, confirming the test has teeth.
        let out = fig2_ab().run(MemoryModel::NonAtomic);
        assert!(!out.violations.is_empty());
    }

    #[test]
    fn fig2gh_allows_b_before_a() {
        let out = fig2_gh().run(MemoryModel::StrandWeaver);
        assert!(out.reachable.contains(&vec![0, 1]));
        assert!(out.passed());
    }

    #[test]
    fn fig2ij_forbidden_under_reverse_visibility_changes() {
        // Without the VMO filter, both visibility directions are explored
        // and B=1,C=1 becomes reachable (T1's B persists, then T0's B
        // overwrites it, then C). The filtered litmus must therefore be the
        // one that holds.
        let mut l = fig2_ij();
        l.vmo_filter = None;
        let out = l.run(MemoryModel::StrandWeaver);
        assert!(out.reachable.contains(&vec![0, 1, 1]) || out.reachable.contains(&vec![1, 1, 1]));
    }

    #[test]
    fn epoch_models_also_pass_fig2ab_ordering_but_lose_concurrency() {
        // Lower the same intent for Intel: A; CLWB-epoch; SFENCE; B ... C.
        let mut p = Program::new(1);
        p.push(0, OpKind::store(loc_a(), 1));
        p.push(0, OpKind::Sfence);
        p.push(0, OpKind::store(loc_b(), 1));
        p.push(0, OpKind::store(loc_c(), 1));
        let l = Litmus {
            name: "fig1f-epoch".into(),
            program: p,
            observe: vec![loc_a(), loc_b(), loc_c()],
            forbidden: vec![vec![0, 1, 0], vec![0, 1, 1]],
            // Epoch persistency cannot reach C=1 with A=0 when C is placed
            // after the fence (Figure 1(f)): C is serialized after A.
            required: vec![],
            vmo_filter: None,
        };
        l.check(MemoryModel::IntelX86).unwrap();
        let out = l.run(MemoryModel::IntelX86);
        assert!(
            !out.reachable.contains(&vec![0, 0, 1]),
            "epoch model serializes C after A — the concurrency StrandWeaver recovers"
        );
    }
}
