//! Operation vocabulary and per-thread programs.

use std::fmt;

use sw_pmem::Addr;

/// A logical (software) thread index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One dynamic operation in a thread's program.
///
/// The vocabulary covers the primitives of every hardware design in the
/// paper's evaluation. A given [`MemoryModel`](crate::MemoryModel) interprets
/// only the primitives it defines and treats the others as no-ops, so the
/// same program can be replayed under several models (useful for the
/// cross-design litmus and crash tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Load a word from PM (or DRAM).
    Load {
        /// Address read.
        addr: Addr,
    },
    /// Store a word. Stores to persistent addresses eventually persist.
    Store {
        /// Address written.
        addr: Addr,
        /// Value written.
        value: u64,
    },
    /// StrandWeaver persist barrier: orders persists *within* a strand
    /// (paper Equation 1).
    PersistBarrier,
    /// StrandWeaver `NewStrand`: begins a new strand; subsequent PM
    /// operations are unordered with everything before it (Equation 1's side
    /// condition).
    NewStrand,
    /// StrandWeaver `JoinStrand`: all prior persists on the thread complete
    /// before any subsequent persist issues (Equation 2).
    JoinStrand,
    /// Intel x86 `SFENCE`: epoch boundary; orders all prior persists before
    /// all subsequent persists on the thread, and stalls visibility of
    /// subsequent stores until prior flushes complete.
    Sfence,
    /// HOPS `ofence`: lightweight epoch boundary — orders persists without
    /// stalling for durability.
    Ofence,
    /// HOPS `dfence`: durable epoch boundary — orders persists *and* stalls
    /// until prior epochs have drained.
    Dfence,
}

impl OpKind {
    /// Convenience constructor for a store.
    pub fn store(addr: Addr, value: u64) -> Self {
        OpKind::Store { addr, value }
    }

    /// Convenience constructor for a load.
    pub fn load(addr: Addr) -> Self {
        OpKind::Load { addr }
    }

    /// Returns `true` for [`OpKind::Store`].
    pub fn is_store(&self) -> bool {
        matches!(self, OpKind::Store { .. })
    }

    /// Returns `true` for the ordering primitives (everything that is
    /// neither a load nor a store).
    pub fn is_ordering(&self) -> bool {
        !matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }
}

/// An operation tagged with its position: thread and program-order index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Op {
    /// Thread the operation belongs to.
    pub thread: ThreadId,
    /// Program-order index within the thread (0-based).
    pub index: usize,
    /// The operation itself.
    pub kind: OpKind,
}

/// A multi-threaded program: one operation list per thread.
///
/// # Example
///
/// ```
/// use sw_model::{OpKind, Program};
/// use sw_pmem::Addr;
///
/// let mut p = Program::new(2);
/// p.push(0, OpKind::store(Addr(0x1000_0000), 1));
/// p.push(1, OpKind::store(Addr(0x1000_0040), 2));
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.thread_ops(0).len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    threads: Vec<Vec<OpKind>>,
}

impl Program {
    /// Creates a program with `threads` empty threads.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: vec![Vec::new(); threads],
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of operations across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no thread has any operation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `op` to thread `tid`'s program and returns its program-order
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn push(&mut self, tid: usize, op: OpKind) -> usize {
        let ops = &mut self.threads[tid];
        ops.push(op);
        ops.len() - 1
    }

    /// The operations of thread `tid` in program order.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread_ops(&self, tid: usize) -> &[OpKind] {
        &self.threads[tid]
    }

    /// Looks up one operation.
    ///
    /// # Panics
    ///
    /// Panics if `tid` or `index` is out of range.
    pub fn op(&self, tid: usize, index: usize) -> Op {
        Op {
            thread: ThreadId(tid),
            index,
            kind: self.threads[tid][index],
        }
    }

    /// For a single-threaded program, the unique execution (program order).
    ///
    /// # Panics
    ///
    /// Panics if the program has more than one non-empty thread.
    pub fn single_threaded_execution(&self) -> crate::Execution {
        let non_empty = self.threads.iter().filter(|t| !t.is_empty()).count();
        assert!(
            non_empty <= 1,
            "program is multi-threaded; enumerate or sample interleavings"
        );
        let tid = self.threads.iter().position(|t| !t.is_empty()).unwrap_or(0);
        let order = (0..self.threads.get(tid).map_or(0, Vec::len))
            .map(|index| crate::OpRef {
                thread: ThreadId(tid),
                index,
            })
            .collect();
        crate::Execution::new(self.clone(), order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_returns_indices() {
        let mut p = Program::new(1);
        assert_eq!(p.push(0, OpKind::PersistBarrier), 0);
        assert_eq!(p.push(0, OpKind::NewStrand), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn op_lookup() {
        let mut p = Program::new(2);
        p.push(1, OpKind::store(Addr(64), 9));
        let op = p.op(1, 0);
        assert_eq!(op.thread, ThreadId(1));
        assert_eq!(op.index, 0);
        assert!(op.kind.is_store());
    }

    #[test]
    fn ordering_classification() {
        assert!(OpKind::PersistBarrier.is_ordering());
        assert!(OpKind::Sfence.is_ordering());
        assert!(!OpKind::load(Addr(0)).is_ordering());
        assert!(!OpKind::store(Addr(0), 1).is_ordering());
    }

    #[test]
    fn empty_program() {
        let p = Program::new(3);
        assert!(p.is_empty());
        assert_eq!(p.num_threads(), 3);
    }

    #[test]
    #[should_panic(expected = "multi-threaded")]
    fn single_threaded_execution_rejects_multithreaded() {
        let mut p = Program::new(2);
        p.push(0, OpKind::PersistBarrier);
        p.push(1, OpKind::PersistBarrier);
        p.single_threaded_execution();
    }
}
