//! Persist memory order (PMO) computation — Equations 1–4 of the paper.

use std::collections::HashMap;

use sw_pmem::Addr;

use crate::exec::{Execution, OpRef};
use crate::ops::{OpKind, ThreadId};

/// Which hardware persistency design's ordering rules to apply.
///
/// A program may contain primitives from several designs (they lower from a
/// common language-level runtime); each model interprets only its own
/// primitives and ignores the rest, exactly as the corresponding hardware
/// would (an unknown fence encoding is a no-op for persist ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// Strand persistency (the paper's proposal): `PersistBarrier` orders
    /// within a strand (Eq. 1), `NewStrand` clears intra-thread constraints,
    /// `JoinStrand` orders across strands (Eq. 2).
    StrandWeaver,
    /// Intel x86 epoch persistency: `SFENCE` orders all prior persists on
    /// the thread before all subsequent ones.
    IntelX86,
    /// HOPS delegated epoch persistency: `ofence` and `dfence` are the epoch
    /// boundaries.
    Hops,
    /// No inter-location ordering at all — the paper's NON-ATOMIC upper
    /// bound. Only strong persist atomicity applies.
    NonAtomic,
    /// Strict persistency (Pelley et al.): persists follow the volatile
    /// memory order exactly. Included as a reference point and for tests.
    Strict,
}

impl MemoryModel {
    /// All models, in the order used by evaluation sweeps.
    pub const ALL: [MemoryModel; 5] = [
        MemoryModel::IntelX86,
        MemoryModel::Hops,
        MemoryModel::StrandWeaver,
        MemoryModel::NonAtomic,
        MemoryModel::Strict,
    ];

    /// Returns `true` if `kind` acts as an epoch/persist barrier under this
    /// model (all prior persists on the thread ordered before subsequent).
    fn is_full_thread_barrier(self, kind: OpKind) -> bool {
        match self {
            MemoryModel::IntelX86 => kind == OpKind::Sfence,
            MemoryModel::Hops => matches!(kind, OpKind::Ofence | OpKind::Dfence),
            // JoinStrand orders everything before it on the thread.
            MemoryModel::StrandWeaver => kind == OpKind::JoinStrand,
            MemoryModel::NonAtomic | MemoryModel::Strict => false,
        }
    }
}

/// Identifier of a store within a [`Pmo`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreId(pub usize);

/// Metadata about one store in the persist order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreInfo {
    /// Where the store sits in the program.
    pub op: OpRef,
    /// Address written.
    pub addr: Addr,
    /// Value written.
    pub value: u64,
    /// Global position in the witnessed execution (visibility order).
    pub exec_pos: usize,
    /// Strand index on its thread (number of `NewStrand`s executed before
    /// it). Meaningful for [`MemoryModel::StrandWeaver`]; informational
    /// otherwise.
    pub strand: usize,
}

/// The persist memory order of an execution under a memory model: a DAG over
/// the execution's stores, closed under transitivity (Equation 4).
///
/// Every edge points forward in the witnessed execution order, so the
/// relation is acyclic by construction and crash states are exactly the
/// down-closed subsets of stores (see [`crate::crash`]).
#[derive(Debug, Clone)]
pub struct Pmo {
    stores: Vec<StoreInfo>,
    /// Direct (non-transitive) successor lists, sorted.
    succs: Vec<Vec<StoreId>>,
    /// Direct predecessor lists, sorted.
    preds: Vec<Vec<StoreId>>,
    /// Transitive reachability bitsets: `reach[i]` has bit `j` set iff
    /// store `i` is ordered before store `j`.
    reach: Vec<Vec<u64>>,
    /// Lookup from (thread, program index) to StoreId.
    by_op: HashMap<(ThreadId, usize), StoreId>,
    model: MemoryModel,
}

/// Per-thread scan state for the epoch/strand frontier algorithm.
#[derive(Default)]
struct ThreadScan {
    /// Stores whose persist must precede every future store on the thread
    /// (until the frontier is replaced / cleared).
    pb_frontier: Vec<StoreId>,
    /// Stores seen since the last effective persist barrier on the current
    /// strand.
    since_pb: Vec<StoreId>,
    /// Stores whose persist must precede every future store due to
    /// `JoinStrand` (never cleared by `NewStrand`, per Eq. 2).
    js_frontier: Vec<StoreId>,
    /// Stores seen since the last effective `JoinStrand`.
    since_js: Vec<StoreId>,
    /// Strand counter (number of `NewStrand`s so far).
    strand: usize,
}

impl Pmo {
    /// Computes the persist memory order of `exec` under `model`.
    pub fn compute(exec: &Execution, model: MemoryModel) -> Self {
        let mut stores: Vec<StoreInfo> = Vec::new();
        let mut by_op = HashMap::new();
        let mut scans: Vec<ThreadScan> = Vec::new();
        let mut edges: Vec<(StoreId, StoreId)> = Vec::new();
        // Strong persist atomicity: last store to each word (Eq. 3).
        let mut last_to_word: HashMap<Addr, StoreId> = HashMap::new();
        // Strict persistency: previous store in global visibility order.
        let mut prev_global: Option<StoreId> = None;

        for (pos, op_ref, kind) in exec.iter() {
            let tid = op_ref.thread.0;
            if scans.len() <= tid {
                scans.resize_with(tid + 1, ThreadScan::default);
            }
            let scan = &mut scans[tid];
            match kind {
                OpKind::Store { addr, value } => {
                    let id = StoreId(stores.len());
                    stores.push(StoreInfo {
                        op: op_ref,
                        addr,
                        value,
                        exec_pos: pos,
                        strand: scan.strand,
                    });
                    by_op.insert((op_ref.thread, op_ref.index), id);

                    // Eq. 1: persist-barrier frontier (per model).
                    if model == MemoryModel::StrandWeaver {
                        for &p in &scan.pb_frontier {
                            edges.push((p, id));
                        }
                        scan.since_pb.push(id);
                    }
                    // Eq. 2 (and epoch models): full-thread barrier frontier.
                    for &p in &scan.js_frontier {
                        edges.push((p, id));
                    }
                    scan.since_js.push(id);

                    // Eq. 3: strong persist atomicity, word-granular.
                    if let Some(&prev) = last_to_word.get(&addr) {
                        edges.push((prev, id));
                    }
                    last_to_word.insert(addr, id);

                    // Strict persistency: chain the global visibility order.
                    if model == MemoryModel::Strict {
                        if let Some(prev) = prev_global {
                            edges.push((prev, id));
                        }
                        prev_global = Some(id);
                    }
                }
                OpKind::PersistBarrier
                    if model == MemoryModel::StrandWeaver && !scan.since_pb.is_empty() =>
                {
                    scan.pb_frontier = std::mem::take(&mut scan.since_pb);
                }
                OpKind::NewStrand if model == MemoryModel::StrandWeaver => {
                    scan.pb_frontier.clear();
                    scan.since_pb.clear();
                    scan.strand += 1;
                }
                kind if model.is_full_thread_barrier(kind) => {
                    if !scan.since_js.is_empty() {
                        scan.js_frontier = std::mem::take(&mut scan.since_js);
                    }
                    if model == MemoryModel::StrandWeaver {
                        // JoinStrand subsumes the strand-local frontier: all
                        // prior persists are now ordered before subsequent
                        // ones, so the PB frontier can be reset alongside.
                        scan.pb_frontier.clear();
                        scan.since_pb.clear();
                    }
                }
                _ => {}
            }
        }

        let n = stores.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        edges.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        edges.dedup();
        for (a, b) in edges {
            debug_assert!(stores[a.0].exec_pos < stores[b.0].exec_pos);
            succs[a.0].push(b);
            preds[b.0].push(a);
        }

        // Transitive closure. Every edge points forward in execution order,
        // so processing stores in reverse execution order visits successors
        // before predecessors.
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| stores[i].exec_pos);
        for &i in order.iter().rev() {
            // Split borrows: successors have larger index-in-order, compute
            // into a scratch row then store.
            let mut row = vec![0u64; words];
            for &StoreId(s) in &succs[i] {
                row[s / 64] |= 1 << (s % 64);
                for (w, bits) in reach[s].iter().enumerate() {
                    row[w] |= bits;
                }
            }
            reach[i] = row;
        }

        Self {
            stores,
            succs,
            preds,
            reach,
            by_op,
            model,
        }
    }

    /// The model this PMO was computed under.
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// Number of stores.
    pub fn num_stores(&self) -> usize {
        self.stores.len()
    }

    /// Metadata of store `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn store(&self, id: StoreId) -> &StoreInfo {
        &self.stores[id.0]
    }

    /// Iterates over all stores in execution order.
    pub fn stores(&self) -> impl Iterator<Item = (StoreId, &StoreInfo)> + '_ {
        self.stores.iter().enumerate().map(|(i, s)| (StoreId(i), s))
    }

    /// Looks up the store at `(thread, program index)`, if that operation is
    /// a store.
    pub fn store_at(&self, thread: usize, index: usize) -> Option<StoreId> {
        self.by_op.get(&(ThreadId(thread), index)).copied()
    }

    /// Returns `true` if `a` must persist before `b` (transitive).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn ordered_before(&self, a: StoreId, b: StoreId) -> bool {
        self.reach[a.0][b.0 / 64] & (1 << (b.0 % 64)) != 0
    }

    /// Direct (non-transitive) successors of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn direct_successors(&self, a: StoreId) -> &[StoreId] {
        &self.succs[a.0]
    }

    /// Direct (non-transitive) predecessors of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn direct_predecessors(&self, a: StoreId) -> &[StoreId] {
        &self.preds[a.0]
    }

    /// Total number of direct edges.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Checks that `order` (a sequence of distinct StoreIds covering all
    /// stores) is a linear extension of the persist order. Used to validate
    /// persist sequences observed from the timing simulator.
    pub fn is_linear_extension(&self, order: &[StoreId]) -> bool {
        if order.len() != self.stores.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.stores.len()];
        for (i, &s) in order.iter().enumerate() {
            if s.0 >= pos.len() || pos[s.0] != usize::MAX {
                return false;
            }
            pos[s.0] = i;
        }
        for (a, succs) in self.succs.iter().enumerate() {
            for &b in succs {
                if pos[a] >= pos[b.0] {
                    return false;
                }
            }
        }
        true
    }

    /// Checks that a set of stores (given as a boolean per store) is
    /// down-closed under the persist order: if `b` is in the set, every `a`
    /// ordered before `b` is too.
    pub fn is_down_closed(&self, in_set: &[bool]) -> bool {
        assert_eq!(in_set.len(), self.stores.len());
        for (b, &present) in in_set.iter().enumerate() {
            if present {
                for &a in &self.preds[b] {
                    if !in_set[a.0] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Program;

    fn pm(addr: u64) -> Addr {
        Addr(0x1000_0000 + addr)
    }

    fn compute(p: &Program, model: MemoryModel) -> Pmo {
        Pmo::compute(&p.single_threaded_execution(), model)
    }

    /// Figure 2(a): A; PB; B; NS; C — A<B, C concurrent with both.
    fn fig2a_program() -> Program {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1)); // A
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::store(pm(64), 1)); // B
        p.push(0, OpKind::NewStrand);
        p.push(0, OpKind::store(pm(128), 1)); // C
        p
    }

    #[test]
    fn persist_barrier_orders_within_strand() {
        let p = fig2a_program();
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        let a = pmo.store_at(0, 0).unwrap();
        let b = pmo.store_at(0, 2).unwrap();
        let c = pmo.store_at(0, 4).unwrap();
        assert!(pmo.ordered_before(a, b));
        assert!(!pmo.ordered_before(b, a));
        assert!(!pmo.ordered_before(a, c));
        assert!(!pmo.ordered_before(b, c));
        assert!(!pmo.ordered_before(c, a));
    }

    #[test]
    fn join_strand_orders_across_strands() {
        // Figure 2(c): A; PB; B on strand 0, NS; C... here: A; NS; B; JS; C.
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1)); // A, strand 0
        p.push(0, OpKind::NewStrand);
        p.push(0, OpKind::store(pm(64), 1)); // B, strand 1
        p.push(0, OpKind::JoinStrand);
        p.push(0, OpKind::store(pm(128), 1)); // C
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        let (a, b, c) = (
            pmo.store_at(0, 0).unwrap(),
            pmo.store_at(0, 2).unwrap(),
            pmo.store_at(0, 4).unwrap(),
        );
        assert!(!pmo.ordered_before(a, b), "A and B on separate strands");
        assert!(pmo.ordered_before(a, c));
        assert!(pmo.ordered_before(b, c));
    }

    #[test]
    fn new_strand_clears_pending_barrier() {
        // A; PB; NS; B — the barrier must not order A before B.
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::NewStrand);
        p.push(0, OpKind::store(pm(64), 1));
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        let (a, b) = (pmo.store_at(0, 0).unwrap(), pmo.store_at(0, 3).unwrap());
        assert!(!pmo.ordered_before(a, b));
    }

    #[test]
    fn consecutive_barriers_with_empty_epoch_chain_transitively() {
        // A; PB; PB; B — still A < B even though the middle epoch is empty.
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::store(pm(64), 1));
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        assert!(pmo.ordered_before(pmo.store_at(0, 0).unwrap(), pmo.store_at(0, 3).unwrap()));
    }

    #[test]
    fn stores_within_epoch_are_concurrent() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::store(pm(64), 1));
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        let (a, b) = (pmo.store_at(0, 0).unwrap(), pmo.store_at(0, 1).unwrap());
        assert!(!pmo.ordered_before(a, b));
        assert!(!pmo.ordered_before(b, a));
    }

    #[test]
    fn spa_orders_same_word_stores() {
        // Figure 2(e): conflicting stores on different strands are ordered.
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1)); // A=1, strand 0
        p.push(0, OpKind::NewStrand);
        p.push(0, OpKind::store(pm(0), 2)); // A=2, strand 1
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::store(pm(64), 1)); // B, strand 1
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        let a1 = pmo.store_at(0, 0).unwrap();
        let a2 = pmo.store_at(0, 2).unwrap();
        let b = pmo.store_at(0, 4).unwrap();
        assert!(pmo.ordered_before(a1, a2), "SPA");
        assert!(pmo.ordered_before(a2, b), "barrier on strand 1");
        assert!(
            pmo.ordered_before(a1, b),
            "transitivity (Figure 2(f) forbidden)"
        );
    }

    #[test]
    fn strand_numbers_recorded() {
        let p = fig2a_program();
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        assert_eq!(pmo.store(pmo.store_at(0, 0).unwrap()).strand, 0);
        assert_eq!(pmo.store(pmo.store_at(0, 4).unwrap()).strand, 1);
    }

    #[test]
    fn intel_sfence_orders_epochs_and_ignores_strand_ops() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::Sfence);
        p.push(0, OpKind::store(pm(64), 1));
        p.push(0, OpKind::NewStrand); // ignored by Intel
        p.push(0, OpKind::store(pm(128), 1));
        let pmo = compute(&p, MemoryModel::IntelX86);
        let (a, b, c) = (
            pmo.store_at(0, 0).unwrap(),
            pmo.store_at(0, 2).unwrap(),
            pmo.store_at(0, 4).unwrap(),
        );
        assert!(pmo.ordered_before(a, b));
        assert!(!pmo.ordered_before(b, c), "B and C share the second epoch");
        assert!(
            pmo.ordered_before(a, c),
            "epoch ordering crosses NewStrand under Intel"
        );
    }

    #[test]
    fn strandweaver_ignores_sfence() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::Sfence);
        p.push(0, OpKind::store(pm(64), 1));
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        assert!(!pmo.ordered_before(pmo.store_at(0, 0).unwrap(), pmo.store_at(0, 2).unwrap()));
    }

    #[test]
    fn hops_ofence_and_dfence_are_epoch_boundaries() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::Ofence);
        p.push(0, OpKind::store(pm(64), 1));
        p.push(0, OpKind::Dfence);
        p.push(0, OpKind::store(pm(128), 1));
        let pmo = compute(&p, MemoryModel::Hops);
        let (a, b, c) = (
            pmo.store_at(0, 0).unwrap(),
            pmo.store_at(0, 2).unwrap(),
            pmo.store_at(0, 4).unwrap(),
        );
        assert!(pmo.ordered_before(a, b));
        assert!(pmo.ordered_before(b, c));
        assert!(pmo.ordered_before(a, c));
    }

    #[test]
    fn non_atomic_has_only_spa_edges() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::Sfence);
        p.push(0, OpKind::PersistBarrier);
        p.push(0, OpKind::store(pm(64), 1));
        p.push(0, OpKind::store(pm(0), 2)); // SPA with first store
        let pmo = compute(&p, MemoryModel::NonAtomic);
        assert_eq!(pmo.num_edges(), 1);
        assert!(pmo.ordered_before(pmo.store_at(0, 0).unwrap(), pmo.store_at(0, 4).unwrap()));
    }

    #[test]
    fn strict_orders_everything_in_program_order() {
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::store(pm(64), 1));
        p.push(0, OpKind::store(pm(128), 1));
        let pmo = compute(&p, MemoryModel::Strict);
        let ids: Vec<StoreId> = (0..3).map(|i| pmo.store_at(0, i).unwrap()).collect();
        assert!(pmo.ordered_before(ids[0], ids[1]));
        assert!(pmo.ordered_before(ids[1], ids[2]));
        assert!(pmo.ordered_before(ids[0], ids[2]));
    }

    #[test]
    fn inter_thread_spa_via_interleaving() {
        // Figure 2(i): thread 0 stores B, thread 1 stores B then C with a
        // barrier. If T0's store is visible first, SPA orders it before
        // T1's, and transitively before C.
        let mut p = Program::new(2);
        p.push(0, OpKind::store(pm(64), 1)); // B on T0
        p.push(1, OpKind::store(pm(64), 2)); // B on T1
        p.push(1, OpKind::PersistBarrier);
        p.push(1, OpKind::store(pm(128), 1)); // C on T1
                                              // Interleaving where T0's store is first.
        let execs = crate::enumerate_interleavings(&p, 100);
        let e = execs
            .iter()
            .find(|e| e.op_ref_at(0).thread == ThreadId(0))
            .expect("an interleaving starting with T0");
        let pmo = Pmo::compute(e, MemoryModel::StrandWeaver);
        let b0 = pmo.store_at(0, 0).unwrap();
        let b1 = pmo.store_at(1, 0).unwrap();
        let c = pmo.store_at(1, 2).unwrap();
        assert!(pmo.ordered_before(b0, b1));
        assert!(pmo.ordered_before(b1, c));
        assert!(pmo.ordered_before(b0, c));
    }

    #[test]
    fn linear_extension_validation() {
        let p = fig2a_program();
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        let a = pmo.store_at(0, 0).unwrap();
        let b = pmo.store_at(0, 2).unwrap();
        let c = pmo.store_at(0, 4).unwrap();
        assert!(pmo.is_linear_extension(&[a, b, c]));
        assert!(pmo.is_linear_extension(&[c, a, b]));
        assert!(pmo.is_linear_extension(&[a, c, b]));
        assert!(!pmo.is_linear_extension(&[b, a, c]), "violates A<B");
        assert!(!pmo.is_linear_extension(&[a, b]), "incomplete");
        assert!(!pmo.is_linear_extension(&[a, a, b]), "duplicate");
    }

    #[test]
    fn down_closed_validation() {
        let p = fig2a_program();
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        // Stores in id order: a=0, b=1, c=2 (execution order).
        assert!(pmo.is_down_closed(&[false, false, false]));
        assert!(pmo.is_down_closed(&[true, false, true]));
        assert!(!pmo.is_down_closed(&[false, true, false]), "B without A");
        assert!(pmo.is_down_closed(&[true, true, true]));
    }

    #[test]
    fn join_strand_then_new_strand_keeps_join_ordering() {
        // A; JS; NS; B — Eq. 2 has no NewStrand side-condition.
        let mut p = Program::new(1);
        p.push(0, OpKind::store(pm(0), 1));
        p.push(0, OpKind::JoinStrand);
        p.push(0, OpKind::NewStrand);
        p.push(0, OpKind::store(pm(64), 1));
        let pmo = compute(&p, MemoryModel::StrandWeaver);
        assert!(pmo.ordered_before(pmo.store_at(0, 0).unwrap(), pmo.store_at(0, 3).unwrap()));
    }
}
