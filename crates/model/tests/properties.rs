//! Property-based tests for the formal persistency model.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sw_model::{crash, random_interleaving, MemoryModel, OpKind, Pmo, Program, StoreId};
use sw_pmem::Addr;

/// A random operation over a small address pool.
fn arb_op() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        4 => (0u64..6).prop_map(|a| OpKind::store(Addr(0x1000_0000 + a * 64), a + 1)),
        1 => (0u64..6).prop_map(|a| OpKind::load(Addr(0x1000_0000 + a * 64))),
        1 => Just(OpKind::PersistBarrier),
        1 => Just(OpKind::NewStrand),
        1 => Just(OpKind::JoinStrand),
        1 => Just(OpKind::Sfence),
        1 => Just(OpKind::Ofence),
        1 => Just(OpKind::Dfence),
    ]
}

fn arb_program(threads: usize, ops: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec(prop::collection::vec(arb_op(), 1..ops), threads).prop_map(|ts| {
        let mut p = Program::new(ts.len());
        for (t, ops) in ts.into_iter().enumerate() {
            for op in ops {
                p.push(t, op);
            }
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every PMO edge points forward in the witnessed execution, so the
    /// relation is a DAG and execution order is one linear extension.
    #[test]
    fn execution_order_is_a_linear_extension(p in arb_program(2, 12), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let exec = random_interleaving(&p, &mut rng);
        for model in MemoryModel::ALL {
            let pmo = Pmo::compute(&exec, model);
            let order: Vec<StoreId> = (0..pmo.num_stores()).map(StoreId).collect();
            prop_assert!(pmo.is_linear_extension(&order), "{model:?}");
        }
    }

    /// Sampled crash sets are always down-closed.
    #[test]
    fn sampled_sets_are_down_closed(p in arb_program(2, 12), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let exec = random_interleaving(&p, &mut rng);
        for model in MemoryModel::ALL {
            let pmo = Pmo::compute(&exec, model);
            for _ in 0..10 {
                let set = crash::sample_set(&pmo, &mut rng);
                prop_assert!(pmo.is_down_closed(&set), "{model:?}");
            }
        }
    }

    /// The strand model's orderings are a subset of strict persistency's:
    /// anything ordered under StrandWeaver is ordered under Strict.
    #[test]
    fn strict_dominates_strand(p in arb_program(1, 14), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let exec = random_interleaving(&p, &mut rng);
        let strand = Pmo::compute(&exec, MemoryModel::StrandWeaver);
        let strict = Pmo::compute(&exec, MemoryModel::Strict);
        for i in 0..strand.num_stores() {
            for j in 0..strand.num_stores() {
                if strand.ordered_before(StoreId(i), StoreId(j)) {
                    prop_assert!(strict.ordered_before(StoreId(i), StoreId(j)));
                }
            }
        }
    }

    /// Non-atomic orderings (SPA only) are a subset of every model's.
    #[test]
    fn every_model_dominates_non_atomic(p in arb_program(2, 12), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let exec = random_interleaving(&p, &mut rng);
        let na = Pmo::compute(&exec, MemoryModel::NonAtomic);
        for model in MemoryModel::ALL {
            let pmo = Pmo::compute(&exec, model);
            for i in 0..na.num_stores() {
                for j in 0..na.num_stores() {
                    if na.ordered_before(StoreId(i), StoreId(j)) {
                        prop_assert!(pmo.ordered_before(StoreId(i), StoreId(j)), "{model:?}");
                    }
                }
            }
        }
    }

    /// Strong persist atomicity holds in every model: same-word stores are
    /// ordered by visibility.
    #[test]
    fn spa_holds_in_every_model(p in arb_program(2, 12), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let exec = random_interleaving(&p, &mut rng);
        for model in MemoryModel::ALL {
            let pmo = Pmo::compute(&exec, model);
            let stores: Vec<_> = pmo.stores().map(|(id, info)| (id, *info)).collect();
            for (i, a) in &stores {
                for (j, b) in &stores {
                    if a.addr == b.addr && a.exec_pos < b.exec_pos {
                        prop_assert!(pmo.ordered_before(*i, *j), "{model:?}: SPA violated");
                    }
                }
            }
        }
    }

    /// Materializing the full store set yields the final visible values.
    #[test]
    fn full_set_materializes_final_state(p in arb_program(2, 10), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let exec = random_interleaving(&p, &mut rng);
        let pmo = Pmo::compute(&exec, MemoryModel::StrandWeaver);
        let all = vec![true; pmo.num_stores()];
        let state = crash::materialize(&pmo, &all);
        // Final value per address = last store in execution order.
        let mut expected = std::collections::HashMap::new();
        for (_, info) in pmo.stores() {
            expected.insert(info.addr, info.value);
        }
        prop_assert_eq!(state, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two crash APIs agree: every sampled state is in the enumerated
    /// set (sampling is sound w.r.t. exhaustive enumeration).
    #[test]
    fn sampling_is_sound_wrt_enumeration(p in arb_program(1, 8), seed in 0u64..1000) {
        let exec = p.single_threaded_execution();
        let pmo = Pmo::compute(&exec, MemoryModel::StrandWeaver);
        if pmo.num_stores() > 12 {
            return Ok(()); // keep enumeration tractable
        }
        let observe: Vec<Addr> = (0..6).map(|a| Addr(0x1000_0000 + a * 64)).collect();
        let allowed = crash::enumerate_states(&pmo, &observe);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let state = crash::sample_state(&pmo, &mut rng);
            let proj: Vec<u64> =
                observe.iter().map(|a| state.get(a).copied().unwrap_or(0)).collect();
            prop_assert!(allowed.contains(&proj), "sampled state {proj:?} not enumerated");
        }
    }

    /// Adding a JoinStrand at the end never grows the reachable state space
    /// (fences are monotone: more ordering, fewer states).
    #[test]
    fn appending_join_strand_is_monotone(p in arb_program(1, 8)) {
        let observe: Vec<Addr> = (0..6).map(|a| Addr(0x1000_0000 + a * 64)).collect();
        let base_pmo = Pmo::compute(&p.single_threaded_execution(), MemoryModel::StrandWeaver);
        if base_pmo.num_stores() > 12 {
            return Ok(());
        }
        let base = crash::enumerate_states(&base_pmo, &observe);

        let mut fenced = p.clone();
        // Insert a JoinStrand in the middle of the program.
        let mut p2 = Program::new(1);
        let ops = fenced.thread_ops(0).to_vec();
        let mid = ops.len() / 2;
        for (i, op) in ops.iter().enumerate() {
            if i == mid {
                p2.push(0, OpKind::JoinStrand);
            }
            p2.push(0, *op);
        }
        fenced = p2;
        let fenced_pmo = Pmo::compute(&fenced.single_threaded_execution(), MemoryModel::StrandWeaver);
        let fenced_states = crash::enumerate_states(&fenced_pmo, &observe);
        prop_assert!(
            fenced_states.is_subset(&base),
            "a fence created a new reachable state"
        );
    }
}
