//! `sw-perf`: self-profiling for the simulator's discrete-event hot path.
//!
//! The crate follows the same discipline as `sw-trace`'s `NullSink`: the
//! instrumentation is always compiled in, and when profiling is disabled
//! every site reduces to a branch on an `Option` discriminant (the
//! `perf_overhead` criterion bench in `sw-bench` checks this). When
//! enabled, the simulator times each phase of `Machine::tick` with the
//! monotonic clock ([`std::time::Instant`]) using a *lap chain*: one clock
//! read per phase boundary, so a cycle with `P` instrumented boundaries
//! costs `P` reads, not `2P`.
//!
//! Three layers:
//!
//! 1. [`Profiler`] — per-machine accumulator with one fixed slot per
//!    [`Phase`] (`nanos`, `calls`) plus the run's wall clock.
//! 2. [`PerfSnapshot`] — a frozen, comparable (`Eq`) copy embedded in
//!    `SimStats` and rendered to JSON / a table.
//! 3. **Ambient enable** — a process-wide flag ([`set_global_enabled`])
//!    that makes every subsequently constructed `Machine` install a
//!    profiler, plus a mutex-guarded aggregate ([`global_merge`] /
//!    [`global_take`]) that sums snapshots across the design-sweep worker
//!    threads without plumbing a handle through every call site.
//!
//! Like the rest of the workspace, serialization goes through the
//! hand-rolled `sw-trace` JSON model (no serde offline).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sw_trace::Json;

/// One instrumented phase of the simulator's per-cycle event loop.
///
/// The slots mirror the statement order of `Machine::tick`: the PM
/// controller drains, coherence steals resolve, then per core the
/// `PersistEngine::backend` hook runs, the store queue retires, the
/// write-back flush engine drains, the frontend issues, stall intervals
/// reconcile, and the done-check retires finished cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `PmController::tick` — write-queue drain pacing (`memctrl.rs`).
    Memctrl,
    /// Cross-core coherence steal resolution (`cache.rs` state moves).
    Coherence,
    /// The per-design `PersistEngine::backend` hook (persist queue,
    /// strand-buffer unit, flush slots — `engines/*`).
    Engine,
    /// Store-queue retirement and persist-op drain (`writeback.rs`).
    StoreQueue,
    /// Dirty-line write-back flush engine (`writeback.rs`).
    Writeback,
    /// Instruction issue: loads, stores, CLWBs, fences (`pipeline.rs`).
    Frontend,
    /// Observability reconciliation (stall intervals, queue gauges).
    Observe,
    /// Per-core done-check and retirement bookkeeping.
    Retire,
}

impl Phase {
    /// All phases, in `Machine::tick` statement order.
    pub const ALL: [Phase; 8] = [
        Phase::Memctrl,
        Phase::Coherence,
        Phase::Engine,
        Phase::StoreQueue,
        Phase::Writeback,
        Phase::Frontend,
        Phase::Observe,
        Phase::Retire,
    ];

    /// Short stable label used in exports and `BENCH_*.json`.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Memctrl => "memctrl",
            Phase::Coherence => "coherence",
            Phase::Engine => "engine",
            Phase::StoreQueue => "store_queue",
            Phase::Writeback => "writeback",
            Phase::Frontend => "frontend",
            Phase::Observe => "observe",
            Phase::Retire => "retire",
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhaseSlot {
    nanos: u64,
    calls: u64,
}

/// Per-machine profiling accumulator.
///
/// Owned by `Machine` as `Option<Box<Profiler>>`; `None` is the disabled
/// path. The wall clock starts at construction and stops at
/// [`Profiler::snapshot`].
#[derive(Debug)]
pub struct Profiler {
    start: Instant,
    slots: [PhaseSlot; Phase::ALL.len()],
}

impl Profiler {
    /// Starts a profiler; the wall clock begins now.
    pub fn new() -> Self {
        Profiler {
            start: Instant::now(),
            slots: [PhaseSlot::default(); Phase::ALL.len()],
        }
    }

    /// Attributes `nanos` to `phase`.
    #[inline]
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        let slot = &mut self.slots[phase as usize];
        slot.nanos += nanos;
        slot.calls += 1;
    }

    /// Freezes the accumulated timings. Every phase appears, including
    /// zero-call ones (the explicit-zeros convention the stall counters
    /// follow).
    pub fn snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            wall_nanos: self.start.elapsed().as_nanos() as u64,
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let slot = self.slots[p as usize];
                    PhaseStat {
                        phase: p.label(),
                        nanos: slot.nanos,
                        calls: slot.calls,
                    }
                })
                .collect(),
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

/// A lap chain: the timestamp of the previous phase boundary.
///
/// `Lap::begin(false)` yields an inert lap whose [`mark`](Lap::mark) is
/// never reached (the caller gates on its profiler being present), so the
/// disabled path reads no clocks.
#[derive(Debug, Clone, Copy)]
pub struct Lap(Option<Instant>);

impl Lap {
    /// Starts a lap chain; reads the clock only when `enabled`.
    #[inline]
    pub fn begin(enabled: bool) -> Self {
        Lap(if enabled { Some(Instant::now()) } else { None })
    }

    /// Closes the current lap, attributing the elapsed time to `phase`,
    /// and starts the next lap at the same instant (one clock read).
    #[inline]
    pub fn mark(&mut self, prof: &mut Profiler, phase: Phase) {
        if let Some(t0) = self.0 {
            let now = Instant::now();
            prof.record(phase, now.saturating_duration_since(t0).as_nanos() as u64);
            self.0 = Some(now);
        }
    }
}

/// Wall time and calls attributed to one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Stable phase label ([`Phase::label`]).
    pub phase: &'static str,
    /// Wall nanoseconds spent inside the phase.
    pub nanos: u64,
    /// Times the phase boundary was crossed.
    pub calls: u64,
}

/// A frozen profile: run wall time plus the per-phase breakdown.
///
/// Derives `Eq` so `SimStats` (which embeds it) can keep deriving `Eq`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Wall nanoseconds from profiler construction to snapshot. For a
    /// merged snapshot this is the *sum* over runs (CPU-time-like when
    /// sweep cells ran on worker threads).
    pub wall_nanos: u64,
    /// Per-phase attribution, in [`Phase::ALL`] order; merged snapshots
    /// keep one entry per label.
    pub phases: Vec<PhaseStat>,
}

impl PerfSnapshot {
    /// Sum of nanoseconds attributed to phases. Laps are disjoint
    /// subintervals of the run, so this never exceeds [`wall_nanos`]
    /// (`PerfSnapshot::wall_nanos`) for an unmerged snapshot.
    pub fn phase_nanos_total(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }

    /// Share of phase-attributed time spent in `phase`, in percent
    /// (0 when nothing was attributed at all).
    pub fn pct(&self, phase: &str) -> f64 {
        let total = self.phase_nanos_total();
        if total == 0 {
            return 0.0;
        }
        let nanos = self
            .phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0, |p| p.nanos);
        nanos as f64 * 100.0 / total as f64
    }

    /// The `n` phases with the largest attribution, descending, as
    /// `(label, percent)` pairs. Zero-time phases are skipped.
    pub fn hot_phases(&self, n: usize) -> Vec<(&'static str, f64)> {
        let mut ranked: Vec<&PhaseStat> = self.phases.iter().filter(|p| p.nanos > 0).collect();
        ranked.sort_by_key(|p| std::cmp::Reverse(p.nanos));
        ranked
            .into_iter()
            .take(n)
            .map(|p| (p.phase, self.pct(p.phase)))
            .collect()
    }

    /// Whether any time or calls were attributed.
    pub fn is_empty(&self) -> bool {
        self.wall_nanos == 0 && self.phases.iter().all(|p| p.nanos == 0 && p.calls == 0)
    }

    /// Accumulates `other` into `self`, matching phases by label and
    /// appending labels `self` has not seen.
    pub fn merge(&mut self, other: &PerfSnapshot) {
        self.wall_nanos += other.wall_nanos;
        for theirs in &other.phases {
            match self.phases.iter_mut().find(|p| p.phase == theirs.phase) {
                Some(ours) => {
                    ours.nanos += theirs.nanos;
                    ours.calls += theirs.calls;
                }
                None => self.phases.push(*theirs),
            }
        }
    }

    /// JSON object: `{"wall_nanos":…,"phases":[{"phase":…,"nanos":…,
    /// "calls":…,"pct":…},…]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("wall_nanos".to_string(), Json::U64(self.wall_nanos)),
            (
                "phases".to_string(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("phase".to_string(), Json::Str(p.phase.to_string())),
                                ("nanos".to_string(), Json::U64(p.nanos)),
                                ("calls".to_string(), Json::U64(p.calls)),
                                ("pct".to_string(), Json::F64(self.pct(p.phase))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Fixed-width table of the per-phase breakdown.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>14} {:>12} {:>7}\n",
            "phase", "nanos", "calls", "pct"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<12} {:>14} {:>12} {:>6.1}%\n",
                p.phase,
                p.nanos,
                p.calls,
                self.pct(p.phase)
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>14}   (wall {} ns)\n",
            "total",
            self.phase_nanos_total(),
            self.wall_nanos
        ));
        out
    }
}

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL_AGGREGATE: Mutex<Option<PerfSnapshot>> = Mutex::new(None);

/// Turns ambient profiling on or off. While on, every `Machine` built
/// afterwards installs a profiler and merges its snapshot into the global
/// aggregate when the run finishes.
pub fn set_global_enabled(on: bool) {
    GLOBAL_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether ambient profiling is on.
pub fn global_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::SeqCst)
}

/// Adds `snap` to the process-wide aggregate (thread-safe; design-sweep
/// worker threads all land here).
pub fn global_merge(snap: &PerfSnapshot) {
    let mut agg = GLOBAL_AGGREGATE.lock().expect("perf aggregate poisoned");
    agg.get_or_insert_with(PerfSnapshot::default).merge(snap);
}

/// Takes and resets the process-wide aggregate (empty snapshot if nothing
/// was merged since the last take).
pub fn global_take() -> PerfSnapshot {
    GLOBAL_AGGREGATE
        .lock()
        .expect("perf aggregate poisoned")
        .take()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_are_unique() {
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::ALL.len());
    }

    #[test]
    fn snapshot_reports_every_phase_with_explicit_zeros() {
        let mut prof = Profiler::new();
        prof.record(Phase::Engine, 10);
        let snap = prof.snapshot();
        assert_eq!(snap.phases.len(), Phase::ALL.len());
        let frontend = snap.phases.iter().find(|p| p.phase == "frontend").unwrap();
        assert_eq!((frontend.nanos, frontend.calls), (0, 0));
        let engine = snap.phases.iter().find(|p| p.phase == "engine").unwrap();
        assert_eq!((engine.nanos, engine.calls), (10, 1));
    }

    #[test]
    fn lap_chain_attributes_disjoint_intervals() {
        let mut prof = Profiler::new();
        let mut lap = Lap::begin(true);
        std::hint::black_box(0u64);
        lap.mark(&mut prof, Phase::Memctrl);
        std::hint::black_box(0u64);
        lap.mark(&mut prof, Phase::Frontend);
        let snap = prof.snapshot();
        assert_eq!(snap.phases.iter().map(|p| p.calls).sum::<u64>(), 2);
        // Laps are sub-intervals of the profiler's lifetime.
        assert!(snap.phase_nanos_total() <= snap.wall_nanos);
    }

    #[test]
    fn disabled_lap_records_nothing() {
        let mut prof = Profiler::new();
        let mut lap = Lap::begin(false);
        lap.mark(&mut prof, Phase::Memctrl);
        assert_eq!(
            prof.snapshot().phases.iter().map(|p| p.calls).sum::<u64>(),
            0
        );
    }

    #[test]
    fn merge_sums_by_label() {
        let mut a = PerfSnapshot {
            wall_nanos: 100,
            phases: vec![PhaseStat {
                phase: "engine",
                nanos: 60,
                calls: 3,
            }],
        };
        let b = PerfSnapshot {
            wall_nanos: 50,
            phases: vec![
                PhaseStat {
                    phase: "engine",
                    nanos: 40,
                    calls: 2,
                },
                PhaseStat {
                    phase: "frontend",
                    nanos: 10,
                    calls: 1,
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.wall_nanos, 150);
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].nanos, 100);
        assert_eq!(a.phases[0].calls, 5);
        assert!((a.pct("engine") - 100.0 * 100.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn hot_phases_rank_descending_and_skip_zeros() {
        let snap = PerfSnapshot {
            wall_nanos: 100,
            phases: vec![
                PhaseStat {
                    phase: "memctrl",
                    nanos: 10,
                    calls: 1,
                },
                PhaseStat {
                    phase: "engine",
                    nanos: 70,
                    calls: 1,
                },
                PhaseStat {
                    phase: "observe",
                    nanos: 0,
                    calls: 0,
                },
                PhaseStat {
                    phase: "frontend",
                    nanos: 20,
                    calls: 1,
                },
            ],
        };
        let hot = snap.hot_phases(3);
        assert_eq!(
            hot.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec!["engine", "frontend", "memctrl"]
        );
        assert!((hot[0].1 - 70.0).abs() < 1e-9);
    }

    #[test]
    fn json_carries_phases_and_pct() {
        let mut prof = Profiler::new();
        prof.record(Phase::Writeback, 25);
        prof.record(Phase::Writeback, 75);
        let rendered = prof.snapshot().to_json().render();
        assert!(rendered.contains("\"phase\":\"writeback\""));
        assert!(rendered.contains("\"calls\":2"));
        let parsed = sw_trace::json::parse(&rendered).expect("perf json parses back");
        let phases = parsed.get("phases").and_then(Json::as_arr).unwrap();
        assert_eq!(phases.len(), Phase::ALL.len());
    }

    #[test]
    fn global_aggregate_round_trips() {
        // Serialized against other tests by taking before and after.
        let _ = global_take();
        assert!(!global_enabled());
        let snap = PerfSnapshot {
            wall_nanos: 7,
            phases: vec![PhaseStat {
                phase: "engine",
                nanos: 7,
                calls: 1,
            }],
        };
        global_merge(&snap);
        global_merge(&snap);
        let agg = global_take();
        assert_eq!(agg.wall_nanos, 14);
        assert!(global_take().is_empty());
    }
}
