//! Typed byte and cache-line addresses.

use std::fmt;

/// Size of a cache line in bytes, matching the simulated machine (Table I).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Size of a machine word in bytes. All workload data is word-granular.
pub const WORD_BYTES: u64 = 8;

/// Number of words in one cache line.
pub const WORDS_PER_LINE: usize = (CACHE_LINE_BYTES / WORD_BYTES) as usize;

/// A byte address in the simulated physical address space.
///
/// Addresses used for data accesses are word-aligned; [`Addr::word_aligned`]
/// constructs one with a debug assertion. The zero address is valid (the
/// substrate has no MMU), but [`PmLayout`](crate::PmLayout) never hands it
/// out, so callers may use it as a null sentinel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null sentinel address. Never allocated by [`PmLayout`](crate::PmLayout).
    pub const NULL: Addr = Addr(0);

    /// Creates a word-aligned address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `raw` is not a multiple of [`WORD_BYTES`].
    #[inline]
    pub fn word_aligned(raw: u64) -> Self {
        debug_assert_eq!(raw % WORD_BYTES, 0, "address {raw:#x} is not word aligned");
        Addr(raw)
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / CACHE_LINE_BYTES)
    }

    /// Returns the word index of this address within its cache line.
    #[inline]
    pub fn word_in_line(self) -> usize {
        ((self.0 % CACHE_LINE_BYTES) / WORD_BYTES) as usize
    }

    /// Returns the address `words` machine words after `self`.
    #[inline]
    pub fn offset_words(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }

    /// Returns the raw byte address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line index (byte address divided by [`CACHE_LINE_BYTES`]).
///
/// Cache lines are the granularity of persists: a `CLWB` flushes one line,
/// and the PM controller accepts one line per write-queue entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Returns the byte address of the first word in the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * CACHE_LINE_BYTES)
    }

    /// Returns the byte address of word `word` (0-based) within the line.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `word >= WORDS_PER_LINE`.
    #[inline]
    pub fn word(self, word: usize) -> Addr {
        debug_assert!(word < WORDS_PER_LINE);
        self.base().offset_words(word as u64)
    }

    /// Returns the raw line index.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_address() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(1000 * 64 + 8).line(), LineAddr(1000));
    }

    #[test]
    fn word_in_line() {
        assert_eq!(Addr(0).word_in_line(), 0);
        assert_eq!(Addr(8).word_in_line(), 1);
        assert_eq!(Addr(56).word_in_line(), 7);
        assert_eq!(Addr(64).word_in_line(), 0);
    }

    #[test]
    fn offset_words_advances_bytes() {
        let a = Addr(128);
        assert_eq!(a.offset_words(3), Addr(128 + 24));
    }

    #[test]
    fn line_base_and_word_roundtrip() {
        let l = LineAddr(5);
        assert_eq!(l.base(), Addr(320));
        assert_eq!(l.word(7), Addr(320 + 56));
        assert_eq!(l.word(7).line(), l);
    }

    #[test]
    fn null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(8).is_null());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Addr(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr(2)), "L0x2");
        assert_eq!(format!("{:?}", Addr(0x40)), "Addr(0x40)");
    }

    #[test]
    #[cfg(debug_assertions)] // the check is a debug_assert, absent in release
    #[should_panic(expected = "not word aligned")]
    fn misaligned_word_address_panics_in_debug() {
        let _ = Addr::word_aligned(13);
    }
}
