//! Crash-consistent buddy allocator over the persistent heap.
//!
//! The heap is split into [`HEAP_POOLS`] independently-recoverable pools.
//! Each pool holds a power-of-two *arena* of cache lines followed by a
//! metadata block that lives in PM:
//!
//! ```text
//! pool p:  [ arena: 2^k data lines | header (1 line) | journal
//!            (HEAP_JOURNAL_SLOTS lines) | table A | table B ]
//! ```
//!
//! Allocator state is reconstructed at recovery from two PM structures:
//!
//! * a **redo journal** of alloc/free records, one 64-byte slot per
//!   record, published checksum-last exactly like the undo log of
//!   `sw-lang` (a torn record fails its checksum and is ignored — the
//!   in-flight allocation it described is thereby reclaimed);
//! * a double-buffered **checkpoint table** of live blocks written with
//!   the entries-then-commit-last discipline of `remap.rs`: entries and
//!   their count first, a fence, then the table's epoch word — so a
//!   crash mid-checkpoint leaves the previous table authoritative.
//!
//! Every journal record is tagged with the epoch of the checkpoint it
//! follows; records from older epochs are stale (already folded into a
//! table) and ignored by replay. All record payload words are biased by
//! +1 so a valid record contains no zero word: a checksum mismatch with
//! a zero word is a benign tear, a mismatch with all words non-zero is
//! corruption — the same taxonomy `sw-lang::classify_slot` uses.
//!
//! The volatile side ([`PoolAlloc`]) is a classic binary buddy: free
//! blocks of order *k* coalesce with their buddy (`off ^ 2^k`) on free.
//! Two allocation paths exist:
//!
//! * [`PoolAlloc::carve`] — setup-time, bump-like placement at the low
//!   frontier of the arena. Carves of arbitrary length are reserved as a
//!   run of maximal aligned power-of-two sub-blocks, so workload roots
//!   keep the exact addresses the old `Bump` allocator handed out.
//! * [`PoolAlloc::alloc`] / [`PoolAlloc::free`] — run-time dynamic
//!   blocks, rounded to a power of two. Freed blocks are quarantined in
//!   a pending list until [`PoolAlloc::release_pending`] so a block is
//!   never reused while the region that freed it could still roll back.
//!
//! Replay is deterministic and idempotent: rebuilding from (newest valid
//! table) + (epoch-matching journal records in sequence order) always
//! yields the same live-block set, and re-running it changes nothing.

use std::collections::{BTreeMap, BTreeSet};

use crate::addr::{Addr, CACHE_LINE_BYTES, WORDS_PER_LINE};
use crate::image::PmImage;
use crate::layout::PmLayout;

/// Number of independently-recoverable heap pools.
pub const HEAP_POOLS: usize = 4;
/// Journal capacity per pool, in one-line record slots.
pub const HEAP_JOURNAL_SLOTS: u64 = 256;
/// Size of one checkpoint table, in cache lines.
pub const HEAP_TABLE_LINES: u64 = 384;
/// Metadata lines per pool: header + journal + two checkpoint tables.
pub const HEAP_META_LINES: u64 = 1 + HEAP_JOURNAL_SLOTS + 2 * HEAP_TABLE_LINES;
/// Magic word identifying a formatted pool header.
pub const HEAP_MAGIC: u64 = 0x5357_4845_4150_0001;

/// Word offset of the record-kind field within a journal slot.
pub const HW_KIND: u64 = 0;
/// Word offset of the block-offset field (stored as `off + 1`).
pub const HW_OFF: u64 = 1;
/// Word offset of the block-length field (stored as `lines + 1`).
pub const HW_LEN: u64 = 2;
/// Word offset of the sequence field (stored as `seq + 1`).
pub const HW_SEQ: u64 = 3;
/// Word offset of the epoch field (stored as `epoch + 1`).
pub const HW_EPOCH: u64 = 4;
/// Word offset of the aux field (stored as `aux + 1`; aux is the
/// [`BlockKind`] code).
pub const HW_AUX: u64 = 5;
/// Word offset of the record checksum (covers words 0–5, never zero).
pub const HW_CHECKSUM: u64 = 6;

/// Word offset of a checkpoint table's epoch word (published last).
pub const TABLE_W_EPOCH: u64 = 0;
/// Word offset of a checkpoint table's entry count.
pub const TABLE_W_COUNT: u64 = 1;
/// Words per checkpoint table entry: offset, packed length, checksum.
pub const TABLE_ENTRY_WORDS: u64 = 3;
/// Maximum live blocks a checkpoint table can record.
pub const TABLE_CAPACITY: u64 =
    (HEAP_TABLE_LINES * WORDS_PER_LINE as u64 - TABLE_W_COUNT - 1) / TABLE_ENTRY_WORDS;

const KIND_ALLOC: u64 = 1;
const KIND_FREE: u64 = 2;
/// Bit of the packed-length table word that marks a carve block.
const CARVE_BIT: u64 = 1 << 63;

/// How a live block was allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Setup-time frontier carve (never freed; arbitrary length).
    Carve,
    /// Run-time buddy block (power-of-two length; freeable).
    Dynamic,
}

impl BlockKind {
    fn code(self) -> u64 {
        match self {
            BlockKind::Dynamic => 0,
            BlockKind::Carve => 1,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(BlockKind::Dynamic),
            1 => Some(BlockKind::Carve),
            _ => None,
        }
    }
}

/// A decoded, checksum-valid journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapRecord {
    /// `true` for an alloc record, `false` for a free record.
    pub is_alloc: bool,
    /// Arena line offset of the block.
    pub off: u64,
    /// Block length in lines.
    pub lines: u64,
    /// Per-pool monotonic sequence number (replay order).
    pub seq: u64,
    /// Checkpoint epoch the record belongs to.
    pub epoch: u64,
    /// Block kind.
    pub kind: BlockKind,
    /// Journal slot the record was read from.
    pub slot: u64,
}

/// Classification of one journal slot in a crashed image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapSlotState {
    /// All-zero slot: never written this epoch.
    Free,
    /// Checksum-valid record.
    Valid(HeapRecord),
    /// Checksum mismatch with at least one zero word: a partial persist
    /// of a record that was mid-publication — benign, the in-flight
    /// operation is reclaimed by ignoring it.
    Torn,
    /// Checksum mismatch with every word non-zero: cannot be a tear of
    /// a checksum-last publication — silent corruption.
    Corrupt,
    /// Uncorrectable media error on the slot's line.
    Poisoned,
}

/// Journal record checksum: a cheap mix over the six payload words,
/// for tear detection under word-granular crash sampling (same shape as
/// the undo-log entry checksum of `sw-lang`, distinct salt).
pub fn heap_record_checksum(words: &[u64; 6]) -> u64 {
    const SALT: u64 = 0x51f0_a11c_0de5_ee01;
    let mut h = SALT;
    for &w in words {
        h = (h ^ w).wrapping_mul(0x100_0000_01b3);
        h = h.rotate_left(23);
    }
    // Never collide with the zero word of a freshly-zeroed slot.
    h | 1
}

/// Encodes a journal record as the eight words of its slot line. All
/// payload words carry a +1 bias so a valid record has no zero word.
pub fn encode_heap_record(
    is_alloc: bool,
    off: u64,
    lines: u64,
    seq: u64,
    epoch: u64,
    kind: BlockKind,
) -> [u64; 8] {
    let payload = [
        if is_alloc { KIND_ALLOC } else { KIND_FREE },
        off + 1,
        lines + 1,
        seq + 1,
        epoch + 1,
        kind.code() + 1,
    ];
    let mut w = [0u64; 8];
    w[..6].copy_from_slice(&payload);
    w[HW_CHECKSUM as usize] = heap_record_checksum(&payload);
    w
}

/// Classifies the journal slot whose line starts at `base`.
pub fn classify_heap_slot(img: &PmImage, base: Addr) -> HeapSlotState {
    if img.is_poisoned(base.line()) {
        return HeapSlotState::Poisoned;
    }
    let w: Vec<u64> = (0..8).map(|i| img.load(base.offset_words(i))).collect();
    if w.iter().all(|&v| v == 0) {
        return HeapSlotState::Free;
    }
    let payload = [w[0], w[1], w[2], w[3], w[4], w[5]];
    let kind_ok = w[0] == KIND_ALLOC || w[0] == KIND_FREE;
    if kind_ok
        && w[HW_CHECKSUM as usize] == heap_record_checksum(&payload)
        && payload.iter().all(|&v| v != 0)
    {
        if let Some(kind) = BlockKind::from_code(w[HW_AUX as usize] - 1) {
            return HeapSlotState::Valid(HeapRecord {
                is_alloc: w[0] == KIND_ALLOC,
                off: w[HW_OFF as usize] - 1,
                lines: w[HW_LEN as usize] - 1,
                seq: w[HW_SEQ as usize] - 1,
                epoch: w[HW_EPOCH as usize] - 1,
                kind,
                slot: 0,
            });
        }
    }
    // A checksum-last publication can only lose a suffix of its words
    // (or whole words at random under the word-granular sampler); any
    // mismatch that still contains a zero word is explainable as a tear.
    if w[..7].contains(&0) {
        HeapSlotState::Torn
    } else {
        HeapSlotState::Corrupt
    }
}

/// Checkpoint table entry checksum (covers the entry's position and the
/// epoch it was written under, `remap.rs`-style).
pub fn heap_table_checksum(epoch: u64, index: u64, off: u64, packed_len: u64) -> u64 {
    (off ^ packed_len.rotate_left(17) ^ epoch.rotate_left(31) ^ index.rotate_left(47))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ 0x5151_5151_5151_5151
}

/// Encodes a checkpoint of `blocks` under `epoch` as word writes
/// relative to the table base.
///
/// The returned groups must be made durable in order, with a persist
/// barrier between them: `pre` (zero the stale epoch word), `body`
/// (entries, then count), and finally `publish` (the epoch word). A
/// crash before `publish` leaves the table unreadable (epoch 0 or
/// stale) and the previous table authoritative.
///
/// # Panics
///
/// Panics if `blocks` exceeds [`TABLE_CAPACITY`] or `epoch` is zero.
pub fn encode_checkpoint(epoch: u64, blocks: &[(u64, u64, BlockKind)]) -> CheckpointWrites {
    assert!(epoch > 0, "checkpoint epochs start at 1");
    assert!(
        blocks.len() as u64 <= TABLE_CAPACITY,
        "checkpoint overflow: {} live blocks > capacity {}",
        blocks.len(),
        TABLE_CAPACITY
    );
    let mut body = Vec::with_capacity(blocks.len() * 3 + 1);
    for (i, &(off, lines, kind)) in blocks.iter().enumerate() {
        let packed = match kind {
            BlockKind::Carve => lines | CARVE_BIT,
            BlockKind::Dynamic => lines,
        };
        let base = TABLE_W_COUNT + 1 + i as u64 * TABLE_ENTRY_WORDS;
        body.push((base, off));
        body.push((base + 1, packed));
        body.push((base + 2, heap_table_checksum(epoch, i as u64, off, packed)));
    }
    body.push((TABLE_W_COUNT, blocks.len() as u64));
    CheckpointWrites {
        pre: vec![(TABLE_W_EPOCH, 0)],
        body,
        publish: (TABLE_W_EPOCH, epoch),
    }
}

/// Fence-separated write groups of one checkpoint (see
/// [`encode_checkpoint`]). Offsets are words relative to the table base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointWrites {
    /// Invalidate the target table before reuse.
    pub pre: Vec<(u64, u64)>,
    /// Entries followed by the entry count.
    pub body: Vec<(u64, u64)>,
    /// The epoch word — durable last; publishing the checkpoint.
    pub publish: (u64, u64),
}

/// A checkpointed block list: `(arena line offset, lines, kind)` per block.
pub type BlockList = Vec<(u64, u64, BlockKind)>;

/// Result of decoding one checkpoint table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableDecode {
    /// Epoch word is zero: never published, or mid-checkpoint.
    Empty,
    /// A published, self-consistent table.
    Valid {
        /// Epoch the table was written under.
        epoch: u64,
        /// Live blocks at checkpoint time.
        blocks: BlockList,
    },
    /// The table is published but fails its checksums, or a table line
    /// is poisoned. `entry` is the first bad entry index (`u64::MAX`
    /// for header/poison damage).
    Damaged {
        /// First damaged entry, or `u64::MAX`.
        entry: u64,
        /// `true` when the damage is a poisoned line.
        poisoned: bool,
    },
}

/// Decodes the checkpoint table at `base`.
pub fn decode_table(img: &PmImage, base: Addr) -> TableDecode {
    for l in 0..HEAP_TABLE_LINES {
        if img.is_poisoned(Addr(base.raw() + l * CACHE_LINE_BYTES).line()) {
            return TableDecode::Damaged {
                entry: u64::MAX,
                poisoned: true,
            };
        }
    }
    let epoch = img.load(base.offset_words(TABLE_W_EPOCH));
    if epoch == 0 {
        return TableDecode::Empty;
    }
    let count = img.load(base.offset_words(TABLE_W_COUNT));
    if count > TABLE_CAPACITY {
        return TableDecode::Damaged {
            entry: u64::MAX,
            poisoned: false,
        };
    }
    // The epoch word persists after everything else (fence-ordered), so
    // under a published epoch the entries are complete: any checksum
    // mismatch here is corruption, not a tear.
    let mut blocks = Vec::with_capacity(count as usize);
    for i in 0..count {
        let e = base.offset_words(TABLE_W_COUNT + 1 + i * TABLE_ENTRY_WORDS);
        let off = img.load(e);
        let packed = img.load(e.offset_words(1));
        let sum = img.load(e.offset_words(2));
        if sum != heap_table_checksum(epoch, i, off, packed) {
            return TableDecode::Damaged {
                entry: i,
                poisoned: false,
            };
        }
        let kind = if packed & CARVE_BIT != 0 {
            BlockKind::Carve
        } else {
            BlockKind::Dynamic
        };
        blocks.push((off, packed & !CARVE_BIT, kind));
    }
    TableDecode::Valid { epoch, blocks }
}

/// Damage found in a pool's PM metadata during the recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapFault {
    /// A metadata line is poisoned (header, journal slot, or table).
    Poisoned {
        /// Pool index.
        pool: usize,
        /// Poisoned line (`LineAddr` raw value).
        line: u64,
    },
    /// A journal slot fails its checksum with no zero word.
    CorruptRecord {
        /// Pool index.
        pool: usize,
        /// Journal slot index.
        slot: u64,
    },
    /// A journal slot is torn (benign: the in-flight record is
    /// reclaimed by ignoring it).
    TornRecord {
        /// Pool index.
        pool: usize,
        /// Journal slot index.
        slot: u64,
    },
    /// A published checkpoint table fails its checksums.
    CorruptTable {
        /// Pool index.
        pool: usize,
        /// First damaged entry index, or `u64::MAX`.
        entry: u64,
    },
    /// The pool header holds neither zero nor [`HEAP_MAGIC`].
    BadHeader {
        /// Pool index.
        pool: usize,
    },
    /// The journal replays to an inconsistent state (overlapping allocs
    /// or a free of a non-live block).
    InconsistentJournal {
        /// Pool index.
        pool: usize,
        /// Slot of the record that failed to apply.
        slot: u64,
    },
}

impl HeapFault {
    /// `true` when Strict-policy recovery must reject the image.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, HeapFault::TornRecord { .. })
    }

    /// The pool the fault was found in.
    pub fn pool(&self) -> usize {
        match *self {
            HeapFault::Poisoned { pool, .. }
            | HeapFault::CorruptRecord { pool, .. }
            | HeapFault::TornRecord { pool, .. }
            | HeapFault::CorruptTable { pool, .. }
            | HeapFault::BadHeader { pool }
            | HeapFault::InconsistentJournal { pool, .. } => pool,
        }
    }
}

/// Result of scanning one pool's PM metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolScan {
    /// Pool index.
    pub pool: usize,
    /// `true` when the pool header carries [`HEAP_MAGIC`].
    pub formatted: bool,
    /// Active checkpoint epoch (0 before the first checkpoint).
    pub epoch: u64,
    /// Live blocks recorded by the newest valid checkpoint table.
    pub base_blocks: BlockList,
    /// Valid journal records of the active epoch, sequence-sorted.
    pub records: Vec<HeapRecord>,
    /// Valid records from older epochs (already folded into a table).
    pub stale_records: u64,
    /// One past the highest journal slot observed in any non-free
    /// state — appends after recovery must start above every occupied
    /// or damaged slot.
    pub high_slot: u64,
    /// All damage found, benign tears included.
    pub faults: Vec<HeapFault>,
}

impl PoolScan {
    /// Journal slots holding torn (reclaimed in-flight) records.
    pub fn torn_slots(&self) -> u64 {
        self.faults
            .iter()
            .filter(|f| matches!(f, HeapFault::TornRecord { .. }))
            .count() as u64
    }

    /// `true` when the scan found damage Strict recovery must reject.
    pub fn has_fatal(&self) -> bool {
        self.faults.iter().any(HeapFault::is_fatal)
    }
}

/// Scans pool `pool`'s PM metadata: header, both checkpoint tables, and
/// every journal slot. Read-only; never mutates the image.
pub fn scan_pool(img: &PmImage, layout: &PmLayout, pool: usize) -> PoolScan {
    let mut scan = PoolScan {
        pool,
        formatted: false,
        epoch: 0,
        base_blocks: Vec::new(),
        records: Vec::new(),
        stale_records: 0,
        high_slot: 0,
        faults: Vec::new(),
    };
    let header = layout.pool_meta_base(pool);
    if img.is_poisoned(header.line()) {
        scan.faults.push(HeapFault::Poisoned {
            pool,
            line: header.line().raw(),
        });
        return scan;
    }
    match img.load(header) {
        0 => return scan, // never formatted: nothing to recover
        HEAP_MAGIC => scan.formatted = true,
        _ => {
            scan.faults.push(HeapFault::BadHeader { pool });
            return scan;
        }
    }
    // Newest published table wins; a damaged table is fatal only if it
    // is the newest (an older damaged table is already superseded).
    let mut best: Option<(u64, BlockList)> = None;
    let mut damaged_tables = Vec::new();
    for which in 0..2 {
        match decode_table(img, layout.heap_table_base(pool, which)) {
            TableDecode::Empty => {}
            TableDecode::Valid { epoch, blocks } => {
                if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
                    best = Some((epoch, blocks));
                }
            }
            TableDecode::Damaged { entry, poisoned } => {
                if poisoned {
                    damaged_tables.push(HeapFault::Poisoned {
                        pool,
                        line: layout.heap_table_base(pool, which).line().raw(),
                    });
                } else {
                    damaged_tables.push(HeapFault::CorruptTable { pool, entry });
                }
            }
        }
    }
    scan.faults.extend(damaged_tables);
    if let Some((epoch, blocks)) = best {
        scan.epoch = epoch;
        scan.base_blocks = blocks;
    }
    for slot in 0..HEAP_JOURNAL_SLOTS {
        let base = layout.heap_journal_slot(pool, slot);
        let state = classify_heap_slot(img, base);
        if state != HeapSlotState::Free {
            scan.high_slot = slot + 1;
        }
        match state {
            HeapSlotState::Free => {}
            HeapSlotState::Valid(mut r) => {
                if r.epoch == scan.epoch {
                    r.slot = slot;
                    scan.records.push(r);
                } else {
                    scan.stale_records += 1;
                }
            }
            HeapSlotState::Torn => scan.faults.push(HeapFault::TornRecord { pool, slot }),
            HeapSlotState::Corrupt => scan.faults.push(HeapFault::CorruptRecord { pool, slot }),
            HeapSlotState::Poisoned => scan.faults.push(HeapFault::Poisoned {
                pool,
                line: base.line().raw(),
            }),
        }
    }
    scan.records.sort_by_key(|r| r.seq);
    scan
}

/// Running statistics of one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frontier carves performed.
    pub carves: u64,
    /// Dynamic allocations performed.
    pub allocs: u64,
    /// Frees performed.
    pub frees: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

/// Volatile buddy-allocator state of one pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolAlloc {
    arena_lines: u64,
    max_order: u32,
    /// Free block offsets, indexed by order.
    free: Vec<BTreeSet<u64>>,
    /// Live blocks by offset.
    live: BTreeMap<u64, (u64, BlockKind)>,
    /// Low-water carve frontier (line offset).
    frontier: u64,
    /// Freed blocks quarantined until [`PoolAlloc::release_pending`].
    pending: Vec<(u64, u64)>,
    /// Next journal slot to append to.
    pub next_slot: u64,
    /// Next record sequence number.
    pub next_seq: u64,
    /// Current checkpoint epoch.
    pub epoch: u64,
    /// Operation counters.
    pub stats: PoolStats,
}

fn order_of(lines: u64) -> u32 {
    debug_assert!(lines.is_power_of_two());
    lines.trailing_zeros()
}

impl PoolAlloc {
    /// An empty pool over a power-of-two arena of `arena_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `arena_lines` is not a power of two.
    pub fn new(arena_lines: u64) -> Self {
        assert!(
            arena_lines.is_power_of_two(),
            "arena must be a power of two"
        );
        let max_order = order_of(arena_lines);
        let mut free = vec![BTreeSet::new(); max_order as usize + 1];
        free[max_order as usize].insert(0);
        Self {
            arena_lines,
            max_order,
            free,
            live: BTreeMap::new(),
            frontier: 0,
            pending: Vec::new(),
            next_slot: 0,
            next_seq: 0,
            epoch: 0,
            stats: PoolStats::default(),
        }
    }

    /// Arena size in lines.
    pub fn arena_lines(&self) -> u64 {
        self.arena_lines
    }

    /// Current carve frontier (line offset).
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Claims the block of `1 << order` lines at `off`, splitting larger
    /// free blocks as needed. Fails if any part of it is not free.
    fn claim(&mut self, off: u64, order: u32) -> Result<(), ()> {
        for o in order..=self.max_order {
            let sup = off & !((1u64 << o) - 1);
            if self.free[o as usize].remove(&sup) {
                // Split back down, keeping the half containing `off`.
                let mut b = sup;
                for o2 in (order..o).rev() {
                    let half = 1u64 << o2;
                    if off < b + half {
                        self.free[o2 as usize].insert(b + half);
                    } else {
                        self.free[o2 as usize].insert(b);
                        b += half;
                    }
                }
                debug_assert_eq!(b, off);
                return Ok(());
            }
        }
        Err(())
    }

    /// Returns a free block of `1 << order` lines to the free lists,
    /// coalescing with its buddy greedily.
    fn insert_free(&mut self, mut off: u64, mut order: u32) {
        while order < self.max_order {
            let buddy = off ^ (1u64 << order);
            if !self.free[order as usize].remove(&buddy) {
                break;
            }
            off = off.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(off);
    }

    /// Reserves the arbitrary-length range `[off, off + lines)` as a run
    /// of maximal aligned power-of-two sub-blocks. Fails (leaving a
    /// partial reservation) if any part is not free; callers treat that
    /// as journal inconsistency.
    fn reserve_range(&mut self, off: u64, lines: u64) -> Result<(), ()> {
        if off + lines > self.arena_lines {
            return Err(());
        }
        let mut cur = off;
        let end = off + lines;
        while cur < end {
            let align = if cur == 0 {
                self.max_order
            } else {
                cur.trailing_zeros().min(self.max_order)
            };
            let fit = 63 - (end - cur).leading_zeros();
            let order = align.min(fit);
            self.claim(cur, order)?;
            cur += 1u64 << order;
        }
        Ok(())
    }

    /// Registers `[off, off + lines)` as a live block without touching
    /// the free lists (rebuild helper).
    fn insert_live(&mut self, off: u64, lines: u64, kind: BlockKind) -> Result<(), ()> {
        if self.live.insert(off, (lines, kind)).is_some() {
            return Err(());
        }
        Ok(())
    }

    /// Setup-time frontier carve of exactly `lines` lines (any length).
    ///
    /// `carve(0)` is well-defined: it returns the current frontier and
    /// allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the range at the frontier is not free — carves must
    /// precede dynamic allocation.
    pub fn carve(&mut self, lines: u64) -> Option<u64> {
        if lines == 0 {
            return Some(self.frontier);
        }
        let off = self.frontier;
        if off + lines > self.arena_lines {
            return None;
        }
        self.reserve_range(off, lines)
            .expect("heap carve after dynamic allocation");
        self.insert_live(off, lines, BlockKind::Carve)
            .expect("fresh carve");
        self.frontier = off + lines;
        self.stats.carves += 1;
        Some(off)
    }

    /// Allocates a dynamic block of at least `lines` lines, rounded up
    /// to a power of two. Returns the block's line offset, preferring
    /// the lowest-addressed block of the smallest adequate order
    /// (deterministic).
    pub fn alloc(&mut self, lines: u64) -> Option<u64> {
        let block = lines.max(1).next_power_of_two();
        let order = order_of(block);
        if order > self.max_order {
            return None;
        }
        let (o, off) = (order..=self.max_order)
            .find_map(|o| self.free[o as usize].first().map(|&off| (o, off)))?;
        self.free[o as usize].remove(&off);
        // Split down keeping the low half: the upper half at each level
        // returns to the free lists.
        for o2 in (order..o).rev() {
            self.free[o2 as usize].insert(off + (1u64 << o2));
        }
        self.insert_live(off, block, BlockKind::Dynamic).ok()?;
        self.stats.allocs += 1;
        Some(off)
    }

    /// Frees the dynamic block at `off`, quarantining it until
    /// [`PoolAlloc::release_pending`]. Returns the block length for
    /// journaling, or `None` if `off` is not a live dynamic block.
    pub fn free(&mut self, off: u64) -> Option<u64> {
        match self.live.get(&off) {
            Some(&(lines, BlockKind::Dynamic)) => {
                self.live.remove(&off);
                self.pending.push((off, lines));
                self.stats.frees += 1;
                Some(lines)
            }
            _ => None,
        }
    }

    /// Returns quarantined freed blocks to the free lists. Callers must
    /// only do this once the regions that performed the frees are
    /// durably committed (otherwise a rollback could resurrect a block
    /// that was already reallocated).
    pub fn release_pending(&mut self) {
        for (off, lines) in std::mem::take(&mut self.pending) {
            self.insert_free(off, order_of(lines));
        }
    }

    /// Blocks freed but not yet returned to the free lists.
    pub fn pending_blocks(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Live blocks, address-ordered: `(offset, lines, kind)`.
    pub fn live_blocks(&self) -> impl Iterator<Item = (u64, u64, BlockKind)> + '_ {
        self.live
            .iter()
            .map(|(&off, &(lines, kind))| (off, lines, kind))
    }

    /// Number of live blocks.
    pub fn live_count(&self) -> u64 {
        self.live.len() as u64
    }

    /// Lines occupied by live blocks.
    pub fn live_lines(&self) -> u64 {
        self.live.values().map(|&(lines, _)| lines).sum()
    }

    /// Lines on the free lists (excludes quarantined pending frees).
    pub fn free_lines(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .map(|(o, s)| (s.len() as u64) << o)
            .sum()
    }

    /// Largest free block, in lines (0 when the pool is full).
    pub fn largest_free_lines(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| !s.is_empty())
            .map_or(0, |(o, _)| 1u64 << o)
    }

    /// External fragmentation: `1 - largest_free / total_free`, or 0.0
    /// when nothing is free.
    pub fn fragmentation(&self) -> f64 {
        let total = self.free_lines();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_lines() as f64 / total as f64
    }

    /// `true` when every arena line is accounted for exactly once across
    /// live blocks, free lists, and the pending quarantine.
    pub fn accounting_exact(&self) -> bool {
        let pending: u64 = self.pending.iter().map(|&(_, l)| l).sum();
        self.live_lines() + self.free_lines() + pending == self.arena_lines
    }

    /// Rebuilds a pool from a recovery scan: checkpoint base blocks
    /// first, then the epoch's journal records in sequence order.
    /// Deterministic and idempotent. Fails with the offending slot if
    /// the journal is inconsistent with itself or the table.
    pub fn rebuild(scan: &PoolScan, arena_lines: u64) -> Result<Self, HeapFault> {
        let mut p = Self::new(arena_lines);
        p.epoch = scan.epoch;
        let bad = |slot| HeapFault::InconsistentJournal {
            pool: scan.pool,
            slot,
        };
        for &(off, lines, kind) in &scan.base_blocks {
            p.reserve_range(off, lines).map_err(|()| bad(u64::MAX))?;
            p.insert_live(off, lines, kind)
                .map_err(|()| bad(u64::MAX))?;
            if kind == BlockKind::Carve {
                p.frontier = p.frontier.max(off + lines);
            }
        }
        for r in &scan.records {
            if r.is_alloc {
                p.reserve_range(r.off, r.lines).map_err(|()| bad(r.slot))?;
                p.insert_live(r.off, r.lines, r.kind)
                    .map_err(|()| bad(r.slot))?;
                if r.kind == BlockKind::Carve {
                    p.frontier = p.frontier.max(r.off + r.lines);
                }
            } else {
                match p.live.get(&r.off) {
                    Some(&(lines, BlockKind::Dynamic)) if lines == r.lines => {
                        p.live.remove(&r.off);
                        p.insert_free(r.off, order_of(lines));
                    }
                    _ => return Err(bad(r.slot)),
                }
            }
        }
        p.next_seq = scan.records.last().map_or(0, |r| r.seq + 1);
        p.next_slot = scan.high_slot;
        p.stats.allocs = scan.records.iter().filter(|r| r.is_alloc).count() as u64;
        p.stats.frees = scan.records.iter().filter(|r| !r.is_alloc).count() as u64;
        Ok(p)
    }
}

/// Outcome of recovering every pool of an image.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapRecovery {
    /// Rebuilt pools; `None` for pools whose metadata is damaged
    /// (quarantined under Salvage policy).
    pub pools: Vec<Option<PoolAlloc>>,
    /// Scan results, one per pool.
    pub scans: Vec<PoolScan>,
    /// All faults across pools, pool-ordered.
    pub faults: Vec<HeapFault>,
}

impl HeapRecovery {
    /// Pools whose metadata carried fatal damage or failed replay.
    pub fn damaged_pools(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| f.is_fatal())
            .map(|f| f.pool())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Live blocks across healthy pools.
    pub fn live_blocks(&self) -> u64 {
        self.pools.iter().flatten().map(|p| p.live_count()).sum()
    }

    /// Torn in-flight journal records reclaimed by the scan.
    pub fn reclaimed_records(&self) -> u64 {
        self.scans.iter().map(|s| s.torn_slots()).sum()
    }
}

/// Scans and rebuilds every pool of `img`, pools in parallel (each pool
/// is independently recoverable; the scans never mutate the image).
pub fn recover_heap(img: &PmImage, layout: &PmLayout) -> HeapRecovery {
    let pools = layout.heap_pools();
    let scans: Vec<PoolScan> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..pools)
            .map(|p| s.spawn(move || scan_pool(img, layout, p)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool scan"))
            .collect()
    });
    let mut out = HeapRecovery {
        pools: Vec::with_capacity(pools),
        scans: Vec::new(),
        faults: Vec::new(),
    };
    for (p, scan) in scans.into_iter().enumerate() {
        out.faults.extend(scan.faults.iter().copied());
        if scan.has_fatal() {
            out.pools.push(None);
        } else {
            match PoolAlloc::rebuild(&scan, layout.pool_arena_lines(p)) {
                Ok(pool) => out.pools.push(Some(pool)),
                Err(f) => {
                    out.faults.push(f);
                    out.pools.push(None);
                }
            }
        }
        out.scans.push(scan);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARENA: u64 = 1 << 12;

    #[test]
    fn carve_is_bump_compatible() {
        let mut p = PoolAlloc::new(ARENA);
        assert_eq!(p.carve(3), Some(0));
        assert_eq!(p.carve(1), Some(3));
        assert_eq!(p.carve(0), Some(4), "zero-size carve returns the frontier");
        assert_eq!(p.carve(4), Some(4));
        assert!(p.accounting_exact());
    }

    #[test]
    fn alloc_free_round_trip_coalesces() {
        let mut p = PoolAlloc::new(ARENA);
        let a = p.alloc(4).unwrap();
        let b = p.alloc(4).unwrap();
        assert_ne!(a, b);
        assert_eq!(p.free(a), Some(4));
        assert_eq!(p.free(b), Some(4));
        assert_eq!(p.free_lines(), ARENA - 8, "pending blocks stay quarantined");
        p.release_pending();
        assert_eq!(p.free_lines(), ARENA);
        assert_eq!(p.largest_free_lines(), ARENA, "full coalescing");
        assert!(p.accounting_exact());
    }

    #[test]
    fn free_of_carve_or_unknown_is_rejected() {
        let mut p = PoolAlloc::new(ARENA);
        let c = p.carve(2).unwrap();
        assert_eq!(p.free(c), None);
        assert_eq!(p.free(999), None);
    }

    #[test]
    fn record_round_trips_and_tears_classify() {
        let mut img = PmImage::new();
        let base = Addr(0x1000);
        let w = encode_heap_record(true, 7, 4, 3, 2, BlockKind::Dynamic);
        for (i, &v) in w.iter().enumerate() {
            img.store(base.offset_words(i as u64), v);
        }
        match classify_heap_slot(&img, base) {
            HeapSlotState::Valid(r) => {
                assert!(r.is_alloc);
                assert_eq!((r.off, r.lines, r.seq, r.epoch), (7, 4, 3, 2));
                assert_eq!(r.kind, BlockKind::Dynamic);
            }
            s => panic!("expected valid, got {s:?}"),
        }
        // Every word-prefix of the publication is Free or Torn — never
        // Corrupt, never a bogus Valid.
        for cut in 0..8 {
            let mut torn = PmImage::new();
            for i in 0..cut {
                torn.store(base.offset_words(i as u64), w[i as usize]);
            }
            match classify_heap_slot(&torn, base) {
                HeapSlotState::Free | HeapSlotState::Torn => {}
                HeapSlotState::Valid(_) if cut >= 7 => {}
                s => panic!("prefix {cut}: unexpected {s:?}"),
            }
        }
        // All-words-nonzero damage classifies Corrupt.
        img.store(base.offset_words(HW_OFF), 0xdead_beef);
        assert_eq!(classify_heap_slot(&img, base), HeapSlotState::Corrupt);
    }

    #[test]
    fn checkpoint_prefixes_keep_previous_table_authoritative() {
        let layout = PmLayout::new(1, 64);
        let mut img = PmImage::new();
        let t = layout.heap_table_base(0, 0);
        // Publish epoch 1 with one block.
        let cp1 = encode_checkpoint(1, &[(0, 2, BlockKind::Carve)]);
        for &(w, v) in cp1.pre.iter().chain(&cp1.body) {
            img.store(t.offset_words(w), v);
        }
        img.store(t.offset_words(cp1.publish.0), cp1.publish.1);
        assert!(matches!(
            decode_table(&img, t),
            TableDecode::Valid { epoch: 1, .. }
        ));
        // Now overwrite with epoch 2, stopping at every write boundary:
        // the table must decode Empty (pre applied) or stay consistent —
        // never Damaged.
        let cp2 = encode_checkpoint(2, &[(0, 2, BlockKind::Carve), (8, 8, BlockKind::Dynamic)]);
        let all: Vec<(u64, u64)> = cp2
            .pre
            .iter()
            .chain(&cp2.body)
            .copied()
            .chain(std::iter::once(cp2.publish))
            .collect();
        for cut in 0..=all.len() {
            let mut i2 = img.clone();
            for &(w, v) in &all[..cut] {
                i2.store(t.offset_words(w), v);
            }
            match decode_table(&i2, t) {
                TableDecode::Empty => assert!(cut < all.len()),
                TableDecode::Valid { epoch, blocks } => {
                    if cut == 0 {
                        assert_eq!(epoch, 1);
                    } else {
                        assert_eq!(epoch, 2);
                        assert_eq!(blocks.len(), 2);
                    }
                }
                TableDecode::Damaged { .. } => panic!("cut {cut}: damaged"),
            }
        }
    }

    #[test]
    fn rebuild_replays_checkpoint_then_journal() {
        let layout = PmLayout::new(1, 64);
        let mut img = PmImage::new();
        img.store(layout.pool_meta_base(0), HEAP_MAGIC);
        // Checkpoint: carve [0,4) live at epoch 1.
        let t = layout.heap_table_base(0, 0);
        let cp = encode_checkpoint(1, &[(0, 4, BlockKind::Carve)]);
        for &(w, v) in cp.pre.iter().chain(&cp.body) {
            img.store(t.offset_words(w), v);
        }
        img.store(t.offset_words(cp.publish.0), cp.publish.1);
        // Journal: alloc 8@8 (seq 0), free it (seq 1), alloc 16@8 (seq 2),
        // plus one stale epoch-0 record that must be ignored.
        let recs = [
            encode_heap_record(true, 8, 8, 0, 1, BlockKind::Dynamic),
            encode_heap_record(false, 8, 8, 1, 1, BlockKind::Dynamic),
            encode_heap_record(true, 8, 16, 2, 1, BlockKind::Dynamic),
            encode_heap_record(true, 100, 1, 9, 0, BlockKind::Dynamic),
        ];
        for (slot, rec) in recs.iter().enumerate() {
            let base = layout.heap_journal_slot(0, slot as u64);
            for (i, &v) in rec.iter().enumerate() {
                img.store(base.offset_words(i as u64), v);
            }
        }
        let scan = scan_pool(&img, &layout, 0);
        assert!(scan.formatted);
        assert_eq!(scan.epoch, 1);
        assert_eq!(scan.stale_records, 1);
        assert!(scan.faults.is_empty());
        let p = PoolAlloc::rebuild(&scan, layout.pool_arena_lines(0)).unwrap();
        let live: Vec<_> = p.live_blocks().collect();
        assert_eq!(
            live,
            vec![(0, 4, BlockKind::Carve), (8, 16, BlockKind::Dynamic)]
        );
        assert_eq!(p.frontier(), 4);
        assert_eq!(p.next_seq, 3);
        assert_eq!(p.next_slot, 4);
        assert!(p.accounting_exact());
        // Idempotence: a second scan + rebuild is identical.
        let p2 =
            PoolAlloc::rebuild(&scan_pool(&img, &layout, 0), layout.pool_arena_lines(0)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn overlapping_journal_allocs_fail_rebuild() {
        let layout = PmLayout::new(1, 64);
        let mut img = PmImage::new();
        img.store(layout.pool_meta_base(0), HEAP_MAGIC);
        for (slot, rec) in [
            encode_heap_record(true, 0, 8, 0, 0, BlockKind::Dynamic),
            encode_heap_record(true, 4, 8, 1, 0, BlockKind::Dynamic),
        ]
        .iter()
        .enumerate()
        {
            let base = layout.heap_journal_slot(0, slot as u64);
            for (i, &v) in rec.iter().enumerate() {
                img.store(base.offset_words(i as u64), v);
            }
        }
        let scan = scan_pool(&img, &layout, 0);
        let err = PoolAlloc::rebuild(&scan, layout.pool_arena_lines(0)).unwrap_err();
        assert_eq!(err, HeapFault::InconsistentJournal { pool: 0, slot: 1 });
    }

    #[test]
    fn unformatted_pool_scans_clean() {
        let layout = PmLayout::new(1, 64);
        let img = PmImage::new();
        let scan = scan_pool(&img, &layout, 2);
        assert!(!scan.formatted);
        assert!(scan.faults.is_empty());
        assert!(scan.records.is_empty());
    }

    #[test]
    fn poisoned_header_is_a_fatal_pool_fault() {
        let layout = PmLayout::new(1, 64);
        let mut img = PmImage::new();
        img.poison_line(layout.pool_meta_base(1).line());
        let scan = scan_pool(&img, &layout, 1);
        assert!(scan.has_fatal());
        let rec = recover_heap(&img, &layout);
        assert_eq!(rec.damaged_pools(), vec![1]);
        assert!(rec.pools[1].is_none());
        assert!(rec.pools[0].is_some(), "other pools recover independently");
    }

    #[test]
    fn recover_heap_is_parallel_safe_and_deterministic() {
        let layout = PmLayout::new(2, 64);
        let mut img = PmImage::new();
        for p in 0..layout.heap_pools() {
            img.store(layout.pool_meta_base(p), HEAP_MAGIC);
            let rec = encode_heap_record(true, p as u64 * 2, 2, 0, 0, BlockKind::Dynamic);
            let base = layout.heap_journal_slot(p, 0);
            for (i, &v) in rec.iter().enumerate() {
                img.store(base.offset_words(i as u64), v);
            }
        }
        let a = recover_heap(&img, &layout);
        let b = recover_heap(&img, &layout);
        assert_eq!(a, b);
        assert_eq!(a.live_blocks(), layout.heap_pools() as u64);
        assert!(a.faults.is_empty());
    }
}
