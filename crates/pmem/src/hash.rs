//! Fast, deterministic hashing for address-keyed tables.
//!
//! The functional memory model keys its line tables by [`LineAddr`] — a
//! newtype over `u64` with low entropy in the high bits. `std`'s default
//! SipHash is overkill for that key distribution and shows up prominently
//! in workload-generation profiles (every functional store probes two
//! tables). `AddrHasher` is an Fx-style multiply-rotate hasher: a couple
//! of ALU ops per word, with the multiply spreading entropy into the high
//! bits that hashbrown's control bytes are taken from.
//!
//! Unlike `RandomState`, the hasher is *deterministic across processes*,
//! so table iteration order can never wobble between otherwise identical
//! runs. (No caller may rely on that order — it still changes when the
//! table resizes — but determinism keeps seeded campaigns reproducible.)
//!
//! [`LineAddr`]: crate::LineAddr

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (the compiler's internal hasher): odd, with a
/// roughly even bit pattern, chosen to diffuse low-entropy integer keys.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An Fx-style hasher for small integer keys. See the module docs.
#[derive(Debug, Default, Clone, Copy)]
pub struct AddrHasher(u64);

impl AddrHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
}

/// A `HashMap` using [`AddrHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<AddrHasher>>;

/// A `HashSet` using [`AddrHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<AddrHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineAddr;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(line: LineAddr) -> u64 {
        BuildHasherDefault::<AddrHasher>::default().hash_one(line)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(LineAddr(42)), hash_of(LineAddr(42)));
        assert_ne!(hash_of(LineAddr(42)), hash_of(LineAddr(43)));
    }

    #[test]
    fn sequential_lines_spread_over_high_bits() {
        // hashbrown derives its control bytes from the top bits; make sure
        // adjacent line addresses don't collapse there.
        let tops: FastSet<u64> = (0..1024u64).map(|i| hash_of(LineAddr(i)) >> 57).collect();
        assert!(
            tops.len() > 32,
            "only {} distinct top-7-bit values",
            tops.len()
        );
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<LineAddr, u64> = FastMap::default();
        for i in 0..4096u64 {
            m.insert(LineAddr(i), i * 3);
        }
        assert_eq!(m.len(), 4096);
        for i in 0..4096u64 {
            assert_eq!(m.get(&LineAddr(i)), Some(&(i * 3)));
        }
    }
}
