//! Durable PM contents at word granularity.

use crate::addr::{Addr, LineAddr, WORDS_PER_LINE};
use crate::hash::{FastMap, FastSet};

/// Error returned by [`PmImage::try_load`] when the addressed line is
/// poisoned: the media would signal an uncorrectable error instead of
/// returning data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoisonedLine(pub LineAddr);

impl std::fmt::Display for PoisonedLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uncorrectable media error reading line {}", self.0)
    }
}

impl std::error::Error for PoisonedLine {}

/// Lines per [`Page`]: one page covers a 64 KiB span of the address space.
const LINES_PER_PAGE: u64 = 1024;
/// Bitmap words needed for [`LINES_PER_PAGE`] presence bits.
const BITMAP_WORDS: usize = (LINES_PER_PAGE / 64) as usize;

/// A dense page of line contents plus a presence bitmap.
///
/// Invariant: a line whose presence bit is clear has all-zero words, so
/// whole-page word comparisons and zero-default loads need no per-line
/// masking.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Page {
    /// Presence bit per line: set iff the line counts as *written*.
    written: [u64; BITMAP_WORDS],
    /// Cached popcount of `written`.
    count: u32,
    /// `LINES_PER_PAGE * WORDS_PER_LINE` words, line-major.
    words: Vec<u64>,
}

impl Page {
    fn new() -> Self {
        Self {
            written: [0; BITMAP_WORDS],
            count: 0,
            words: vec![0; (LINES_PER_PAGE as usize) * WORDS_PER_LINE],
        }
    }

    #[inline]
    fn has(&self, slot: usize) -> bool {
        self.written[slot / 64] & (1 << (slot % 64)) != 0
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        let bit = 1u64 << (slot % 64);
        if self.written[slot / 64] & bit == 0 {
            self.written[slot / 64] |= bit;
            self.count += 1;
        }
    }

    /// Clears the presence bit and zeroes the line's words (upholding the
    /// page invariant).
    fn clear(&mut self, slot: usize) {
        let bit = 1u64 << (slot % 64);
        if self.written[slot / 64] & bit != 0 {
            self.written[slot / 64] &= !bit;
            self.count -= 1;
            self.words[slot * WORDS_PER_LINE..(slot + 1) * WORDS_PER_LINE].fill(0);
        }
    }

    #[inline]
    fn line(&self, slot: usize) -> &[u64] {
        &self.words[slot * WORDS_PER_LINE..(slot + 1) * WORDS_PER_LINE]
    }
}

#[inline]
fn split(line: LineAddr) -> (u64, usize) {
    (line.0 / LINES_PER_PAGE, (line.0 % LINES_PER_PAGE) as usize)
}

/// The contents of persistent memory as recovery would observe them.
///
/// A `PmImage` maps cache lines to their word contents, stored as dense
/// 1024-line pages behind a page-indexed table — functional stores during
/// workload generation are the hot path, and paging turns their per-store
/// cost into one table probe per 64 KiB span plus a direct index.
/// Unwritten memory reads as zero, mirroring a freshly-zeroed PM device.
/// The image is word-granular because all workload data in this reproduction
/// is word-sized; a persist (CLWB or cache writeback) transfers a whole line.
///
/// # Example
///
/// ```
/// use sw_pmem::{Addr, PmImage};
///
/// let mut img = PmImage::new();
/// img.store(Addr(64), 7);
/// assert_eq!(img.load(Addr(64)), 7);
/// assert_eq!(img.load(Addr(72)), 0); // untouched word in same line
/// ```
#[derive(Debug, Clone, Default)]
pub struct PmImage {
    pages: FastMap<u64, Page>,
    /// Lines the media reports as uncorrectable: [`PmImage::try_load`]
    /// errors on them. A store (which rewrites the location) heals the
    /// line, as does a full-line persist ([`PmImage::absorb_line`] /
    /// [`PmImage::set_line_words`]).
    poisoned: FastSet<LineAddr>,
}

impl PmImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr`. Unwritten memory reads as zero.
    ///
    /// This is the legacy infallible surface: it ignores poison and returns
    /// whatever bits the image holds. Fault-aware readers (recovery) use
    /// [`PmImage::try_load`] instead.
    pub fn load(&self, addr: Addr) -> u64 {
        let (page, slot) = split(addr.line());
        self.pages
            .get(&page)
            .map_or(0, |p| p.line(slot)[addr.word_in_line()])
    }

    /// Reads the word at `addr`, failing if the containing line is
    /// poisoned (an uncorrectable media error).
    ///
    /// # Errors
    ///
    /// Returns [`PoisonedLine`] when the line was poisoned and not healed
    /// by a subsequent store.
    pub fn try_load(&self, addr: Addr) -> Result<u64, PoisonedLine> {
        let line = addr.line();
        if self.poisoned.contains(&line) {
            return Err(PoisonedLine(line));
        }
        Ok(self.load(addr))
    }

    /// Writes the word at `addr`. Rewriting a poisoned line heals it (the
    /// device replaces the uncorrectable data).
    pub fn store(&mut self, addr: Addr, value: u64) {
        if !self.poisoned.is_empty() {
            self.poisoned.remove(&addr.line());
        }
        let (page, slot) = split(addr.line());
        let p = self.pages.entry(page).or_insert_with(Page::new);
        p.mark(slot);
        p.words[slot * WORDS_PER_LINE + addr.word_in_line()] = value;
    }

    /// Marks `line` as uncorrectable: [`PmImage::try_load`] will fail on
    /// it until a store or full-line persist heals it. The stored bits are
    /// left in place (the legacy [`PmImage::load`] still reads them).
    pub fn poison_line(&mut self, line: LineAddr) {
        self.poisoned.insert(line);
    }

    /// `true` when `line` is currently poisoned.
    pub fn is_poisoned(&self, line: LineAddr) -> bool {
        self.poisoned.contains(&line)
    }

    /// Iterates over the currently poisoned lines.
    pub fn poisoned_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.poisoned.iter().copied()
    }

    /// Copies the full contents of `line` from `src` into this image.
    ///
    /// This models a line-granular persist: the entire cache line drains to
    /// the PM device at once (healing any poison on the destination).
    pub fn absorb_line(&mut self, line: LineAddr, src: &PmImage) {
        if !self.poisoned.is_empty() {
            self.poisoned.remove(&line);
        }
        let (page, slot) = split(line);
        match src.pages.get(&page).filter(|p| p.has(slot)) {
            Some(sp) => {
                let dp = self.pages.entry(page).or_insert_with(Page::new);
                dp.mark(slot);
                dp.words[slot * WORDS_PER_LINE..(slot + 1) * WORDS_PER_LINE]
                    .copy_from_slice(sp.line(slot));
            }
            None => {
                if let Some(dp) = self.pages.get_mut(&page) {
                    dp.clear(slot);
                }
            }
        }
    }

    /// Returns the words of `line` (zeros if never written).
    pub fn line_words(&self, line: LineAddr) -> [u64; WORDS_PER_LINE] {
        let (page, slot) = split(line);
        match self.pages.get(&page) {
            Some(p) => {
                let mut out = [0; WORDS_PER_LINE];
                out.copy_from_slice(p.line(slot));
                out
            }
            None => [0; WORDS_PER_LINE],
        }
    }

    /// Overwrites the words of `line` (healing any poison).
    pub fn set_line_words(&mut self, line: LineAddr, words: [u64; WORDS_PER_LINE]) {
        if !self.poisoned.is_empty() {
            self.poisoned.remove(&line);
        }
        let (page, slot) = split(line);
        if words == [0; WORDS_PER_LINE] {
            if let Some(p) = self.pages.get_mut(&page) {
                p.clear(slot);
            }
        } else {
            let p = self.pages.entry(page).or_insert_with(Page::new);
            p.mark(slot);
            p.words[slot * WORDS_PER_LINE..(slot + 1) * WORDS_PER_LINE].copy_from_slice(&words);
        }
    }

    /// Returns an iterator over all lines that have ever been written.
    pub fn written_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.pages.iter().flat_map(|(&page, p)| {
            (0..LINES_PER_PAGE as usize)
                .filter(|&slot| p.has(slot))
                .map(move |slot| LineAddr(page * LINES_PER_PAGE + slot as u64))
        })
    }

    /// Number of distinct cache lines with non-default contents.
    pub fn line_count(&self) -> usize {
        self.pages.values().map(|p| p.count as usize).sum()
    }
}

impl PartialEq for PmImage {
    /// Content equality: the same set of written lines with the same
    /// words, and the same poison set. Pages whose lines were all cleared
    /// again compare equal to absent pages.
    fn eq(&self, other: &Self) -> bool {
        if self.poisoned != other.poisoned {
            return false;
        }
        let live = |img: &Self| img.pages.values().filter(|p| p.count > 0).count();
        if live(self) != live(other) {
            return false;
        }
        self.pages
            .iter()
            .filter(|(_, p)| p.count > 0)
            .all(|(idx, p)| {
                other
                    .pages
                    .get(idx)
                    .is_some_and(|q| q.written == p.written && q.words == p.words)
            })
    }
}

impl Eq for PmImage {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let img = PmImage::new();
        assert_eq!(img.load(Addr(0)), 0);
        assert_eq!(img.load(Addr(0xdead * 8)), 0);
    }

    #[test]
    fn store_load_roundtrip() {
        let mut img = PmImage::new();
        img.store(Addr(8), 11);
        img.store(Addr(16), 22);
        assert_eq!(img.load(Addr(8)), 11);
        assert_eq!(img.load(Addr(16)), 22);
        assert_eq!(img.load(Addr(0)), 0);
    }

    #[test]
    fn words_in_same_line_are_independent() {
        let mut img = PmImage::new();
        for w in 0..WORDS_PER_LINE {
            img.store(LineAddr(3).word(w), w as u64 + 1);
        }
        for w in 0..WORDS_PER_LINE {
            assert_eq!(img.load(LineAddr(3).word(w)), w as u64 + 1);
        }
    }

    #[test]
    fn absorb_line_copies_whole_line() {
        let mut src = PmImage::new();
        src.store(Addr(64), 1);
        src.store(Addr(72), 2);
        let mut dst = PmImage::new();
        dst.store(Addr(64), 99); // will be overwritten by absorb
        dst.absorb_line(LineAddr(1), &src);
        assert_eq!(dst.load(Addr(64)), 1);
        assert_eq!(dst.load(Addr(72)), 2);
    }

    #[test]
    fn absorb_missing_line_zeroes_destination() {
        let src = PmImage::new();
        let mut dst = PmImage::new();
        dst.store(Addr(64), 5);
        dst.absorb_line(LineAddr(1), &src);
        assert_eq!(dst.load(Addr(64)), 0);
        assert_eq!(dst.line_count(), 0);
    }

    #[test]
    fn line_count_tracks_distinct_lines() {
        let mut img = PmImage::new();
        img.store(Addr(0), 1);
        img.store(Addr(8), 2);
        img.store(Addr(64), 3);
        assert_eq!(img.line_count(), 2);
    }

    #[test]
    fn zero_valued_stores_still_count_as_written() {
        // TPC-C pre-touches its order table with zero stores; the warm
        // preload set must include those lines.
        let mut img = PmImage::new();
        img.store(Addr(64), 0);
        assert_eq!(img.line_count(), 1);
        assert_eq!(img.written_lines().collect::<Vec<_>>(), vec![LineAddr(1)]);
    }

    #[test]
    fn written_lines_spans_pages() {
        let mut img = PmImage::new();
        let far = LineAddr(5 * LINES_PER_PAGE + 7);
        img.store(LineAddr(3).word(0), 1);
        img.store(far.word(2), 9);
        let mut lines: Vec<LineAddr> = img.written_lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![LineAddr(3), far]);
    }

    #[test]
    fn try_load_fails_on_poisoned_line_until_healed() {
        let mut img = PmImage::new();
        img.store(Addr(64), 7);
        img.poison_line(LineAddr(1));
        assert!(img.is_poisoned(LineAddr(1)));
        assert_eq!(img.try_load(Addr(64)), Err(PoisonedLine(LineAddr(1))));
        assert_eq!(img.try_load(Addr(72)), Err(PoisonedLine(LineAddr(1))));
        // The legacy surface still reads the stale bits.
        assert_eq!(img.load(Addr(64)), 7);
        // Other lines are unaffected.
        assert_eq!(img.try_load(Addr(0)), Ok(0));
        // A store heals the whole line.
        img.store(Addr(72), 9);
        assert!(!img.is_poisoned(LineAddr(1)));
        assert_eq!(img.try_load(Addr(64)), Ok(7));
    }

    #[test]
    fn full_line_persists_heal_poison() {
        let mut img = PmImage::new();
        img.store(Addr(64), 1);
        img.poison_line(LineAddr(1));
        img.absorb_line(LineAddr(1), &PmImage::new());
        assert!(!img.is_poisoned(LineAddr(1)));

        img.poison_line(LineAddr(2));
        img.set_line_words(LineAddr(2), [5; WORDS_PER_LINE]);
        assert!(!img.is_poisoned(LineAddr(2)));
        assert_eq!(img.poisoned_lines().count(), 0);
    }

    #[test]
    fn poison_participates_in_image_equality() {
        let mut a = PmImage::new();
        let mut b = PmImage::new();
        a.store(Addr(64), 1);
        b.store(Addr(64), 1);
        assert_eq!(a, b);
        a.poison_line(LineAddr(1));
        assert_ne!(a, b, "poison state is part of the durable image");
        b.poison_line(LineAddr(1));
        assert_eq!(a, b);
    }

    #[test]
    fn set_line_words_all_zero_removes_line() {
        let mut img = PmImage::new();
        img.store(Addr(0), 1);
        img.set_line_words(LineAddr(0), [0; WORDS_PER_LINE]);
        assert_eq!(img.line_count(), 0);
        assert_eq!(img.load(Addr(0)), 0);
    }

    #[test]
    fn cleared_pages_compare_equal_to_absent_pages() {
        let mut a = PmImage::new();
        let b = PmImage::new();
        a.store(Addr(0), 1);
        a.set_line_words(LineAddr(0), [0; WORDS_PER_LINE]);
        assert_eq!(a, b);
        assert_eq!(b, a);
    }
}
