//! Address-space layout: persistent log regions, persistent heap, volatile DRAM.

use crate::addr::{Addr, CACHE_LINE_BYTES, WORD_BYTES};

/// What a [`Region`] is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A per-thread circular undo-log buffer (persistent).
    Log,
    /// Persistent runtime metadata: lock words and happens-before state
    /// (the paper keeps locks in PM so SPA orders their persists).
    Meta,
    /// The persistent heap holding recoverable data structures.
    Heap,
    /// Volatile DRAM (lost on crash).
    Volatile,
}

/// A contiguous address range with a purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: Addr,
    /// Length in bytes.
    pub bytes: u64,
    /// Purpose of the region.
    pub kind: RegionKind,
}

impl Region {
    /// Returns `true` if `addr` falls inside this region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.raw() >= self.base.raw() && addr.raw() < self.base.raw() + self.bytes
    }

    /// Returns a bump allocator over this region.
    pub fn bump(&self) -> Bump {
        Bump {
            next: self.base,
            end: Addr(self.base.raw() + self.bytes),
        }
    }
}

/// Static layout of the simulated physical address space.
///
/// The persistent range starts at [`PmLayout::PM_BASE`] and holds, in order,
/// one undo-log region per hardware thread followed by the persistent heap.
/// The volatile range starts at [`PmLayout::VOLATILE_BASE`]; anything there
/// is lost on a crash. Address zero is never part of any region, so
/// [`Addr::NULL`] is usable as a sentinel.
///
/// # Example
///
/// ```
/// use sw_pmem::PmLayout;
///
/// let layout = PmLayout::new(8, 4096);
/// assert!(layout.is_persistent(layout.heap_base()));
/// assert!(!layout.is_persistent(layout.volatile_region().base));
/// assert!(layout.log_region(0).contains(layout.log_region(0).base));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmLayout {
    threads: usize,
    log_entries_per_thread: u64,
    heap_bytes: u64,
}

impl PmLayout {
    /// Base of the persistent address range.
    pub const PM_BASE: u64 = 0x1000_0000;
    /// Base of the volatile address range.
    pub const VOLATILE_BASE: u64 = 0x4000_0000_0000;
    /// Default persistent heap size (1 GiB of simulated PM).
    pub const DEFAULT_HEAP_BYTES: u64 = 1 << 30;
    /// Default volatile region size (1 GiB of simulated DRAM).
    pub const VOLATILE_BYTES: u64 = 1 << 30;
    /// Size of the persistent metadata region (4096 lock words).
    pub const META_BYTES: u64 = 4096 * WORD_BYTES;

    /// Creates a layout for `threads` hardware threads, each with a circular
    /// log of `log_entries_per_thread` 64-byte entries.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `log_entries_per_thread` is zero.
    pub fn new(threads: usize, log_entries_per_thread: u64) -> Self {
        assert!(threads > 0, "layout needs at least one thread");
        assert!(log_entries_per_thread > 0, "log needs at least one entry");
        Self {
            threads,
            log_entries_per_thread,
            heap_bytes: Self::DEFAULT_HEAP_BYTES,
        }
    }

    /// Number of hardware threads the layout provisions logs for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Log capacity, in 64-byte entries, of each per-thread log region.
    pub fn log_entries_per_thread(&self) -> u64 {
        self.log_entries_per_thread
    }

    fn log_bytes(&self) -> u64 {
        self.log_entries_per_thread * CACHE_LINE_BYTES
    }

    /// The undo-log region of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= self.threads()`.
    pub fn log_region(&self, tid: usize) -> Region {
        assert!(tid < self.threads, "thread {tid} out of range");
        Region {
            base: Addr(Self::PM_BASE + tid as u64 * self.log_bytes()),
            bytes: self.log_bytes(),
            kind: RegionKind::Log,
        }
    }

    /// The persistent metadata region (lock words, happens-before state),
    /// between the logs and the heap.
    pub fn meta_region(&self) -> Region {
        Region {
            base: Addr(Self::PM_BASE + self.threads as u64 * self.log_bytes()),
            bytes: Self::META_BYTES,
            kind: RegionKind::Meta,
        }
    }

    /// The persistent address of lock word `lock_id`.
    ///
    /// # Panics
    ///
    /// Panics if `lock_id` does not fit in the metadata region.
    pub fn lock_addr(&self, lock_id: u32) -> Addr {
        let a = self.meta_region().base.offset_words(lock_id as u64);
        assert!(
            self.meta_region().contains(a),
            "lock id {lock_id} out of range"
        );
        a
    }

    /// The persistent heap region (shared by all threads).
    pub fn heap_region(&self) -> Region {
        let meta = self.meta_region();
        Region {
            base: Addr(meta.base.raw() + meta.bytes),
            bytes: self.heap_bytes,
            kind: RegionKind::Heap,
        }
    }

    /// First byte of the persistent heap.
    pub fn heap_base(&self) -> Addr {
        self.heap_region().base
    }

    /// Number of independently-recoverable heap pools.
    pub fn heap_pools(&self) -> usize {
        crate::alloc::HEAP_POOLS
    }

    /// Lines per pool (arena + metadata + slack).
    fn pool_lines(&self) -> u64 {
        self.heap_bytes / crate::alloc::HEAP_POOLS as u64 / CACHE_LINE_BYTES
    }

    /// The full region of pool `pool`.
    ///
    /// Pool 0's data area starts at [`PmLayout::heap_base`], so
    /// frontier carves from pool 0 hand out the exact addresses the
    /// old whole-heap bump allocator did.
    ///
    /// # Panics
    ///
    /// Panics if `pool >= self.heap_pools()`.
    pub fn pool_region(&self, pool: usize) -> Region {
        assert!(pool < self.heap_pools(), "pool {pool} out of range");
        let bytes = self.pool_lines() * CACHE_LINE_BYTES;
        Region {
            base: Addr(self.heap_base().raw() + pool as u64 * bytes),
            bytes,
            kind: RegionKind::Heap,
        }
    }

    /// First byte of pool `pool`'s data arena.
    pub fn pool_arena_base(&self, pool: usize) -> Addr {
        self.pool_region(pool).base
    }

    /// Size of pool `pool`'s data arena, in lines — the largest power
    /// of two that leaves room for the pool's metadata block.
    pub fn pool_arena_lines(&self, pool: usize) -> u64 {
        let _ = self.pool_region(pool); // range check
        let data = self.pool_lines() - crate::alloc::HEAP_META_LINES;
        assert!(data > 0, "pool too small for allocator metadata");
        if data.is_power_of_two() {
            data
        } else {
            data.next_power_of_two() / 2
        }
    }

    /// The pool's metadata header line (directly after the arena).
    pub fn pool_meta_base(&self, pool: usize) -> Addr {
        Addr(self.pool_arena_base(pool).raw() + self.pool_arena_lines(pool) * CACHE_LINE_BYTES)
    }

    /// The line address of journal slot `slot` of pool `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn heap_journal_slot(&self, pool: usize, slot: u64) -> Addr {
        assert!(slot < crate::alloc::HEAP_JOURNAL_SLOTS, "slot out of range");
        Addr(self.pool_meta_base(pool).raw() + (1 + slot) * CACHE_LINE_BYTES)
    }

    /// Base of checkpoint table `which` (0 or 1) of pool `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `which > 1`.
    pub fn heap_table_base(&self, pool: usize, which: usize) -> Addr {
        assert!(which < 2, "two checkpoint tables per pool");
        let journal_end = 1 + crate::alloc::HEAP_JOURNAL_SLOTS;
        Addr(
            self.pool_meta_base(pool).raw()
                + (journal_end + which as u64 * crate::alloc::HEAP_TABLE_LINES) * CACHE_LINE_BYTES,
        )
    }

    /// The pool whose data arena contains `addr`, if any. Metadata
    /// lines belong to no pool's arena.
    pub fn pool_of(&self, addr: Addr) -> Option<usize> {
        (0..self.heap_pools()).find(|&p| {
            let base = self.pool_arena_base(p).raw();
            addr.raw() >= base && addr.raw() < base + self.pool_arena_lines(p) * CACHE_LINE_BYTES
        })
    }

    /// The address of arena line `line_off` of pool `pool`.
    pub fn pool_line_addr(&self, pool: usize, line_off: u64) -> Addr {
        debug_assert!(line_off <= self.pool_arena_lines(pool));
        Addr(self.pool_arena_base(pool).raw() + line_off * CACHE_LINE_BYTES)
    }

    /// The volatile DRAM region.
    pub fn volatile_region(&self) -> Region {
        Region {
            base: Addr(Self::VOLATILE_BASE),
            bytes: Self::VOLATILE_BYTES,
            kind: RegionKind::Volatile,
        }
    }

    /// Returns `true` if `addr` lies in the persistent range (logs or heap).
    pub fn is_persistent(&self, addr: Addr) -> bool {
        let end = self.heap_region().base.raw() + self.heap_region().bytes;
        addr.raw() >= Self::PM_BASE && addr.raw() < end
    }
}

impl Default for PmLayout {
    /// Eight threads with 4096-entry logs, matching the paper's evaluation
    /// setup (8-core machine, per-thread circular log buffers).
    fn default() -> Self {
        Self::new(8, 4096)
    }
}

/// A bump allocator over a [`Region`].
///
/// Used by workloads to carve persistent data structures out of the heap and
/// by the logging runtime for overflow log space.
#[derive(Debug, Clone)]
pub struct Bump {
    next: Addr,
    end: Addr,
}

impl Bump {
    /// Allocates `words` machine words, word-aligned.
    ///
    /// `alloc_words(0)` is well-defined: it returns the current
    /// frontier and allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the region is exhausted.
    pub fn alloc_words(&mut self, words: u64) -> Addr {
        let a = self.next;
        let next = a.offset_words(words);
        assert!(next.raw() <= self.end.raw(), "region exhausted");
        self.next = next;
        a
    }

    /// Allocates `lines` whole cache lines, line-aligned.
    ///
    /// `alloc_lines(0)` is well-defined: it aligns the frontier up to
    /// the next line boundary and returns it without allocating (used
    /// by workloads to name the start of a region they pre-touch).
    ///
    /// # Panics
    ///
    /// Panics if the region is exhausted.
    pub fn alloc_lines(&mut self, lines: u64) -> Addr {
        let aligned = self.next.raw().next_multiple_of(CACHE_LINE_BYTES);
        let end = aligned + lines * CACHE_LINE_BYTES;
        assert!(end <= self.end.raw(), "region exhausted");
        self.next = Addr(end);
        Addr(aligned)
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.end.raw() - self.next.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_regions_are_disjoint_and_ordered() {
        let l = PmLayout::new(4, 128);
        for t in 0..4 {
            let r = l.log_region(t);
            assert_eq!(r.kind, RegionKind::Log);
            assert_eq!(r.bytes, 128 * 64);
            if t > 0 {
                let prev = l.log_region(t - 1);
                assert_eq!(prev.base.raw() + prev.bytes, r.base.raw());
            }
        }
    }

    #[test]
    fn meta_follows_logs_and_heap_follows_meta() {
        let l = PmLayout::new(2, 16);
        let last = l.log_region(1);
        assert_eq!(l.meta_region().base.raw(), last.base.raw() + last.bytes);
        assert_eq!(
            l.heap_base().raw(),
            l.meta_region().base.raw() + l.meta_region().bytes
        );
    }

    #[test]
    fn lock_addresses_are_persistent_and_distinct() {
        let l = PmLayout::default();
        assert!(l.is_persistent(l.lock_addr(0)));
        assert!(l.is_persistent(l.lock_addr(4095)));
        assert_ne!(l.lock_addr(0), l.lock_addr(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lock_id_out_of_range_panics() {
        let l = PmLayout::default();
        l.lock_addr(4096);
    }

    #[test]
    fn persistence_classification() {
        let l = PmLayout::default();
        assert!(l.is_persistent(l.log_region(0).base));
        assert!(l.is_persistent(l.heap_base()));
        assert!(!l.is_persistent(Addr(0)));
        assert!(!l.is_persistent(l.volatile_region().base));
    }

    #[test]
    fn region_contains() {
        let r = Region {
            base: Addr(100),
            bytes: 50,
            kind: RegionKind::Heap,
        };
        assert!(r.contains(Addr(100)));
        assert!(r.contains(Addr(149)));
        assert!(!r.contains(Addr(150)));
        assert!(!r.contains(Addr(99)));
    }

    #[test]
    fn bump_allocates_sequentially() {
        let r = Region {
            base: Addr(64),
            bytes: 256,
            kind: RegionKind::Heap,
        };
        let mut b = r.bump();
        assert_eq!(b.alloc_words(2), Addr(64));
        assert_eq!(b.alloc_words(1), Addr(80));
        assert_eq!(b.remaining(), 256 - 24);
    }

    #[test]
    fn bump_line_alloc_aligns() {
        let r = Region {
            base: Addr(64),
            bytes: 512,
            kind: RegionKind::Heap,
        };
        let mut b = r.bump();
        b.alloc_words(1);
        let line = b.alloc_lines(1);
        assert_eq!(line.raw() % 64, 0);
        assert_eq!(line, Addr(128));
    }

    #[test]
    #[should_panic(expected = "region exhausted")]
    fn bump_exhaustion_panics() {
        let r = Region {
            base: Addr(64),
            bytes: 8,
            kind: RegionKind::Heap,
        };
        let mut b = r.bump();
        b.alloc_words(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn log_region_out_of_range_panics() {
        let l = PmLayout::new(2, 16);
        l.log_region(2);
    }
}
