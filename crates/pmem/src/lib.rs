//! Persistent-memory substrate for the StrandWeaver reproduction.
//!
//! This crate provides the low-level memory model that every other crate in
//! the workspace builds on:
//!
//! * [`Addr`] and [`LineAddr`] — typed byte and cache-line addresses.
//! * [`PmImage`] — the durable contents of persistent memory, at word
//!   granularity, as recovery would observe them after a failure.
//! * [`Memory`] — a combined volatile + persistent address space with crash
//!   semantics: on a crash the volatile half is lost and only the persisted
//!   image survives.
//! * [`PmLayout`] — a region allocator used to carve per-thread undo-log
//!   buffers and persistent heaps out of the PM address range.
//! * [`timing`] — latency constants of the modelled PM device, taken from the
//!   paper's Table I (which follows the Optane characterization study
//!   [Izraelevitz et al., 2019]).
//!
//! # Example
//!
//! ```
//! use sw_pmem::{Addr, Memory, PmLayout};
//!
//! let layout = PmLayout::default();
//! let mut mem = Memory::new(layout.clone());
//! let a = layout.heap_base();
//! mem.store(a, 42);
//! assert_eq!(mem.load(a), 42);
//! // The store is visible but not yet persisted:
//! assert_eq!(mem.persisted_image().load(a), 0);
//! mem.persist(a);
//! assert_eq!(mem.persisted_image().load(a), 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
pub mod alloc;
pub mod hash;
mod image;
mod layout;
mod memory;
mod remap;
pub mod timing;

pub use addr::{Addr, LineAddr, CACHE_LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use alloc::{
    classify_heap_slot, decode_table, encode_checkpoint, encode_heap_record, recover_heap,
    scan_pool, BlockKind, CheckpointWrites, HeapFault, HeapRecord, HeapRecovery, HeapSlotState,
    PoolAlloc, PoolScan, PoolStats, TableDecode, HEAP_JOURNAL_SLOTS, HEAP_MAGIC, HEAP_META_LINES,
    HEAP_POOLS, HEAP_TABLE_LINES, HW_CHECKSUM, HW_KIND,
};
pub use hash::{AddrHasher, FastMap, FastSet};
pub use image::{PmImage, PoisonedLine};
pub use layout::{Bump, PmLayout, Region, RegionKind};
pub use memory::Memory;
pub use remap::{RemapTable, REMAP_ENTRY_WORDS};
