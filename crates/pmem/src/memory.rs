//! Combined volatile + persistent address space with crash semantics.

use crate::addr::{Addr, LineAddr};
use crate::hash::FastSet;
use crate::image::PmImage;
use crate::layout::PmLayout;

/// A functional model of the machine's memory: the *visible* state (what
/// loads observe, i.e. the coherent cache/DRAM view) and the *persisted*
/// state (what has actually drained to the PM device).
///
/// Stores update the visible state immediately. A store to a persistent
/// address additionally marks its cache line *dirty*; the line's current
/// visible contents reach the persisted image only when [`Memory::persist`]
/// (a CLWB completing, or a cache writeback) is applied to it. On a
/// [`Memory::crash`], the visible state is discarded and reconstructed from
/// the persisted image — exactly what recovery observes after a failure.
///
/// Ordering of persists is *not* enforced here; this type is the mechanism.
/// The policy — which persists may legally be missing at a crash — is
/// decided by callers (the formal model in `sw-model` and the crash
/// injectors in `sw-lang`), which choose when to call `persist`.
///
/// # Example
///
/// ```
/// use sw_pmem::{Addr, Memory, PmLayout};
///
/// let layout = PmLayout::default();
/// let mut mem = Memory::new(layout.clone());
/// let a = layout.heap_base();
/// mem.store(a, 1);
/// let crashed = mem.crash();
/// assert_eq!(crashed.load(a), 0); // store never persisted
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    layout: PmLayout,
    visible: PmImage,
    persisted: PmImage,
    dirty: FastSet<LineAddr>,
}

impl Memory {
    /// Creates a zeroed memory with the given layout.
    pub fn new(layout: PmLayout) -> Self {
        Self {
            layout,
            visible: PmImage::new(),
            persisted: PmImage::new(),
            dirty: FastSet::default(),
        }
    }

    /// The address-space layout.
    pub fn layout(&self) -> &PmLayout {
        &self.layout
    }

    /// Loads the word at `addr` from the visible state.
    pub fn load(&self, addr: Addr) -> u64 {
        self.visible.load(addr)
    }

    /// Stores `value` at `addr` in the visible state. If `addr` is
    /// persistent, its cache line becomes dirty.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.visible.store(addr, value);
        if self.layout.is_persistent(addr) {
            self.dirty.insert(addr.line());
        }
    }

    /// Persists the cache line containing `addr`: its visible contents drain
    /// to the persisted image and the line becomes clean.
    ///
    /// Persisting a volatile address is a no-op (CLWB of a DRAM line).
    pub fn persist(&mut self, addr: Addr) {
        self.persist_line(addr.line());
    }

    /// Persists a whole cache line by line address. See [`Memory::persist`].
    pub fn persist_line(&mut self, line: LineAddr) {
        if self.layout.is_persistent(line.base()) {
            self.persisted.absorb_line(line, &self.visible);
            self.dirty.remove(&line);
        }
    }

    /// Persists every dirty line (an orderly shutdown / full flush).
    pub fn persist_all(&mut self) {
        // Drain in one move: per-line `persist_line` would pay a set
        // removal per line, which dominates large flushes (workload setup
        // dirties tens of thousands of lines).
        let dirty = std::mem::take(&mut self.dirty);
        for &line in &dirty {
            if self.layout.is_persistent(line.base()) {
                self.persisted.absorb_line(line, &self.visible);
            }
        }
    }

    /// Returns the dirty persistent lines, in address order.
    pub fn dirty_lines(&self) -> impl Iterator<Item = LineAddr> {
        let mut lines: Vec<LineAddr> = self.dirty.iter().copied().collect();
        lines.sort_unstable();
        lines.into_iter()
    }

    /// Returns `true` if `line` holds unpersisted data.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        self.dirty.contains(&line)
    }

    /// The persisted PM image (what a crash would preserve).
    pub fn persisted_image(&self) -> &PmImage {
        &self.persisted
    }

    /// Simulates a power failure: returns a new `Memory` whose visible state
    /// is reconstructed from the persisted image. All volatile data and all
    /// unpersisted PM stores are lost.
    pub fn crash(&self) -> Memory {
        Memory {
            layout: self.layout.clone(),
            visible: self.persisted.clone(),
            persisted: self.persisted.clone(),
            dirty: FastSet::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (Memory, Addr) {
        let layout = PmLayout::default();
        let a = layout.heap_base();
        (Memory::new(layout), a)
    }

    #[test]
    fn stores_are_visible_immediately() {
        let (mut m, a) = mem();
        m.store(a, 5);
        assert_eq!(m.load(a), 5);
    }

    #[test]
    fn unpersisted_stores_lost_on_crash() {
        let (mut m, a) = mem();
        m.store(a, 5);
        let c = m.crash();
        assert_eq!(c.load(a), 0);
    }

    #[test]
    fn persisted_stores_survive_crash() {
        let (mut m, a) = mem();
        m.store(a, 5);
        m.persist(a);
        let c = m.crash();
        assert_eq!(c.load(a), 5);
    }

    #[test]
    fn persist_is_line_granular() {
        let (mut m, a) = mem();
        let b = a.offset_words(1); // same line
        m.store(a, 1);
        m.store(b, 2);
        m.persist(a);
        let c = m.crash();
        assert_eq!(c.load(a), 1);
        assert_eq!(c.load(b), 2, "whole line drains together");
    }

    #[test]
    fn dirty_tracking() {
        let (mut m, a) = mem();
        assert!(!m.is_dirty(a.line()));
        m.store(a, 1);
        assert!(m.is_dirty(a.line()));
        m.persist(a);
        assert!(!m.is_dirty(a.line()));
        assert_eq!(m.dirty_lines().count(), 0);
    }

    #[test]
    fn volatile_stores_never_dirty_and_never_survive() {
        let layout = PmLayout::default();
        let v = layout.volatile_region().base;
        let mut m = Memory::new(layout);
        m.store(v, 9);
        assert_eq!(m.dirty_lines().count(), 0);
        m.persist(v); // no-op
        let c = m.crash();
        assert_eq!(c.load(v), 0);
    }

    #[test]
    fn persist_all_flushes_everything() {
        let (mut m, a) = mem();
        for i in 0..20 {
            m.store(a.offset_words(i * 8), i);
        }
        m.persist_all();
        let c = m.crash();
        for i in 0..20 {
            assert_eq!(c.load(a.offset_words(i * 8)), i);
        }
    }

    #[test]
    fn crash_of_crash_is_stable() {
        let (mut m, a) = mem();
        m.store(a, 3);
        m.persist(a);
        let c1 = m.crash();
        let c2 = c1.crash();
        assert_eq!(c2.load(a), 3);
    }

    #[test]
    fn later_store_after_persist_is_lost() {
        let (mut m, a) = mem();
        m.store(a, 1);
        m.persist(a);
        m.store(a, 2);
        let c = m.crash();
        assert_eq!(c.load(a), 1);
    }
}
