//! Crash-consistent line remap/quarantine table.
//!
//! When the online device-fault model declares a cache line a permanent
//! media error, the PM controller retires the physical line and redirects
//! it to a spare. The mapping itself must survive crashes: a remap that is
//! lost on power failure would resurrect a dead line, and a half-written
//! remap entry must never be interpreted as a valid redirect.
//!
//! [`RemapTable`] therefore publishes its durable encoding with the same
//! discipline the undo logs use for commit records: each entry is written
//! as a `(from, to, checksum)` triple, and a count word is published
//! *last*. Any crash cuts the word sequence at an arbitrary prefix; the
//! decoder only trusts entries covered by the count word it finds, and the
//! count word is only bumped after the entry words it covers. Every prefix
//! of [`RemapTable::encode_words`] therefore decodes to a prefix of the
//! logical mapping — never to a torn entry.

use std::fmt;

use crate::addr::LineAddr;
use crate::hash::FastMap;

/// Number of `u64` words one encoded remap entry occupies.
pub const REMAP_ENTRY_WORDS: usize = 3;

fn entry_checksum(from: u64, to: u64) -> u64 {
    // Cheap mixing; only needs to make a torn (from, to) pair detectable.
    (from ^ to.rotate_left(17)).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5151_5151_5151_5151
}

/// A quarantine/redirect table from retired physical lines to spares.
///
/// Spares are allocated sequentially from a dedicated spare range starting
/// at `spare_base`; the table refuses to remap once the range is
/// exhausted. Exhaustion is a first-class failure: the fault layer turns
/// the `None` into a typed `RemapExhausted` outcome (with a trace event
/// and a `faults.online.spares_exhausted` counter) so the layer above
/// fails the device over rather than silently reusing live lines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RemapTable {
    /// Insertion-ordered (from, to) pairs; order is the durable encoding
    /// order, so it must be deterministic.
    entries: Vec<(LineAddr, LineAddr)>,
    /// Fast lookup from retired line to its index in `entries`.
    index: FastMap<LineAddr, usize>,
    spare_base: u64,
    spare_count: u64,
}

impl RemapTable {
    /// Creates an empty table drawing spares from `spare_count` lines
    /// starting at `spare_base`.
    pub fn new(spare_base: u64, spare_count: u64) -> Self {
        RemapTable {
            entries: Vec::new(),
            index: FastMap::default(),
            spare_base,
            spare_count,
        }
    }

    /// Number of remapped lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no lines have been remapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Spare lines still available for retirement.
    pub fn spares_left(&self) -> u64 {
        self.spare_count - self.entries.len() as u64
    }

    /// Resolves a line through the table: the spare if `line` was retired,
    /// otherwise `line` itself.
    #[inline]
    pub fn resolve(&self, line: LineAddr) -> LineAddr {
        match self.index.get(&line) {
            Some(&i) => self.entries[i].1,
            None => line,
        }
    }

    /// Returns `true` if `line` has been retired and redirected.
    #[inline]
    pub fn is_remapped(&self, line: LineAddr) -> bool {
        self.index.contains_key(&line)
    }

    /// Retires `line`, allocating the next spare for it. Idempotent:
    /// remapping an already-retired line returns its existing spare.
    ///
    /// Returns `None` when the spare range is exhausted.
    pub fn remap(&mut self, line: LineAddr) -> Option<LineAddr> {
        if let Some(&i) = self.index.get(&line) {
            return Some(self.entries[i].1);
        }
        let next = self.entries.len() as u64;
        if next >= self.spare_count {
            return None;
        }
        let spare = LineAddr(self.spare_base + next);
        self.index.insert(line, self.entries.len());
        self.entries.push((line, spare));
        Some(spare)
    }

    /// Iterates over `(from, to)` pairs in durable (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, LineAddr)> + '_ {
        self.entries.iter().copied()
    }

    /// Durable encoding: entry triples first, count word published last.
    ///
    /// The write order is the crash-consistency contract — see the module
    /// docs. [`decode_words`](Self::decode_words) of any prefix of this
    /// sequence yields a prefix of the table.
    pub fn encode_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.entries.len() * REMAP_ENTRY_WORDS + 1);
        for &(from, to) in &self.entries {
            words.push(from.raw());
            words.push(to.raw());
            words.push(entry_checksum(from.raw(), to.raw()));
        }
        words.push(self.entries.len() as u64);
        words
    }

    /// Decodes a (possibly crash-truncated) word sequence produced by
    /// writing [`encode_words`](Self::encode_words) in order.
    ///
    /// The final word present is taken as the count; entries beyond the
    /// words actually present, or with a checksum mismatch, are dropped —
    /// a crash can shorten the mapping but never invent or tear an entry.
    pub fn decode_words(words: &[u64], spare_base: u64, spare_count: u64) -> Self {
        let mut table = RemapTable::new(spare_base, spare_count);
        let Some((&count, body)) = words.split_last() else {
            return table;
        };
        let complete = body.len() / REMAP_ENTRY_WORDS;
        let trusted = (count as usize).min(complete).min(spare_count as usize);
        for i in 0..trusted {
            let from = body[i * REMAP_ENTRY_WORDS];
            let to = body[i * REMAP_ENTRY_WORDS + 1];
            let sum = body[i * REMAP_ENTRY_WORDS + 2];
            if sum != entry_checksum(from, to) {
                // A torn entry ends the trustworthy prefix.
                break;
            }
            table.index.insert(LineAddr(from), table.entries.len());
            table.entries.push((LineAddr(from), LineAddr(to)));
        }
        table
    }
}

impl fmt::Display for RemapTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remap[{} retired]", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(n: u64) -> RemapTable {
        let mut t = RemapTable::new(10_000, 64);
        for i in 0..n {
            t.remap(LineAddr(100 + i)).unwrap();
        }
        t
    }

    #[test]
    fn resolve_identity_when_unmapped() {
        let t = RemapTable::new(10_000, 4);
        assert_eq!(t.resolve(LineAddr(7)), LineAddr(7));
        assert!(!t.is_remapped(LineAddr(7)));
        assert!(t.is_empty());
    }

    #[test]
    fn remap_allocates_sequential_spares() {
        let mut t = RemapTable::new(10_000, 4);
        assert_eq!(t.remap(LineAddr(5)), Some(LineAddr(10_000)));
        assert_eq!(t.remap(LineAddr(9)), Some(LineAddr(10_001)));
        assert_eq!(t.resolve(LineAddr(5)), LineAddr(10_000));
        assert_eq!(t.resolve(LineAddr(9)), LineAddr(10_001));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remap_is_idempotent() {
        let mut t = RemapTable::new(10_000, 4);
        let first = t.remap(LineAddr(5)).unwrap();
        assert_eq!(t.remap(LineAddr(5)), Some(first));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn spare_exhaustion_returns_none() {
        let mut t = RemapTable::new(10_000, 2);
        assert!(t.remap(LineAddr(1)).is_some());
        assert!(t.remap(LineAddr(2)).is_some());
        assert_eq!(t.remap(LineAddr(3)), None);
        // The failed allocation must not have corrupted the table.
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(LineAddr(3)), LineAddr(3));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = table_with(5);
        let words = t.encode_words();
        let back = RemapTable::decode_words(&words, 10_000, 64);
        assert_eq!(back, t);
    }

    #[test]
    fn empty_roundtrip() {
        let t = RemapTable::new(10_000, 64);
        let back = RemapTable::decode_words(&t.encode_words(), 10_000, 64);
        assert_eq!(back, t);
        let none = RemapTable::decode_words(&[], 10_000, 64);
        assert!(none.is_empty());
    }

    #[test]
    fn every_crash_prefix_decodes_to_a_mapping_prefix() {
        let t = table_with(6);
        let words = t.encode_words();
        let full: Vec<_> = t.iter().collect();
        for cut in 0..=words.len() {
            let back = RemapTable::decode_words(&words[..cut], 10_000, 64);
            let got: Vec<_> = back.iter().collect();
            assert!(
                got.len() <= full.len() && got[..] == full[..got.len()],
                "prefix cut at {cut} must decode to a mapping prefix, got {got:?}"
            );
            // Resolution agrees with the full table on every decoded entry.
            for (from, to) in got {
                assert_eq!(back.resolve(from), to);
            }
        }
    }

    #[test]
    fn torn_entry_is_dropped() {
        let t = table_with(3);
        let mut words = t.encode_words();
        // Tear the middle entry's `to` word; its checksum no longer matches.
        words[REMAP_ENTRY_WORDS + 1] ^= 0xff;
        let back = RemapTable::decode_words(&words, 10_000, 64);
        // Only the entries before the tear survive.
        assert_eq!(back.len(), 1);
        assert_eq!(back.resolve(LineAddr(100)), LineAddr(10_000));
        assert_eq!(back.resolve(LineAddr(101)), LineAddr(101));
    }

    #[test]
    fn count_word_caps_trusted_entries() {
        let t = table_with(3);
        let mut words = t.encode_words();
        // A stale (smaller) count word hides later entries even though
        // their words are intact — exactly the crash-ordering contract.
        *words.last_mut().unwrap() = 1;
        let back = RemapTable::decode_words(&words, 10_000, 64);
        assert_eq!(back.len(), 1);
    }
}
