//! Latency constants of the modelled PM device and memory system.
//!
//! These values come from the paper's Table I, which configures gem5
//! according to the Optane DC characterization study (Izraelevitz et al.,
//! 2019). The simulated core runs at 2 GHz, so one cycle is 0.5 ns; the
//! constants below are expressed in *cycles* for direct use by the timing
//! simulator in `sw-sim`.

/// Core clock frequency in Hz (2 GHz).
pub const CORE_FREQ_HZ: u64 = 2_000_000_000;

/// Converts nanoseconds to core cycles at 2 GHz.
pub const fn ns_to_cycles(ns: u64) -> u64 {
    ns * (CORE_FREQ_HZ / 1_000_000_000)
}

/// PM read latency: 346 ns.
pub const PM_READ_NS: u64 = 346;
/// Latency for a write (CLWB payload) to reach the ADR-protected PM
/// controller and be acknowledged: 96 ns.
pub const PM_WRITE_TO_CONTROLLER_NS: u64 = 96;
/// Latency for the controller to drain a write to the PM media: 500 ns.
pub const PM_WRITE_TO_MEDIA_NS: u64 = 500;

/// L1 instruction-cache hit latency: 1 ns.
pub const L1I_HIT_NS: u64 = 1;
/// L1 data-cache hit latency: 2 ns.
pub const L1D_HIT_NS: u64 = 2;
/// L2 hit latency: 16 ns.
pub const L2_HIT_NS: u64 = 16;

/// DRAM access latency (row-buffer hit average), used for volatile data.
pub const DRAM_ACCESS_NS: u64 = 50;

/// PM read latency in cycles.
pub const PM_READ_CYCLES: u64 = ns_to_cycles(PM_READ_NS);
/// PM write-to-controller acknowledgement latency in cycles.
pub const PM_WRITE_TO_CONTROLLER_CYCLES: u64 = ns_to_cycles(PM_WRITE_TO_CONTROLLER_NS);
/// PM write-to-media latency in cycles.
pub const PM_WRITE_TO_MEDIA_CYCLES: u64 = ns_to_cycles(PM_WRITE_TO_MEDIA_NS);
/// L1D hit latency in cycles.
pub const L1D_HIT_CYCLES: u64 = ns_to_cycles(L1D_HIT_NS);
/// L2 hit latency in cycles.
pub const L2_HIT_CYCLES: u64 = ns_to_cycles(L2_HIT_NS);
/// DRAM access latency in cycles.
pub const DRAM_ACCESS_CYCLES: u64 = ns_to_cycles(DRAM_ACCESS_NS);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ghz_conversion() {
        assert_eq!(ns_to_cycles(1), 2);
        assert_eq!(ns_to_cycles(500), 1000);
    }

    #[test]
    fn table_i_constants() {
        assert_eq!(PM_READ_CYCLES, 692);
        assert_eq!(PM_WRITE_TO_CONTROLLER_CYCLES, 192);
        assert_eq!(PM_WRITE_TO_MEDIA_CYCLES, 1000);
        assert_eq!(L1D_HIT_CYCLES, 4);
        assert_eq!(L2_HIT_CYCLES, 32);
    }
}
