//! Property-based tests for the PM substrate.

use proptest::prelude::*;
use sw_pmem::{Addr, Memory, PmImage, PmLayout, WORDS_PER_LINE};

fn heap_addr(layout: &PmLayout, word: u64) -> Addr {
    layout.heap_base().offset_words(word)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Visible reads always return the last store.
    #[test]
    fn load_returns_last_store(ops in prop::collection::vec((0u64..32, 1u64..1000), 1..60)) {
        let layout = PmLayout::default();
        let mut mem = Memory::new(layout.clone());
        let mut shadow = std::collections::HashMap::new();
        for (w, v) in ops {
            mem.store(heap_addr(&layout, w), v);
            shadow.insert(w, v);
        }
        for (w, v) in shadow {
            prop_assert_eq!(mem.load(heap_addr(&layout, w)), v);
        }
    }

    /// After persisting everything, a crash preserves all stores; without
    /// persisting, a crash loses them all.
    #[test]
    fn crash_semantics(ops in prop::collection::vec((0u64..32, 1u64..1000), 1..40)) {
        let layout = PmLayout::default();
        let mut mem = Memory::new(layout.clone());
        for (w, v) in &ops {
            mem.store(heap_addr(&layout, *w), *v);
        }
        let lost = mem.crash();
        for (w, _) in &ops {
            prop_assert_eq!(lost.load(heap_addr(&layout, *w)), 0);
        }
        mem.persist_all();
        let kept = mem.crash();
        for (w, v) in &ops {
            let expect = ops.iter().rev().find(|(x, _)| x == w).expect("present").1;
            let _ = v;
            prop_assert_eq!(kept.load(heap_addr(&layout, *w)), expect);
        }
    }

    /// Persisting a line drains all words of that line and nothing else.
    #[test]
    fn persist_is_line_granular(words in prop::collection::vec(0u64..(2 * WORDS_PER_LINE as u64), 1..20)) {
        let layout = PmLayout::default();
        let mut mem = Memory::new(layout.clone());
        for &w in &words {
            mem.store(heap_addr(&layout, w), w + 1);
        }
        // Persist only the first heap line.
        mem.persist(layout.heap_base());
        let crashed = mem.crash();
        for &w in &words {
            let expect = if w < WORDS_PER_LINE as u64 { w + 1 } else { 0 };
            prop_assert_eq!(crashed.load(heap_addr(&layout, w)), expect);
        }
    }

    /// Image absorb round-trips arbitrary line contents.
    #[test]
    fn image_absorb_roundtrip(vals in prop::collection::vec(0u64..u64::MAX, WORDS_PER_LINE)) {
        let layout = PmLayout::default();
        let line = layout.heap_base().line();
        let mut src = PmImage::new();
        for (i, v) in vals.iter().enumerate() {
            src.store(line.word(i), *v);
        }
        let mut dst = PmImage::new();
        dst.absorb_line(line, &src);
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(dst.load(line.word(i)), *v);
        }
    }

    /// The layout never hands out overlapping regions.
    #[test]
    fn layout_regions_are_disjoint(threads in 1usize..16, entries in 1u64..512) {
        let layout = PmLayout::new(threads, entries);
        let mut regions = Vec::new();
        for t in 0..threads {
            regions.push(layout.log_region(t));
        }
        regions.push(layout.meta_region());
        regions.push(layout.heap_region());
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                let a_end = a.base.raw() + a.bytes;
                let b_end = b.base.raw() + b.bytes;
                prop_assert!(a_end <= b.base.raw() || b_end <= a.base.raw(),
                    "regions overlap: {a:?} {b:?}");
            }
        }
    }
}

/// A random alloc/free/carve script applied to a [`sw_pmem::PoolAlloc`]
/// with its journal mirrored into a PM image, exactly as the language
/// runtime does it: carve/alloc append an alloc record, free appends a
/// free record once the quarantined block is released.
mod heap {
    use proptest::prelude::*;
    use sw_pmem::{
        encode_heap_record, recover_heap, scan_pool, BlockKind, PmImage, PmLayout, PoolAlloc,
    };

    #[derive(Debug, Clone)]
    enum Op {
        Carve(u64),
        Alloc(u64),
        FreeNth(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u64..6).prop_map(Op::Carve),
            (1u64..40).prop_map(Op::Alloc),
            (0usize..16).prop_map(Op::FreeNth),
        ]
    }

    fn write_record(img: &mut PmImage, layout: &PmLayout, slot: u64, rec: [u64; 8]) {
        let base = layout.heap_journal_slot(0, slot);
        for (i, &v) in rec.iter().enumerate() {
            img.store(base.offset_words(i as u64), v);
        }
    }

    /// Runs the script, mirroring every durable-effect op into `img`'s
    /// journal. Returns the final volatile pool.
    fn run_script(ops: &[Op], img: &mut PmImage, layout: &PmLayout) -> PoolAlloc {
        img.store(layout.pool_meta_base(0), sw_pmem::HEAP_MAGIC);
        let mut p = PoolAlloc::new(layout.pool_arena_lines(0));
        let mut dynamic: Vec<u64> = Vec::new();
        let mut carving = true;
        for op in ops {
            match *op {
                Op::Carve(n) if carving => {
                    let off = p.carve(n).expect("arena space");
                    let rec =
                        encode_heap_record(true, off, n, p.next_seq, p.epoch, BlockKind::Carve);
                    write_record(img, layout, p.next_slot, rec);
                    p.next_slot += 1;
                    p.next_seq += 1;
                }
                Op::Carve(_) => {}
                Op::Alloc(n) => {
                    carving = false;
                    let off = p.alloc(n).expect("arena space");
                    let block = n.max(1).next_power_of_two();
                    let rec = encode_heap_record(
                        true,
                        off,
                        block,
                        p.next_seq,
                        p.epoch,
                        BlockKind::Dynamic,
                    );
                    write_record(img, layout, p.next_slot, rec);
                    p.next_slot += 1;
                    p.next_seq += 1;
                    dynamic.push(off);
                }
                Op::FreeNth(i) => {
                    if dynamic.is_empty() {
                        continue;
                    }
                    let off = dynamic.remove(i % dynamic.len());
                    let lines = p.free(off).expect("live dynamic block");
                    let rec = encode_heap_record(
                        false,
                        off,
                        lines,
                        p.next_seq,
                        p.epoch,
                        BlockKind::Dynamic,
                    );
                    write_record(img, layout, p.next_slot, rec);
                    p.next_slot += 1;
                    p.next_seq += 1;
                }
            }
        }
        p.release_pending();
        p
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// No two live blocks ever overlap, and every arena line is
        /// accounted for exactly once (live + free + pending).
        #[test]
        fn live_blocks_never_overlap(ops in prop::collection::vec(op_strategy(), 1..60)) {
            let layout = PmLayout::new(1, 64);
            let mut img = PmImage::new();
            let p = run_script(&ops, &mut img, &layout);
            let blocks: Vec<_> = p.live_blocks().collect();
            for w in blocks.windows(2) {
                let (a_off, a_len, _) = w[0];
                let (b_off, _, _) = w[1];
                prop_assert!(a_off + a_len <= b_off,
                    "blocks overlap: {:?} {:?}", w[0], w[1]);
            }
            prop_assert!(p.accounting_exact());
        }

        /// Splitting on alloc and coalescing on free round-trip: freeing
        /// everything dynamic restores a fully-coalesced arena.
        #[test]
        fn split_coalesce_round_trip(sizes in prop::collection::vec(1u64..64, 1..24)) {
            let layout = PmLayout::new(1, 64);
            let mut p = PoolAlloc::new(layout.pool_arena_lines(0));
            let offs: Vec<u64> = sizes.iter().map(|&n| p.alloc(n).expect("space")).collect();
            for off in offs {
                prop_assert!(p.free(off).is_some());
            }
            p.release_pending();
            prop_assert_eq!(p.free_lines(), p.arena_lines());
            prop_assert_eq!(p.largest_free_lines(), p.arena_lines());
            prop_assert!(p.accounting_exact());
        }

        /// Journal replay reconstructs exactly the volatile state, and
        /// replaying twice changes nothing (idempotence).
        #[test]
        fn journal_replay_is_idempotent(ops in prop::collection::vec(op_strategy(), 1..60)) {
            let layout = PmLayout::new(1, 64);
            let mut img = PmImage::new();
            let p = run_script(&ops, &mut img, &layout);
            let scan = scan_pool(&img, &layout, 0);
            prop_assert!(scan.faults.is_empty());
            let r1 = PoolAlloc::rebuild(&scan, layout.pool_arena_lines(0)).expect("consistent");
            let r2 = PoolAlloc::rebuild(&scan, layout.pool_arena_lines(0)).expect("consistent");
            prop_assert_eq!(&r1, &r2);
            let live_now: Vec<_> = p.live_blocks().collect();
            let live_replayed: Vec<_> = r1.live_blocks().collect();
            prop_assert_eq!(live_now, live_replayed);
            prop_assert_eq!(p.frontier(), r1.frontier());
            // Whole-heap recovery agrees with the single-pool path.
            let rec = recover_heap(&img, &layout);
            prop_assert!(rec.faults.is_empty());
            prop_assert_eq!(rec.pools[0].as_ref().expect("healthy").live_count(),
                r1.live_count());
        }

        /// Truncating the journal's final record at any word boundary
        /// (a crash mid-publication) never corrupts the scan: the
        /// in-flight record is reclaimed and everything before it
        /// replays cleanly.
        #[test]
        fn torn_tail_record_is_reclaimed(
            ops in prop::collection::vec(op_strategy(), 2..40),
            cut in 0usize..8,
        ) {
            let layout = PmLayout::new(1, 64);
            let mut img = PmImage::new();
            let p = run_script(&ops, &mut img, &layout);
            if p.next_slot == 0 {
                return Ok(());
            }
            // Tear the last record: keep only `cut` of its words.
            let slot = p.next_slot - 1;
            let base = layout.heap_journal_slot(0, slot);
            for w in (cut as u64)..8 {
                img.store(base.offset_words(w), 0);
            }
            let scan = scan_pool(&img, &layout, 0);
            for f in &scan.faults {
                prop_assert!(!f.is_fatal(), "tear misclassified: {f:?}");
            }
            let r = PoolAlloc::rebuild(&scan, layout.pool_arena_lines(0)).expect("consistent");
            prop_assert!(r.accounting_exact());
            // The lost record was one alloc (its block is reclaimed) or
            // one free (its block stays live): one block either way.
            prop_assert!(r.live_count().abs_diff(p.live_count()) <= 1);
        }
    }
}
