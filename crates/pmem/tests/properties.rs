//! Property-based tests for the PM substrate.

use proptest::prelude::*;
use sw_pmem::{Addr, Memory, PmImage, PmLayout, WORDS_PER_LINE};

fn heap_addr(layout: &PmLayout, word: u64) -> Addr {
    layout.heap_base().offset_words(word)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Visible reads always return the last store.
    #[test]
    fn load_returns_last_store(ops in prop::collection::vec((0u64..32, 1u64..1000), 1..60)) {
        let layout = PmLayout::default();
        let mut mem = Memory::new(layout.clone());
        let mut shadow = std::collections::HashMap::new();
        for (w, v) in ops {
            mem.store(heap_addr(&layout, w), v);
            shadow.insert(w, v);
        }
        for (w, v) in shadow {
            prop_assert_eq!(mem.load(heap_addr(&layout, w)), v);
        }
    }

    /// After persisting everything, a crash preserves all stores; without
    /// persisting, a crash loses them all.
    #[test]
    fn crash_semantics(ops in prop::collection::vec((0u64..32, 1u64..1000), 1..40)) {
        let layout = PmLayout::default();
        let mut mem = Memory::new(layout.clone());
        for (w, v) in &ops {
            mem.store(heap_addr(&layout, *w), *v);
        }
        let lost = mem.crash();
        for (w, _) in &ops {
            prop_assert_eq!(lost.load(heap_addr(&layout, *w)), 0);
        }
        mem.persist_all();
        let kept = mem.crash();
        for (w, v) in &ops {
            let expect = ops.iter().rev().find(|(x, _)| x == w).expect("present").1;
            let _ = v;
            prop_assert_eq!(kept.load(heap_addr(&layout, *w)), expect);
        }
    }

    /// Persisting a line drains all words of that line and nothing else.
    #[test]
    fn persist_is_line_granular(words in prop::collection::vec(0u64..(2 * WORDS_PER_LINE as u64), 1..20)) {
        let layout = PmLayout::default();
        let mut mem = Memory::new(layout.clone());
        for &w in &words {
            mem.store(heap_addr(&layout, w), w + 1);
        }
        // Persist only the first heap line.
        mem.persist(layout.heap_base());
        let crashed = mem.crash();
        for &w in &words {
            let expect = if w < WORDS_PER_LINE as u64 { w + 1 } else { 0 };
            prop_assert_eq!(crashed.load(heap_addr(&layout, w)), expect);
        }
    }

    /// Image absorb round-trips arbitrary line contents.
    #[test]
    fn image_absorb_roundtrip(vals in prop::collection::vec(0u64..u64::MAX, WORDS_PER_LINE)) {
        let layout = PmLayout::default();
        let line = layout.heap_base().line();
        let mut src = PmImage::new();
        for (i, v) in vals.iter().enumerate() {
            src.store(line.word(i), *v);
        }
        let mut dst = PmImage::new();
        dst.absorb_line(line, &src);
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(dst.load(line.word(i)), *v);
        }
    }

    /// The layout never hands out overlapping regions.
    #[test]
    fn layout_regions_are_disjoint(threads in 1usize..16, entries in 1u64..512) {
        let layout = PmLayout::new(threads, entries);
        let mut regions = Vec::new();
        for t in 0..threads {
            regions.push(layout.log_region(t));
        }
        regions.push(layout.meta_region());
        regions.push(layout.heap_region());
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                let a_end = a.base.raw() + a.bytes;
                let b_end = b.base.raw() + b.bytes;
                prop_assert!(a_end <= b.base.raw() || b_end <= a.base.raw(),
                    "regions overlap: {a:?} {b:?}");
            }
        }
    }
}
