//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate implements the subset of the proptest API the workspace's
//! property tests use: the [`Strategy`] abstraction (ranges, tuples,
//! `prop_map`, collections, `select`, `Just`, `any`, weighted unions), the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, and [`ProptestConfig`].
//!
//! Differences from upstream: generation is purely random with a
//! deterministic per-test seed (derived from the test's module path and
//! name), and failing cases are **not shrunk** — the panic message reports
//! the case number so a failure is reproducible by rerunning the test.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng as _;

/// The random source handed to strategies.
pub type TestRng = SmallRng;

/// Error type returned by a failing property body (via `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

#[doc(hidden)]
pub mod reexport {
    pub use rand::SeedableRng;
}

/// FNV-1a hash of a string; used to derive a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A weighted choice among boxed strategies (built by [`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Self { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights changed during generation")
        }
    }

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// An arbitrary value of type `A` (upstream `any::<A>()`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    //  half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::strategy::Strategy;
    use super::*;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Uniformly selects one of `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty set");
        Select(options)
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestCaseError, TestRng,
    };

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Weighted (or unweighted) choice among strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each inner `fn name(pat in strategy, ...)` body
/// runs `config.cases` times against freshly generated inputs; a
/// `prop_assert*` failure panics with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::TestRng as $crate::reexport::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}`: case #{} of {} failed: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u64> {
        prop_oneof![
            3 => 0u64..10,
            1 => (10u64..20).prop_map(|x| x),
            1 => Just(42u64),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len = {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn fixed_len_vec(v in prop::collection::vec(0u64..5, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn oneof_hits_all_arms(v in prop::collection::vec(arb_small(), 64)) {
            prop_assert!(v.iter().all(|&x| x < 20 || x == 42));
        }

        #[test]
        fn select_and_any(c in prop::sample::select(vec!['a', 'b']), b in any::<bool>()) {
            prop_assert!(c == 'a' || c == 'b');
            let _ = b;
        }

        #[test]
        fn tuples_nest(pair in (0u32..4, prop::collection::vec(0u64..3, 1..4))) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!pair.1.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u64..100, 5);
        let mut r1 = crate::TestRng::seed_from_u64(9);
        let mut r2 = crate::TestRng::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
