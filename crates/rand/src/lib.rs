//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the (small) subset of the `rand` 0.8 API the
//! workspace actually uses, with deterministic, portable implementations:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`,
//! * [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! * [`thread_rng`] (a per-call OS-entropy-seeded `SmallRng`).
//!
//! Statistical quality matches the upstream `SmallRng` family (xoshiro);
//! stream values differ from upstream, which only matters for tests that
//! hard-code expected sequences (none in this workspace).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the shim's analogue of `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, bound)` without modulo bias (Lemire's method
/// simplified to rejection sampling on the top bits).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Types drawable uniformly from a range (the shim's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ (same family upstream
    /// `SmallRng` uses on 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
            }
            Self { s }
        }
    }
}

/// A generator seeded from OS entropy (via `std`'s hasher randomness),
/// mirroring `rand::thread_rng` closely enough for test use.
#[derive(Debug, Clone)]
pub struct ThreadRng(rngs::SmallRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns a fresh OS-entropy-seeded generator.
pub fn thread_rng() -> ThreadRng {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    // RandomState draws per-process OS entropy; hashing a per-call counter
    // decorrelates successive calls.
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALLS: AtomicU64 = AtomicU64::new(0);
    let mut h = RandomState::new().build_hasher();
    h.write_u64(CALLS.fetch_add(1, Ordering::Relaxed));
    ThreadRng(rngs::SmallRng::seed_from_u64(h.finish()))
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn thread_rng_works() {
        let mut r = thread_rng();
        let _ = r.next_u64();
        let _ = r.gen_range(0u64..10);
    }
}
