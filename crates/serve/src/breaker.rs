//! Per-shard circuit breaker: `Closed → Open → HalfOpen` with seeded
//! probe requests.
//!
//! The serving layer consults the breaker at admission time. While
//! `Closed`, requests flow; repeated request failures (persist-retry
//! exhaustion, deadline blowouts, or an MCE-class poisoned read) trip the
//! breaker to `Open`, which rejects everything for a cooldown so the
//! shard can run recovery without a thundering herd. After the cooldown
//! the breaker admits a bounded number of *probe* requests (`HalfOpen`);
//! all probes succeeding re-closes the breaker, any probe failing
//! re-opens it. All transitions are deterministic functions of the
//! request stream and the virtual clock — identical seeds reproduce
//! identical trip timelines.

use std::fmt;

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests are admitted and failures are counted.
    Closed,
    /// Tripped: all requests are rejected until the cooldown elapses.
    Open,
    /// Probing: a bounded number of requests are admitted; their fate
    /// decides between `Closed` and `Open`.
    HalfOpen,
}

impl BreakerState {
    /// Short stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve the request normally.
    Admit,
    /// Serve the request as a half-open probe; its outcome decides the
    /// breaker's fate.
    Probe,
    /// Reject: the shard is quarantined (degraded mode).
    Reject,
}

/// A per-shard circuit breaker over the serving layer's virtual clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive failures while `Closed`.
    consecutive: u32,
    /// Failures that trip `Closed → Open`.
    trip_threshold: u32,
    /// Cycles `Open` rejects before probing.
    cooldown: u64,
    /// Cycle of the most recent trip.
    opened_at: u64,
    /// Successful probes required to re-close.
    probe_quota: u32,
    /// Successful probes so far this `HalfOpen` episode.
    probes_ok: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker. `trip_threshold` consecutive failures
    /// trip it; it stays open `cooldown` cycles; `probe_quota` successful
    /// probes re-close it.
    pub fn new(trip_threshold: u32, cooldown: u64, probe_quota: u32) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive: 0,
            trip_threshold: trip_threshold.max(1),
            cooldown,
            opened_at: 0,
            probe_quota: probe_quota.max(1),
            probes_ok: 0,
            trips: 0,
        }
    }

    /// Current state (advancing `Open → HalfOpen` is done by
    /// [`admit`](Self::admit), which knows the clock).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Number of `Closed/HalfOpen → Open` transitions so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Admission decision for a request arriving at `now`.
    pub fn admit(&mut self, now: u64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                if now >= self.opened_at.saturating_add(self.cooldown) {
                    self.state = BreakerState::HalfOpen;
                    self.probes_ok = 0;
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
            BreakerState::HalfOpen => Admission::Probe,
        }
    }

    /// Records a served request's success.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive = 0,
            BreakerState::HalfOpen => {
                self.probes_ok += 1;
                if self.probes_ok >= self.probe_quota {
                    self.state = BreakerState::Closed;
                    self.consecutive = 0;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a served request's failure at `now` (retry exhaustion,
    /// deadline blowout, or poisoned read). May trip the breaker.
    pub fn on_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive += 1;
                if self.consecutive >= self.trip_threshold {
                    self.trip(now);
                }
            }
            // Any probe failure re-opens immediately.
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    /// Trips straight to `Open` regardless of state (used for MCE-class
    /// events, which quarantine on the first occurrence).
    pub fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive = 0;
        self.probes_ok = 0;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 100, 2);
        b.on_failure(10);
        b.on_success();
        b.on_failure(20);
        b.on_failure(30);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(40);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_rejects_until_cooldown_then_probes() {
        let mut b = CircuitBreaker::new(1, 100, 2);
        b.on_failure(50);
        assert_eq!(b.admit(60), Admission::Reject);
        assert_eq!(b.admit(149), Admission::Reject);
        assert_eq!(b.admit(150), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_quota_recloses_and_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(1, 100, 2);
        b.on_failure(0);
        assert_eq!(b.admit(100), Admission::Probe);
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);

        b.on_failure(200);
        assert_eq!(b.admit(300), Admission::Probe);
        b.on_failure(301);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 3);
        // The re-open restarts the cooldown from the failure time.
        assert_eq!(b.admit(350), Admission::Reject);
        assert_eq!(b.admit(401), Admission::Probe);
    }

    #[test]
    fn mce_trip_quarantines_from_any_state() {
        let mut b = CircuitBreaker::new(8, 100, 1);
        assert_eq!(b.admit(0), Admission::Admit);
        b.trip(5);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(6), Admission::Reject);
    }
}
