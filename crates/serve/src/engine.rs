//! The open-loop serving engine: seeded arrivals, admission control,
//! shard routing, device-fault-driven breaker trips, and failover.
//!
//! The engine runs in the simulator's virtual cycle domain. A real
//! calibration simulation of the configured benchmark yields the
//! per-request service time; the open-loop generator then offers
//! requests at a configured fraction of the resulting capacity. Each
//! shard fronts an online [`DeviceFaultUnit`] — the same state machine
//! the PM controller consults — so persist retries, media retirement,
//! spare exhaustion, and poisoned reads shape per-request latency and
//! drive the circuit breakers exactly as they would the memory path.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use strandweaver::experiment::Experiment;
use strandweaver::faults::{
    DeviceFault, DeviceFaultClass, DeviceFaultSchedule, DeviceFaultUnit, FaultTrigger,
    WriteDecision,
};
use strandweaver::trace::MetricsRegistry;

use crate::breaker::{Admission, BreakerState, CircuitBreaker};
use crate::recovery::RecoveryContext;
use crate::report::{ServeCellReport, ShardReport};
use crate::{ArrivalKind, ServeConfig, ShedPolicy};

/// First raw line of the serving working set (clear of the layouts the
/// calibration and recovery runs use).
const SHARD_LINE_BASE: u64 = 0x10_000;
/// Lines per shard working set.
const SHARD_LINES: u64 = 16;
/// Request slots a shard cycles through (each slot touches a window of
/// the working set).
const SHARD_SLOTS: u64 = 8;
/// Consecutive request failures that trip a shard's breaker.
const TRIP_THRESHOLD: u32 = 3;
/// Breaker cooldown, in multiples of the service time.
const COOLDOWN_SERVICES: u64 = 8;
/// Successful half-open probes required to re-close a breaker.
const PROBE_QUOTA: u32 = 2;
/// Upper bound on crash/recover legs per cell (each leg is three real
/// simulator/recovery runs; trips beyond this still quarantine, they
/// just reuse the established verdict).
const MAX_LEGS: u64 = 8;

/// The line a shard's `slot`-th request touches with its `w`-th
/// operation.
fn line_for(shard: usize, slot: u64, w: u64) -> u64 {
    SHARD_LINE_BASE + shard as u64 * 64 + (slot % SHARD_SLOTS + w) % SHARD_LINES
}

/// The engineered chaos-under-load schedule for one shard. Roles rotate
/// by shard index so the default four-shard cell exercises every
/// failure mode: an MCE-class poisoned read (role 0), spare-pool
/// exhaustion forcing failover (role 1), sticky wear-out tripping the
/// breaker through repeated persist retries (role 2), and a plain
/// transient whose backed-off retry succeeds (role 3).
fn shard_schedule(cfg: &ServeConfig, shard: usize) -> DeviceFaultSchedule {
    let mut s = DeviceFaultSchedule::none();
    s.seed = cfg.seed ^ shard as u64;
    if !cfg.faults {
        return s;
    }
    match shard % 4 {
        0 => {
            // The second read this shard serves returns poisoned data.
            s.faults.push(DeviceFault {
                class: DeviceFaultClass::ReadPoison,
                trigger: FaultTrigger::NthRead(2),
                sticky: false,
            });
        }
        1 => {
            // One spare, two dead lines in the working set: the second
            // retirement exhausts the pool and fails the shard over.
            s.spare_count = 1;
            for idx in [0u64, 2] {
                s.faults.push(DeviceFault {
                    class: DeviceFaultClass::PermanentMediaError,
                    trigger: FaultTrigger::OnLine(line_for(shard, 0, idx)),
                    sticky: true,
                });
            }
        }
        2 => {
            // Wearing-out lines: sticky transients that keep failing
            // long enough for consecutive requests to exhaust their
            // retry budgets and trip the breaker, then escalate to
            // remap and heal.
            s.max_retries = 9;
            s.escalate_after = 8;
            s.backoff_base = 16;
            for idx in 0..6u64 {
                s.faults.push(DeviceFault {
                    class: DeviceFaultClass::TransientWriteFail,
                    trigger: FaultTrigger::OnLine(SHARD_LINE_BASE + shard as u64 * 64 + idx),
                    sticky: true,
                });
            }
        }
        _ => {
            // A single transient blip; the first backed-off retry
            // succeeds.
            s.faults.push(DeviceFault {
                class: DeviceFaultClass::TransientWriteFail,
                trigger: FaultTrigger::NthWrite(5),
                sticky: false,
            });
        }
    }
    s
}

/// Seeded open-loop arrival generator.
struct Arrivals {
    rng: SmallRng,
    kind: ArrivalKind,
    /// Mean inter-arrival gap in cycles at the offered rate.
    mean: f64,
    t: f64,
    n: u64,
}

impl Arrivals {
    fn new(kind: ArrivalKind, mean: f64, seed: u64) -> Self {
        Arrivals {
            rng: SmallRng::seed_from_u64(seed ^ 0xa771_7a15_09e4_100b),
            kind,
            mean,
            t: 0.0,
            n: 0,
        }
    }

    /// Next arrival cycle (non-decreasing).
    fn next(&mut self) -> u64 {
        let mean = match self.kind {
            ArrivalKind::Poisson => self.mean,
            // On/off bursts of 16 arrivals: 4x the rate, then 1/4 of it.
            ArrivalKind::Bursty => {
                if (self.n / 16).is_multiple_of(2) {
                    self.mean / 4.0
                } else {
                    self.mean * 4.0
                }
            }
        };
        self.n += 1;
        let u: f64 = self.rng.gen();
        self.t += -(1.0 - u).ln() * mean;
        self.t as u64
    }
}

/// One independently-recoverable serving shard.
struct Shard {
    index: usize,
    unit: DeviceFaultUnit,
    breaker: CircuitBreaker,
    /// Cycle at which the shard finishes its current backlog.
    next_free: u64,
    /// Per-shard request ordinal (selects the working-set window).
    slot: u64,
    /// Permanently failed over (spare-pool exhaustion).
    failed: bool,
    /// Token-bucket state for [`ShedPolicy::TokenBucket`].
    tokens: f64,
    last_refill: u64,
    // Accounting.
    served: u64,
    shed: u64,
    unavailable: u64,
    recovered: u64,
}

impl Shard {
    fn new(cfg: &ServeConfig, index: usize, service_cycles: u64) -> Self {
        Shard {
            index,
            unit: DeviceFaultUnit::new(shard_schedule(cfg, index)),
            breaker: CircuitBreaker::new(
                TRIP_THRESHOLD,
                service_cycles * COOLDOWN_SERVICES,
                PROBE_QUOTA,
            ),
            next_free: 0,
            slot: 0,
            failed: false,
            tokens: cfg.queue_depth as f64,
            last_refill: 0,
            served: 0,
            shed: 0,
            unavailable: 0,
            recovered: 0,
        }
    }

    /// Applies the shed policy at admission; `true` means shed.
    fn sheds(
        &mut self,
        policy: ShedPolicy,
        arrive: u64,
        deadline: u64,
        service_cycles: u64,
        queue_depth: usize,
    ) -> bool {
        match policy {
            ShedPolicy::DropTail => {
                let backlog = self.next_free.saturating_sub(arrive);
                let queued = backlog.div_ceil(service_cycles);
                queued >= queue_depth as u64
            }
            ShedPolicy::DeadlineShed => {
                self.next_free.max(arrive).saturating_add(service_cycles) > deadline
            }
            ShedPolicy::TokenBucket => {
                // Refill at the calibrated sustainable rate (one request
                // per service time), capped at the queue bound.
                let elapsed = arrive.saturating_sub(self.last_refill);
                self.tokens =
                    (self.tokens + elapsed as f64 / service_cycles as f64).min(queue_depth as f64);
                self.last_refill = arrive;
                if self.tokens >= 1.0 {
                    self.tokens -= 1.0;
                    false
                } else {
                    true
                }
            }
        }
    }
}

/// How one admitted request ended.
enum Served {
    /// Completed at `finish`.
    Done { finish: u64 },
    /// Blew its deadline (mid-service or waiting out a backoff).
    Timeout { at: u64 },
    /// Exhausted its device retry budget.
    Failed { at: u64 },
    /// Consumed a poisoned read (MCE-class).
    Poisoned { at: u64 },
    /// Hit spare-pool exhaustion: the shard must fail over.
    Exhausted { at: u64 },
}

/// Serves one admitted request on `shard`, walking the device fault unit
/// line by line with deadline-checked retries.
fn serve_on(
    shard: &mut Shard,
    cfg: &ServeConfig,
    arrive: u64,
    deadline: u64,
    is_read: bool,
    service_cycles: u64,
    retries: &mut u64,
) -> Served {
    let ops = cfg.ops.max(1) as u64;
    let per_op = (service_cycles / ops).max(1);
    let mut now = arrive.max(shard.next_free);
    let slot = shard.slot;
    shard.slot += 1;

    if is_read {
        let decision = shard.unit.on_read(line_for(shard.index, slot, 0), now);
        now += per_op;
        shard.next_free = now;
        if decision.poisoned {
            return Served::Poisoned { at: now };
        }
        if now > deadline {
            return Served::Timeout { at: now };
        }
        return Served::Done { finish: now };
    }

    let mut attempts = 0u32;
    for w in 0..ops {
        let line = line_for(shard.index, slot, w);
        loop {
            match shard.unit.on_write(line, now) {
                WriteDecision::Proceed { .. } => {
                    now += per_op;
                    break;
                }
                WriteDecision::Fail { next_at, .. } | WriteDecision::Backoff { until: next_at } => {
                    attempts += 1;
                    *retries += 1;
                    // Deadline-checked re-admission: a retry that cannot
                    // start before the deadline is never re-admitted (no
                    // zombie retries), and a parked line (`u64::MAX`
                    // backoff after exhaustion) can never blow this
                    // guard either.
                    if next_at > deadline {
                        shard.next_free = now;
                        return Served::Timeout { at: deadline };
                    }
                    if attempts > cfg.max_request_retries {
                        shard.next_free = now;
                        return Served::Failed { at: now };
                    }
                    now = next_at.max(now + 1);
                }
                WriteDecision::RemapExhausted { .. } => {
                    shard.next_free = now;
                    return Served::Exhausted { at: now };
                }
            }
        }
        if now > deadline {
            shard.next_free = now;
            return Served::Timeout { at: now };
        }
    }
    shard.next_free = now;
    Served::Done { finish: now }
}

/// Runs one serving cell end to end and reports it.
///
/// # Errors
///
/// The first crash/recover leg violating durable-set equality, PMO
/// linear extension, or reconvergence, with a reproducer embedded.
pub fn serve_cell(cfg: &ServeConfig) -> Result<ServeCellReport, String> {
    // Calibration: a real timing run of the benchmark under this cell's
    // (design × lang) yields the per-request service time.
    let mut exp = Experiment::new(cfg.bench, cfg.lang, cfg.design)
        .threads(cfg.threads)
        .total_regions(cfg.regions)
        .ops_per_region(cfg.ops)
        .seed(cfg.seed);
    if cfg.redo {
        exp = exp.redo();
    }
    let calib = exp.run_timing();
    let service_cycles = (calib.cycles / cfg.regions.max(1) as u64).max(1);
    let deadline_cycles = service_cycles.saturating_mul(cfg.deadline_factor.max(2));

    let mut recovery = RecoveryContext::new(cfg);
    let shards_n = cfg.shards.max(1);
    let mut shards: Vec<Shard> = (0..shards_n)
        .map(|i| Shard::new(cfg, i, service_cycles))
        .collect();
    let mut arrivals = Arrivals::new(
        cfg.arrival,
        service_cycles as f64 / (cfg.offered_load.max(0.01) * shards_n as f64),
        cfg.seed,
    );

    let mut reg = MetricsRegistry::new();
    let lat = reg.histogram("serve.latency_cycles");

    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut timeouts = 0u64;
    let mut unavailable = 0u64;
    let mut failed = 0u64;
    let mut retries = 0u64;
    let mut poisoned_reads = 0u64;
    let mut failovers = 0u64;
    let mut failover_redirects = 0u64;

    for id in 0..cfg.requests {
        let arrive = arrivals.next();
        let is_read = id % 5 == 4;
        let home = (id % shards_n as u64) as usize;

        // Routing with failover: a failed-over shard's writes re-route
        // to the next live shard; its reads return explicit Unavailable
        // (degraded mode — a read of quarantined data must not silently
        // read through).
        let target = if shards[home].failed {
            if is_read {
                unavailable += 1;
                shards[home].unavailable += 1;
                continue;
            }
            match (1..shards_n)
                .map(|d| (home + d) % shards_n)
                .find(|&t| !shards[t].failed)
            {
                Some(t) => {
                    failover_redirects += 1;
                    t
                }
                None => {
                    unavailable += 1;
                    shards[home].unavailable += 1;
                    continue;
                }
            }
        } else {
            home
        };

        // Circuit breaker at admission.
        let admission = shards[target].breaker.admit(arrive);
        if admission == Admission::Reject {
            unavailable += 1;
            shards[target].unavailable += 1;
            continue;
        }

        // Load shedding on the bounded queue (half-open probes bypass
        // the shed policy: the breaker needs its seeded probes to reach
        // the device to decide the shard's fate).
        let deadline = arrive.saturating_add(deadline_cycles);
        if admission == Admission::Admit
            && shards[target].sheds(cfg.shed, arrive, deadline, service_cycles, cfg.queue_depth)
        {
            shed += 1;
            shards[target].shed += 1;
            continue;
        }

        let before_trips = shards[target].breaker.trips();
        let outcome = serve_on(
            &mut shards[target],
            cfg,
            arrive,
            deadline,
            is_read,
            service_cycles,
            &mut retries,
        );
        match outcome {
            Served::Done { finish } => {
                reg.observe(lat, finish - arrive);
                completed += 1;
                shards[target].served += 1;
                shards[target].breaker.on_success();
            }
            Served::Timeout { at } => {
                timeouts += 1;
                shards[target].breaker.on_failure(at);
            }
            Served::Failed { at } => {
                failed += 1;
                shards[target].breaker.on_failure(at);
            }
            Served::Poisoned { at } => {
                poisoned_reads += 1;
                timeouts += 1;
                // An MCE-class event quarantines immediately.
                shards[target].breaker.trip(at);
            }
            Served::Exhausted { at } => {
                // Spare-pool exhaustion fails the shard over instead of
                // failing the process; the request itself is lost to a
                // timeout (its data is on the quarantined shard).
                failovers += 1;
                shards[target].failed = true;
                shards[target].breaker.trip(at);
                timeouts += 1;
            }
        }

        // A fresh quarantine runs the real Salvage recovery leg while
        // the other shards keep serving.
        if shards[target].breaker.trips() > before_trips && recovery.stats.legs < MAX_LEGS {
            recovery.leg(target)?;
            shards[target].recovered += 1;
        }
    }

    // Every cell runs at least one crash/recover leg, even fault-free:
    // the durable-set and PMO bars hold with or without quarantines.
    if recovery.stats.legs == 0 {
        recovery.leg(0)?;
    }

    let snapshot = reg.snapshot();
    let latency = snapshot
        .histogram("serve.latency_cycles")
        .cloned()
        .unwrap_or_default();
    let shard_reports: Vec<ShardReport> = shards
        .iter()
        .map(|s| ShardReport {
            shard: s.index,
            state: if s.failed {
                // Failed-over shards report as quarantined regardless of
                // their breaker's last state.
                BreakerState::Open
            } else {
                s.breaker.state()
            },
            served: s.served,
            shed: s.shed,
            unavailable: s.unavailable,
            trips: s.breaker.trips(),
            failed_over: s.failed,
            recovered: s.recovered,
        })
        .collect();

    Ok(ServeCellReport {
        design: cfg.design,
        lang: cfg.lang,
        offered_load: cfg.offered_load,
        service_cycles,
        offered: cfg.requests,
        completed,
        shed,
        timeouts,
        unavailable,
        failed,
        retries,
        poisoned_reads,
        breaker_trips: shard_reports.iter().map(|s| s.trips).sum(),
        failovers,
        failover_redirects,
        recovery_legs: recovery.stats.legs,
        durable_set_checks: recovery.stats.durable_set_checks,
        pmo_edges_checked: recovery.stats.pmo_edges,
        reconverged_strict: recovery.stats.reconverged_strict,
        reconverged_salvage: recovery.stats.reconverged_salvage,
        silent_corruptions: 0,
        p50: latency.quantile(0.50),
        p99: latency.quantile(0.99),
        p999: latency.quantile(0.999),
        max_latency: latency.max,
        latency,
        shards: shard_reports,
        events_processed: calib.events.total(),
        sim_cycles: calib.cycles,
    })
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use strandweaver::{BenchmarkId, HwDesign, LangModel};

    use super::*;

    fn test_cfg() -> ServeConfig {
        ServeConfig::new(BenchmarkId::Queue, LangModel::Txn, HwDesign::StrandWeaver)
    }

    fn shard_with(schedule: DeviceFaultSchedule, service_cycles: u64, queue_depth: usize) -> Shard {
        Shard {
            index: 0,
            unit: DeviceFaultUnit::new(schedule),
            breaker: CircuitBreaker::new(
                TRIP_THRESHOLD,
                service_cycles * COOLDOWN_SERVICES,
                PROBE_QUOTA,
            ),
            next_free: 0,
            slot: 0,
            failed: false,
            tokens: queue_depth as f64,
            last_refill: 0,
            served: 0,
            shed: 0,
            unavailable: 0,
            recovered: 0,
        }
    }

    /// Sticky wear-out on every line of shard 0's first slot window.
    fn sticky_schedule(backoff_base: u64) -> DeviceFaultSchedule {
        let mut s = DeviceFaultSchedule::none();
        s.backoff_base = backoff_base;
        s.max_retries = 1_000;
        s.escalate_after = 1_000;
        for w in 0..8u64 {
            s.faults.push(DeviceFault {
                class: DeviceFaultClass::TransientWriteFail,
                trigger: FaultTrigger::OnLine(line_for(0, 0, w)),
                sticky: true,
            });
        }
        s
    }

    #[test]
    fn arrivals_are_non_decreasing_and_seed_deterministic() {
        for kind in ArrivalKind::ALL {
            let mut a = Arrivals::new(kind, 500.0, 42);
            let mut b = Arrivals::new(kind, 500.0, 42);
            let mut last = 0;
            for _ in 0..200 {
                let t = a.next();
                assert_eq!(t, b.next());
                assert!(t >= last);
                last = t;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// A retry whose backoff lands past the request's deadline is
        /// never re-admitted: the request times out *at* the deadline
        /// after exactly the one failed attempt — no zombie retries run
        /// on after the client has given up.
        #[test]
        fn retry_never_readmitted_past_deadline(
            arrive in 0u64..1 << 20,
            slack in 1u64..1 << 16,
            extra in 1u64..1 << 16,
        ) {
            let mut cfg = test_cfg();
            cfg.max_request_retries = 1_000;
            // Backoff strictly longer than the deadline slack: the first
            // retry could only start after the deadline.
            let mut shard = shard_with(sticky_schedule(slack + extra), 100, cfg.queue_depth);
            let deadline = arrive + slack;
            let mut retries = 0u64;
            let out = serve_on(&mut shard, &cfg, arrive, deadline, false, 100, &mut retries);
            match out {
                Served::Timeout { at } => prop_assert_eq!(at, deadline),
                _ => prop_assert!(false, "expected a deadline timeout"),
            }
            prop_assert_eq!(retries, 1, "no retry may be re-admitted past the deadline");
        }

        /// Whatever the device does, a request can neither complete past
        /// its deadline nor burn more device attempts than its budget.
        #[test]
        fn serve_on_respects_deadline_and_retry_budget(
            backoff_base in 1u64..1 << 12,
            budget in 1u32..8,
            slack_factor in 2u64..64,
        ) {
            let mut cfg = test_cfg();
            cfg.max_request_retries = budget;
            let service = 100u64;
            let deadline = service * slack_factor;
            let mut shard = shard_with(sticky_schedule(backoff_base), service, cfg.queue_depth);
            let mut retries = 0u64;
            match serve_on(&mut shard, &cfg, 0, deadline, false, service, &mut retries) {
                Served::Done { finish } => prop_assert!(finish <= deadline),
                // A mid-service timeout is noticed at the op boundary
                // just past the deadline; a retry timeout at the
                // deadline itself. Never later.
                Served::Timeout { at } => prop_assert!(at <= deadline + service),
                Served::Failed { .. } => {
                    prop_assert_eq!(retries, budget as u64 + 1);
                }
                Served::Poisoned { .. } | Served::Exhausted { .. } => {}
            }
            prop_assert!(retries <= budget as u64 + 1);
        }
    }
}
