//! **sw-serve** — a fault-tolerant open-loop serving layer over the
//! StrandWeaver persistent-memory stack.
//!
//! The figures elsewhere in this workspace measure *closed-loop* cost: a
//! fixed population of threads issues the next region as soon as the
//! previous one retires, so offered load collapses exactly when the
//! system slows down and tail latency is flattered. A storage service
//! sees the opposite: requests arrive on their own clock (open loop), and
//! a slow shard grows a queue instead of slowing its clients. This crate
//! drives the `nstore`-style workload through the simulator as such a
//! service and accounts for what operators actually provision against —
//! p50/p99/p999 latency, goodput, shed and timeout counts — per
//! (hardware design × language model) cell.
//!
//! The robustness machinery mirrors the chaos campaign's bar:
//!
//! * a **seeded open-loop generator** ([`ArrivalKind`]) offers Poisson or
//!   bursty arrivals at a configurable fraction of calibrated capacity;
//! * a **bounded admission queue** sheds load by policy ([`ShedPolicy`]):
//!   drop-tail, deadline-based shed, or token bucket;
//! * requests route to independent **shards**, each fronted by an online
//!   [`DeviceFaultUnit`](strandweaver::faults::DeviceFaultUnit) and a
//!   [`CircuitBreaker`]; repeated persist retries or an MCE-class
//!   poisoned read trip the breaker (`Closed → Open → HalfOpen` with
//!   seeded probes);
//! * a quarantined shard runs **Salvage recovery** through the real
//!   recovery harness while the survivors keep serving (degraded mode:
//!   requests for the quarantined shard return explicit `Unavailable`);
//! * **spare-pool exhaustion** in the remap table fails the shard over
//!   (traffic re-routes to survivors) instead of failing the process;
//! * every mid-serve crash/recover leg is held to the chaos-campaign
//!   bar: durable-set equality against a fault-free run plus a
//!   linear-extension check of the formal persist memory order, with a
//!   copy-pasteable reproducer embedded in any failure.
//!
//! Entry points: [`serve_report`] (one cell), [`serve_sweep`]
//! (tail-latency-vs-offered-load across the legal design × lang matrix),
//! both surfaced as `swctl serve`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use strandweaver::{BenchmarkId, HwDesign, LangModel};

mod breaker;
mod engine;
mod recovery;
mod report;

pub use breaker::{Admission, BreakerState, CircuitBreaker};
pub use engine::serve_cell;
pub use report::{ServeCellReport, ServeReport, ShardReport};

/// Open-loop arrival process shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless arrivals: exponential inter-arrival gaps at the offered
    /// rate. The canonical open-loop model.
    Poisson,
    /// On/off modulated Poisson: alternating bursts (4x the offered
    /// rate) and lulls (1/4 of it), same seed discipline. Stresses the
    /// admission queue and the shed policies far harder than the
    /// averaged rate suggests.
    Bursty,
}

impl ArrivalKind {
    /// All arrival kinds, in a stable order.
    pub const ALL: [ArrivalKind; 2] = [ArrivalKind::Poisson, ArrivalKind::Bursty];

    /// Short stable label used by the CLI and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
        }
    }

    /// Resolves a CLI label.
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Load-shedding policy applied at admission to each shard's bounded
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject when the shard's queue is at capacity. Simple, but under
    /// overload it serves requests that will blow their deadline anyway.
    DropTail,
    /// Reject when the queueing estimate already exceeds the request's
    /// deadline — sheds exactly the work that cannot succeed, preserving
    /// goodput under overload.
    DeadlineShed,
    /// A token bucket refilled at the calibrated sustainable service
    /// rate: bursts above capacity are smoothed into the queue bound and
    /// the excess shed at admission.
    TokenBucket,
}

impl ShedPolicy {
    /// All policies, in a stable order.
    pub const ALL: [ShedPolicy; 3] = [
        ShedPolicy::DropTail,
        ShedPolicy::DeadlineShed,
        ShedPolicy::TokenBucket,
    ];

    /// Short stable label used by the CLI and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ShedPolicy::DropTail => "drop-tail",
            ShedPolicy::DeadlineShed => "deadline",
            ShedPolicy::TokenBucket => "token-bucket",
        }
    }

    /// Resolves a CLI label.
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for one serving run.
///
/// Scale fields (`threads`/`regions`/`ops`) size the *calibration*
/// simulation — a real timing run of the benchmark that yields the
/// per-request service time in simulated cycles — and the crash/recover
/// legs. The serving loop itself is an open-loop queueing simulation in
/// the same virtual cycle domain, fully determined by `seed`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Benchmark the service executes per request.
    pub bench: BenchmarkId,
    /// Language-level persistency model.
    pub lang: LangModel,
    /// Hardware persistency design.
    pub design: HwDesign,
    /// Use redo logging instead of undo.
    pub redo: bool,
    /// Simulated cores for the calibration run.
    pub threads: usize,
    /// Total failure-atomic regions in the calibration run.
    pub regions: usize,
    /// Operations per region (also the line writes per request).
    pub ops: usize,
    /// Seed pinning arrivals, routing, faults, and crash sampling.
    pub seed: u64,
    /// Independent, independently-recoverable shards.
    pub shards: usize,
    /// Requests offered by the open-loop generator.
    pub requests: u64,
    /// Offered load as a fraction of calibrated capacity (1.0 = the
    /// shards can just barely keep up; above 1.0 is overload).
    pub offered_load: f64,
    /// Arrival process shape.
    pub arrival: ArrivalKind,
    /// Load-shedding policy.
    pub shed: ShedPolicy,
    /// Admission queue bound per shard, in requests.
    pub queue_depth: usize,
    /// Request deadline as a multiple of the calibrated service time.
    pub deadline_factor: u64,
    /// Device-level retry budget per request before it counts as a
    /// breaker failure.
    pub max_request_retries: u32,
    /// Inject the seeded chaos-under-load fault schedules (sticky
    /// transient wear-out on one shard, spare-pool exhaustion on
    /// another, a poisoned read). Disable for a clean-capacity baseline.
    pub faults: bool,
}

impl ServeConfig {
    /// A default serving cell for `bench` under `lang × design`.
    pub fn new(bench: BenchmarkId, lang: LangModel, design: HwDesign) -> Self {
        ServeConfig {
            bench,
            lang,
            design,
            redo: false,
            threads: 2,
            regions: 24,
            ops: 2,
            seed: 1234,
            shards: 4,
            requests: 600,
            offered_load: 0.85,
            arrival: ArrivalKind::Poisson,
            shed: ShedPolicy::DropTail,
            queue_depth: 32,
            deadline_factor: 16,
            max_request_retries: 3,
            faults: true,
        }
    }

    /// Sets the seed (builder style, mirroring `Experiment`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The copy-pasteable `swctl serve` invocation reproducing this cell
    /// exactly.
    pub fn repro_cmd(&self) -> String {
        let redo = if self.redo { " --redo" } else { "" };
        format!(
            "swctl serve {} --lang {} --design {} --threads {} --regions {} --ops {} \
             --shards {} --requests {} --load {} --arrival {} --shed-policy {} --seed {}{redo}",
            self.bench,
            self.lang,
            self.design,
            self.threads,
            self.regions,
            self.ops,
            self.shards,
            self.requests,
            self.offered_load,
            self.arrival,
            self.shed,
            self.seed,
        )
    }
}

/// Offered-load grid the `--sweep` mode walks per (design × lang) cell:
/// comfortable, near-saturation, and overload.
pub const SWEEP_LOADS: [f64; 3] = [0.5, 0.9, 1.3];

/// Runs one serving cell and wraps it in a single-cell report.
///
/// # Errors
///
/// Any crash/recover leg violating durable-set equality, PMO
/// linear-extension, or reconvergence returns the violation with a
/// copy-pasteable reproducer embedded.
pub fn serve_report(cfg: &ServeConfig) -> Result<ServeReport, String> {
    Ok(ServeReport::new(cfg, vec![engine::serve_cell(cfg)?]))
}

/// Tail-latency-vs-offered-load sweep: every legal (design × lang) cell
/// at each load in [`SWEEP_LOADS`], with `cfg` supplying everything else.
///
/// # Errors
///
/// The first cell whose crash/recover legs fail, with its reproducer.
pub fn serve_sweep(cfg: &ServeConfig) -> Result<ServeReport, String> {
    let mut cells = Vec::new();
    for design in HwDesign::ALL {
        for lang in LangModel::ALL {
            if !lang.legal_on(design) {
                continue;
            }
            for load in SWEEP_LOADS {
                let mut cell_cfg = cfg.clone();
                cell_cfg.design = design;
                cell_cfg.lang = lang;
                cell_cfg.offered_load = load;
                cells.push(engine::serve_cell(&cell_cfg)?);
            }
        }
    }
    Ok(ServeReport::new(cfg, cells))
}
