//! Mid-serve crash/recover legs, held to the chaos-campaign bar.
//!
//! Whenever the serving engine quarantines a shard (breaker trip or
//! spare-pool failover), this module runs the *real* model machinery
//! while the surviving shards keep serving:
//!
//! 1. **Durable-set equality + PMO linear extension** — a single-threaded
//!    probe of the cell's `(design, lang, strategy)` replays under a
//!    seeded random [`DeviceFaultSchedule`]; the durable line set must
//!    equal the fault-free run's and the acceptance order must remain a
//!    linear extension of the formal persist memory order.
//! 2. **Crash × recovery reconvergence** — a formally-sampled crash image
//!    of the multi-threaded driven run must reconverge under interrupted
//!    `Strict` recovery, and a copy with a freshly poisoned log line must
//!    reconverge under `Salvage` — the quarantined shard's recovery path.
//!
//! Any violation surfaces with a copy-pasteable `swctl serve` reproducer
//! embedded, exactly like the chaos campaign's failures.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use strandweaver::experiment::order_extends_pmo;
use strandweaver::faults::DeviceFaultSchedule;
use strandweaver::lang::harness::{crash_image, recovery_reconverges};
use strandweaver::lang::recovery::RecoveryPolicy;
use strandweaver::lang::LogStrategy;
use strandweaver::model::isa::{IsaTrace, LockId};
use strandweaver::pmem::LineAddr;
use strandweaver::workloads::driver::{drive, DriverOutput, DriverParams};
use strandweaver::{
    FuncCtx, Machine, PmLayout, Pmo, RuntimeConfig, SimConfig, SimStats, ThreadRuntime,
};

use crate::ServeConfig;

/// Aggregated results of the legs a serving cell ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LegStats {
    /// Legs completed.
    pub legs: u64,
    /// PMO order edges verified across all legs.
    pub pmo_edges: u64,
    /// Durable-set equality checks passed.
    pub durable_set_checks: u64,
    /// `Strict` reconvergence checks passed.
    pub reconverged_strict: u64,
    /// `Salvage` reconvergence checks passed (the quarantined-shard
    /// path).
    pub reconverged_salvage: u64,
}

/// Per-cell context for the legs: the formal probe, its fault-free
/// reference, and a driven multi-threaded run to crash.
pub(crate) struct RecoveryContext {
    cfg: ServeConfig,
    pmo: Pmo,
    traces: Vec<IsaTrace>,
    probe_layout: PmLayout,
    clean_set: BTreeSet<LineAddr>,
    scale: u64,
    out: DriverOutput,
    rng: SmallRng,
    pub stats: LegStats,
}

impl std::fmt::Debug for RecoveryContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryContext")
            .field("scale", &self.scale)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl RecoveryContext {
    /// Builds the probe and the driven run for `cfg`'s cell.
    pub fn new(cfg: &ServeConfig) -> Self {
        let strategy = if cfg.redo {
            LogStrategy::Redo
        } else {
            LogStrategy::Undo
        };

        // Single-threaded lowered probe: the same shape the chaos
        // campaign replays (six regions of four stores), yielding the
        // formal PMO oracle for the linear-extension checks.
        let probe_layout = PmLayout::new(1, 512);
        let heap = probe_layout.heap_base();
        let mut ctx = FuncCtx::new(probe_layout.clone(), 1);
        let mut rt_cfg = RuntimeConfig::new(cfg.design, cfg.lang);
        rt_cfg.strategy = strategy;
        let mut rt = ThreadRuntime::new(&probe_layout, 0, rt_cfg);
        for r in 0..6u64 {
            rt.region_begin(&mut ctx, &[LockId(0)]);
            for k in 0..4u64 {
                rt.store(&mut ctx, heap.offset_words((r * 4 + k) * 8), r * 10 + k);
            }
            rt.region_end(&mut ctx);
        }
        rt.shutdown(&mut ctx);
        let pmo = Pmo::compute(&ctx.execution(), cfg.design.memory_model());
        let traces = ctx.into_traces();

        let clean = probe_run(cfg, &probe_layout, &traces, None);
        let clean_set: BTreeSet<LineAddr> = clean.pm_write_order.iter().copied().collect();
        let scale = clean.pm_write_order.len() as u64;

        // The multi-threaded driven run the crash legs sample images
        // from.
        let mut workload = cfg.bench.instantiate();
        let mut params = DriverParams::new(cfg.design, cfg.lang)
            .threads(cfg.threads)
            .total_regions(cfg.regions)
            .ops_per_region(cfg.ops)
            .seed(cfg.seed);
        params.strategy = strategy;
        let out = drive(workload.as_mut(), &params);

        RecoveryContext {
            cfg: cfg.clone(),
            pmo,
            traces,
            probe_layout,
            clean_set,
            scale,
            out,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x5e12_7e5e_12c0_4e12),
            stats: LegStats::default(),
        }
    }

    /// Runs one mid-serve crash/recover leg for a quarantined `shard`.
    ///
    /// # Errors
    ///
    /// The first violated invariant, with the cell's reproducer embedded.
    pub fn leg(&mut self, shard: usize) -> Result<(), String> {
        let leg = self.stats.legs;
        let fail = |detail: String| {
            format!(
                "serve recovery leg {leg} (shard {shard}): {detail}\n  seed {}: reproduce \
                 with `{}`",
                self.cfg.seed,
                self.cfg.repro_cmd()
            )
        };

        // Leg part 1: online faults vs. the PMO oracle — durable-set
        // equality and linear extension.
        let leg_seed = self
            .cfg
            .seed
            .wrapping_add(leg.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ 0x5e12_0000;
        let schedule = DeviceFaultSchedule::random(leg_seed, self.scale);
        let faulted = probe_run(&self.cfg, &self.probe_layout, &self.traces, Some(schedule));
        let set: BTreeSet<LineAddr> = faulted.pm_write_order.iter().copied().collect();
        if set != self.clean_set {
            let missing: Vec<_> = self.clean_set.difference(&set).collect();
            let extra: Vec<_> = set.difference(&self.clean_set).collect();
            return Err(fail(format!(
                "silent corruption: durable line set diverged under online faults \
                 (missing {missing:?}, extra {extra:?})"
            )));
        }
        self.stats.durable_set_checks += 1;
        self.stats.pmo_edges += order_extends_pmo(&self.pmo, &faulted.pm_write_order)
            .map_err(|e| fail(format!("persist order under retries: {e}")))?
            as u64;

        // Leg part 2: crash the driven run; interrupted Strict recovery
        // must reconverge, and a poisoned-log copy must reconverge under
        // Salvage — the quarantined shard's actual recovery path.
        let (crash, _persisted) = crash_image(
            &self.out.ctx,
            &self.out.baseline,
            self.cfg.design,
            &mut self.rng,
        );
        recovery_reconverges(
            &crash,
            &self.out.layout,
            RecoveryPolicy::Strict,
            &mut self.rng,
        )
        .map_err(|e| fail(format!("strict reconvergence: {e}")))?;
        self.stats.reconverged_strict += 1;

        let mut damaged = crash.clone();
        let victim = self.rng.gen_range(0..self.cfg.threads);
        let log_line = self.out.layout.log_region(victim).base.line().raw();
        damaged.poison_line(LineAddr(log_line + 1 + self.rng.gen_range(0..4)));
        recovery_reconverges(
            &damaged,
            &self.out.layout,
            RecoveryPolicy::Salvage,
            &mut self.rng,
        )
        .map_err(|e| fail(format!("salvage reconvergence: {e}")))?;
        self.stats.reconverged_salvage += 1;

        self.stats.legs += 1;
        Ok(())
    }
}

/// Runs the probe traces through the timing simulator, optionally with an
/// online fault schedule installed.
fn probe_run(
    cfg: &ServeConfig,
    layout: &PmLayout,
    traces: &[IsaTrace],
    faults: Option<DeviceFaultSchedule>,
) -> SimStats {
    let mut sim = SimConfig::default().with_cores(1);
    if let Some(schedule) = faults {
        sim = sim.with_device_faults(schedule);
    }
    Machine::new(sim, cfg.design, layout.clone(), traces.to_vec()).run()
}
