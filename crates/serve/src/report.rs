//! Serving reports: per-(design × lang) SLO accounting with render,
//! JSON export, and a strict JSON parser for round-trip validation.

use strandweaver::trace::json::{self, Json};
use strandweaver::trace::HistogramSnapshot;
use strandweaver::{BenchmarkId, HwDesign, LangModel};

use crate::breaker::BreakerState;
use crate::{ArrivalKind, ServeConfig, ShedPolicy};

/// One shard's serving record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Breaker state at end of run (failed-over shards report `open`).
    pub state: BreakerState,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests rejected with explicit `Unavailable` (degraded mode).
    pub unavailable: u64,
    /// Breaker trips.
    pub trips: u64,
    /// Permanently failed over (spare-pool exhaustion).
    pub failed_over: bool,
    /// Crash/recover legs this shard's quarantines ran.
    pub recovered: u64,
}

/// One serving cell: a (design × lang) pair at one offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCellReport {
    /// Hardware design.
    pub design: HwDesign,
    /// Language model.
    pub lang: LangModel,
    /// Offered load as a fraction of calibrated capacity.
    pub offered_load: f64,
    /// Calibrated per-request service time in cycles.
    pub service_cycles: u64,
    /// Requests offered by the open-loop generator.
    pub offered: u64,
    /// Goodput: requests completed within deadline.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests that blew their deadline (includes quarantine losses).
    pub timeouts: u64,
    /// Requests rejected with explicit `Unavailable`.
    pub unavailable: u64,
    /// Requests that exhausted their device retry budget.
    pub failed: u64,
    /// Device-level persist retries across all requests.
    pub retries: u64,
    /// Poisoned (MCE-class) reads consumed.
    pub poisoned_reads: u64,
    /// Breaker trips across all shards.
    pub breaker_trips: u64,
    /// Shards failed over on spare-pool exhaustion.
    pub failovers: u64,
    /// Requests re-routed off failed-over shards.
    pub failover_redirects: u64,
    /// Mid-serve crash/recover legs run.
    pub recovery_legs: u64,
    /// Durable-set equality checks passed.
    pub durable_set_checks: u64,
    /// PMO linear-extension edges verified.
    pub pmo_edges_checked: u64,
    /// Interrupted-Strict reconvergence checks passed.
    pub reconverged_strict: u64,
    /// Poisoned-log Salvage reconvergence checks passed.
    pub reconverged_salvage: u64,
    /// Invariant violations (always 0 on a successful run; failures
    /// return `Err` with a reproducer instead).
    pub silent_corruptions: u64,
    /// Median completion latency in cycles.
    pub p50: u64,
    /// 99th-percentile completion latency in cycles.
    pub p99: u64,
    /// 99.9th-percentile completion latency in cycles.
    pub p999: u64,
    /// Worst completion latency in cycles.
    pub max_latency: u64,
    /// The full power-of-two latency histogram.
    pub latency: HistogramSnapshot,
    /// Per-shard records.
    pub shards: Vec<ShardReport>,
    /// Discrete events the calibration simulation processed.
    pub events_processed: u64,
    /// Simulated cycles of the calibration run.
    pub sim_cycles: u64,
}

/// A full serving report: config echo plus one or more cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Benchmark served per request.
    pub bench: BenchmarkId,
    /// Seed pinning the run.
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Requests offered per cell.
    pub requests: u64,
    /// Admission queue bound per shard.
    pub queue_depth: usize,
    /// Deadline as a multiple of service time.
    pub deadline_factor: u64,
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// Shed policy.
    pub shed_policy: ShedPolicy,
    /// Whether the chaos-under-load schedules were injected.
    pub faults: bool,
    /// The cells, in run order.
    pub cells: Vec<ServeCellReport>,
}

impl ServeReport {
    /// Wraps finished `cells` with `cfg`'s echo.
    pub fn new(cfg: &ServeConfig, cells: Vec<ServeCellReport>) -> Self {
        ServeReport {
            bench: cfg.bench,
            seed: cfg.seed,
            shards: cfg.shards,
            requests: cfg.requests,
            queue_depth: cfg.queue_depth,
            deadline_factor: cfg.deadline_factor,
            arrival: cfg.arrival,
            shed_policy: cfg.shed,
            faults: cfg.faults,
            cells,
        }
    }

    /// Total breaker trips across cells.
    pub fn breaker_trips(&self) -> u64 {
        self.cells.iter().map(|c| c.breaker_trips).sum()
    }

    /// Total failovers across cells.
    pub fn failovers(&self) -> u64 {
        self.cells.iter().map(|c| c.failovers).sum()
    }

    /// Total invariant violations across cells (0 on success).
    pub fn silent_corruptions(&self) -> u64 {
        self.cells.iter().map(|c| c.silent_corruptions).sum()
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve: bench {} | {} arrivals, {} shed | {} shards x depth {} | {} reqs/cell | seed {}\n",
            self.bench, self.arrival, self.shed_policy, self.shards, self.queue_depth,
            self.requests, self.seed,
        ));
        out.push_str(&format!(
            "{:<14} {:<7} {:>5} {:>8} {:>8} {:>6} {:>6} {:>7} {:>8} {:>8} {:>8} {:>6} {:>5}\n",
            "design",
            "lang",
            "load",
            "goodput",
            "shed",
            "t/o",
            "unavl",
            "trips",
            "p50",
            "p99",
            "p999",
            "fails",
            "legs",
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<14} {:<7} {:>5.2} {:>8} {:>8} {:>6} {:>6} {:>7} {:>8} {:>8} {:>8} {:>6} {:>5}\n",
                c.design.label(),
                c.lang.label(),
                c.offered_load,
                c.completed,
                c.shed,
                c.timeouts,
                c.unavailable,
                c.breaker_trips,
                c.p50,
                c.p99,
                c.p999,
                c.failovers,
                c.recovery_legs,
            ));
        }
        out.push_str(&format!(
            "totals: trips {} | failovers {} | silent corruptions {}\n",
            self.breaker_trips(),
            self.failovers(),
            self.silent_corruptions(),
        ));
        out
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::Str(self.bench.label().to_string())),
            ("seed", Json::U64(self.seed)),
            ("shards", Json::U64(self.shards as u64)),
            ("requests", Json::U64(self.requests)),
            ("queue_depth", Json::U64(self.queue_depth as u64)),
            ("deadline_factor", Json::U64(self.deadline_factor)),
            ("arrival", Json::Str(self.arrival.label().to_string())),
            (
                "shed_policy",
                Json::Str(self.shed_policy.label().to_string()),
            ),
            ("faults", Json::Bool(self.faults)),
            ("breaker_trips", Json::U64(self.breaker_trips())),
            ("failovers", Json::U64(self.failovers())),
            ("silent_corruptions", Json::U64(self.silent_corruptions())),
            (
                "cells",
                Json::Arr(self.cells.iter().map(cell_json).collect()),
            ),
        ])
    }

    /// Parses a JSON document produced by [`to_json`](Self::to_json).
    ///
    /// Strict: every field must be present and typed; re-rendering the
    /// parsed report must reproduce the document byte for byte (the CI
    /// round-trip check).
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("serve report JSON: {e}"))?;
        let bench_label = str_field(&doc, "bench")?;
        let bench = BenchmarkId::ALL
            .into_iter()
            .find(|b| b.label() == bench_label)
            .ok_or_else(|| format!("unknown bench '{bench_label}'"))?;
        let arrival_label = str_field(&doc, "arrival")?;
        let arrival = ArrivalKind::from_label(&arrival_label)
            .ok_or_else(|| format!("unknown arrival '{arrival_label}'"))?;
        let shed_label = str_field(&doc, "shed_policy")?;
        let shed_policy = ShedPolicy::from_label(&shed_label)
            .ok_or_else(|| format!("unknown shed policy '{shed_label}'"))?;
        let cells = doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing cells array")?
            .iter()
            .map(parse_cell)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServeReport {
            bench,
            seed: u64_field(&doc, "seed")?,
            shards: u64_field(&doc, "shards")? as usize,
            requests: u64_field(&doc, "requests")?,
            queue_depth: u64_field(&doc, "queue_depth")? as usize,
            deadline_factor: u64_field(&doc, "deadline_factor")?,
            arrival,
            shed_policy,
            faults: bool_field(&doc, "faults")?,
            cells,
        })
    }
}

fn cell_json(c: &ServeCellReport) -> Json {
    Json::obj([
        ("design", Json::Str(c.design.label().to_string())),
        ("lang", Json::Str(c.lang.label().to_string())),
        ("offered_load", Json::F64(c.offered_load)),
        ("service_cycles", Json::U64(c.service_cycles)),
        ("offered", Json::U64(c.offered)),
        ("completed", Json::U64(c.completed)),
        ("shed", Json::U64(c.shed)),
        ("timeouts", Json::U64(c.timeouts)),
        ("unavailable", Json::U64(c.unavailable)),
        ("failed", Json::U64(c.failed)),
        ("retries", Json::U64(c.retries)),
        ("poisoned_reads", Json::U64(c.poisoned_reads)),
        ("breaker_trips", Json::U64(c.breaker_trips)),
        ("failovers", Json::U64(c.failovers)),
        ("failover_redirects", Json::U64(c.failover_redirects)),
        ("recovery_legs", Json::U64(c.recovery_legs)),
        ("durable_set_checks", Json::U64(c.durable_set_checks)),
        ("pmo_edges_checked", Json::U64(c.pmo_edges_checked)),
        ("reconverged_strict", Json::U64(c.reconverged_strict)),
        ("reconverged_salvage", Json::U64(c.reconverged_salvage)),
        ("silent_corruptions", Json::U64(c.silent_corruptions)),
        ("p50", Json::U64(c.p50)),
        ("p99", Json::U64(c.p99)),
        ("p999", Json::U64(c.p999)),
        ("max_latency", Json::U64(c.max_latency)),
        (
            "latency_buckets",
            Json::Arr(c.latency.buckets.iter().map(|&b| Json::U64(b)).collect()),
        ),
        ("latency_count", Json::U64(c.latency.count)),
        ("latency_sum", Json::U64(c.latency.sum)),
        (
            "shards",
            Json::Arr(
                c.shards
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("shard", Json::U64(s.shard as u64)),
                            ("state", Json::Str(s.state.label().to_string())),
                            ("served", Json::U64(s.served)),
                            ("shed", Json::U64(s.shed)),
                            ("unavailable", Json::U64(s.unavailable)),
                            ("trips", Json::U64(s.trips)),
                            ("failed_over", Json::Bool(s.failed_over)),
                            ("recovered", Json::U64(s.recovered)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("events_processed", Json::U64(c.events_processed)),
        ("sim_cycles", Json::U64(c.sim_cycles)),
    ])
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn str_field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-bool field '{key}'")),
    }
}

fn f64_field(doc: &Json, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        Some(Json::F64(f)) => Ok(*f),
        Some(Json::U64(n)) => Ok(*n as f64),
        _ => Err(format!("missing or non-number field '{key}'")),
    }
}

fn breaker_state(label: &str) -> Result<BreakerState, String> {
    [
        BreakerState::Closed,
        BreakerState::Open,
        BreakerState::HalfOpen,
    ]
    .into_iter()
    .find(|s| s.label() == label)
    .ok_or_else(|| format!("unknown breaker state '{label}'"))
}

fn parse_cell(cell: &Json) -> Result<ServeCellReport, String> {
    let design_label = str_field(cell, "design")?;
    let design = HwDesign::from_label(&design_label)
        .ok_or_else(|| format!("unknown design '{design_label}'"))?;
    let lang_label = str_field(cell, "lang")?;
    let lang =
        LangModel::from_label(&lang_label).ok_or_else(|| format!("unknown lang '{lang_label}'"))?;
    let buckets = cell
        .get("latency_buckets")
        .and_then(Json::as_arr)
        .ok_or("missing latency_buckets")?
        .iter()
        .map(|b| b.as_u64().ok_or("non-integer latency bucket".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let max_latency = u64_field(cell, "max_latency")?;
    let latency = HistogramSnapshot {
        name: "serve.latency_cycles".to_string(),
        buckets,
        count: u64_field(cell, "latency_count")?,
        sum: u64_field(cell, "latency_sum")?,
        max: max_latency,
    };
    let shards = cell
        .get("shards")
        .and_then(Json::as_arr)
        .ok_or("missing shards array")?
        .iter()
        .map(|s| {
            Ok(ShardReport {
                shard: u64_field(s, "shard")? as usize,
                state: breaker_state(&str_field(s, "state")?)?,
                served: u64_field(s, "served")?,
                shed: u64_field(s, "shed")?,
                unavailable: u64_field(s, "unavailable")?,
                trips: u64_field(s, "trips")?,
                failed_over: bool_field(s, "failed_over")?,
                recovered: u64_field(s, "recovered")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ServeCellReport {
        design,
        lang,
        offered_load: f64_field(cell, "offered_load")?,
        service_cycles: u64_field(cell, "service_cycles")?,
        offered: u64_field(cell, "offered")?,
        completed: u64_field(cell, "completed")?,
        shed: u64_field(cell, "shed")?,
        timeouts: u64_field(cell, "timeouts")?,
        unavailable: u64_field(cell, "unavailable")?,
        failed: u64_field(cell, "failed")?,
        retries: u64_field(cell, "retries")?,
        poisoned_reads: u64_field(cell, "poisoned_reads")?,
        breaker_trips: u64_field(cell, "breaker_trips")?,
        failovers: u64_field(cell, "failovers")?,
        failover_redirects: u64_field(cell, "failover_redirects")?,
        recovery_legs: u64_field(cell, "recovery_legs")?,
        durable_set_checks: u64_field(cell, "durable_set_checks")?,
        pmo_edges_checked: u64_field(cell, "pmo_edges_checked")?,
        reconverged_strict: u64_field(cell, "reconverged_strict")?,
        reconverged_salvage: u64_field(cell, "reconverged_salvage")?,
        silent_corruptions: u64_field(cell, "silent_corruptions")?,
        p50: u64_field(cell, "p50")?,
        p99: u64_field(cell, "p99")?,
        p999: u64_field(cell, "p999")?,
        max_latency,
        latency,
        shards,
        events_processed: u64_field(cell, "events_processed")?,
        sim_cycles: u64_field(cell, "sim_cycles")?,
    })
}
