//! Fixed-seed integration tests for the serving layer: degraded-mode
//! behavior under the engineered chaos-under-load schedules, accounting
//! conservation, determinism, and the JSON round trip.

use strandweaver::{BenchmarkId, HwDesign, LangModel};
use sw_serve::{serve_report, BreakerState, ServeConfig, ServeReport, ShedPolicy};

fn base_cfg() -> ServeConfig {
    ServeConfig::new(BenchmarkId::Queue, LangModel::Txn, HwDesign::StrandWeaver)
}

/// The headline degraded-mode scenario at a fixed seed: breakers trip
/// mid-serve, the spare-exhausted shard fails over, the survivors keep
/// serving, Salvage recovery reconverges, and nothing corrupts silently.
#[test]
fn degraded_mode_trips_fails_over_and_recovers() {
    let report = serve_report(&base_cfg()).expect("serve invariants hold");
    let cell = &report.cells[0];

    // The engineered schedules must actually fire.
    assert!(cell.breaker_trips >= 1, "no breaker tripped");
    assert!(
        cell.failovers >= 1,
        "spare exhaustion never failed a shard over"
    );
    assert!(
        cell.poisoned_reads >= 1,
        "the MCE-class poisoned read never fired"
    );
    assert!(cell.retries >= 1, "no persist retries observed");

    // Degraded mode: the failed-over shard turns reads into explicit
    // Unavailable and re-routes writes to survivors.
    assert!(
        cell.unavailable > 0,
        "degraded mode never surfaced Unavailable"
    );
    assert!(
        cell.failover_redirects >= 1,
        "no writes re-routed off the failed shard"
    );
    let failed: Vec<_> = cell.shards.iter().filter(|s| s.failed_over).collect();
    assert!(!failed.is_empty());
    for s in &failed {
        assert_eq!(
            s.state,
            BreakerState::Open,
            "failed-over shards report quarantined"
        );
    }
    // The other shards kept serving while a shard was quarantined.
    for s in cell.shards.iter().filter(|s| !s.failed_over) {
        assert!(s.served > 0, "surviving shard {} served nothing", s.shard);
    }
    assert!(cell.completed > 0, "degraded mode must still have goodput");

    // Every quarantine ran the real crash/recover leg and the
    // chaos-campaign bar held.
    assert!(cell.recovery_legs >= 1);
    assert!(
        cell.reconverged_salvage >= 1,
        "Salvage recovery never exercised"
    );
    assert!(cell.reconverged_strict >= 1);
    assert!(cell.durable_set_checks >= 1);
    assert!(cell.pmo_edges_checked >= 1);
    assert_eq!(cell.silent_corruptions, 0);

    // SLO accounting is sane: quantiles come off a populated histogram.
    assert!(cell.latency.count == cell.completed);
    assert!(cell.p50 <= cell.p99 && cell.p99 <= cell.p999);
    assert!(cell.p999 <= cell.max_latency.next_power_of_two());
}

/// Every offered request is accounted for exactly once, under every
/// shed policy.
#[test]
fn outcomes_partition_offered_requests() {
    for shed in ShedPolicy::ALL {
        let mut cfg = base_cfg();
        cfg.shed = shed;
        cfg.requests = 150;
        let report = serve_report(&cfg).expect("serve invariants hold");
        let c = &report.cells[0];
        assert_eq!(
            c.completed + c.shed + c.timeouts + c.unavailable + c.failed,
            c.offered,
            "accounting leak under {shed}",
        );
    }
}

/// The whole run is a pure function of the seed.
#[test]
fn serve_report_is_deterministic_per_seed() {
    let mut cfg = base_cfg();
    cfg.requests = 200;
    cfg.seed = 99;
    let a = serve_report(&cfg).expect("serve invariants hold");
    let b = serve_report(&cfg).expect("serve invariants hold");
    assert_eq!(a, b);
    cfg.seed = 100;
    let c = serve_report(&cfg).expect("serve invariants hold");
    assert_ne!(a, c, "different seeds should not collide bit-for-bit");
}

/// Fault-free baseline: no trips, no failovers, but the crash/recover
/// bar still runs once and holds.
#[test]
fn clean_baseline_has_no_quarantines() {
    let mut cfg = base_cfg();
    cfg.faults = false;
    cfg.requests = 200;
    let report = serve_report(&cfg).expect("serve invariants hold");
    let c = &report.cells[0];
    assert_eq!(c.breaker_trips, 0);
    assert_eq!(c.failovers, 0);
    assert_eq!(c.retries, 0);
    assert_eq!(c.failed, 0);
    assert_eq!(c.unavailable, 0);
    assert_eq!(c.recovery_legs, 1, "the bar runs even without quarantines");
    assert_eq!(c.silent_corruptions, 0);
    assert!(c.completed > 0);
}

/// `to_json` → render → `parse` → `to_json` → render is byte-identical
/// — the CI round-trip gate.
#[test]
fn json_round_trips_byte_identical() {
    let mut cfg = base_cfg();
    cfg.requests = 200;
    let report = serve_report(&cfg).expect("serve invariants hold");
    let rendered = report.to_json().render();
    let parsed = ServeReport::parse(&rendered).expect("parse back");
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json().render(), rendered);
}
