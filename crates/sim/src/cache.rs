//! L1 data cache model (set-associative, write-back, write-allocate) and
//! the coherence directory.

use std::collections::HashMap;

use sw_pmem::LineAddr;

/// One L1 way.
#[derive(Debug, Clone, Copy)]
struct Way {
    line: LineAddr,
    dirty: bool,
    lru: u64,
}

/// Result of installing a line into the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The line evicted to make room.
    pub line: LineAddr,
    /// Whether it held dirty data (needs a writeback).
    pub dirty: bool,
}

/// A private, set-associative, write-back L1 data cache.
#[derive(Debug, Clone)]
pub struct L1Cache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    clock: u64,
}

impl L1Cache {
    /// Creates an empty cache with `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0);
        Self {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            clock: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets.len() - 1)
    }

    /// Returns `true` if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|w| w.line == line)
    }

    /// Returns `true` if `line` is present and dirty.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|w| w.line == line && w.dirty)
    }

    /// Touches `line` for LRU and optionally marks it dirty. Returns `true`
    /// on hit.
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(line);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.line == line) {
            w.lru = clock;
            w.dirty |= write;
            true
        } else {
            false
        }
    }

    /// Installs `line` (after a miss), evicting the LRU way if the set is
    /// full. Returns the eviction, if any.
    pub fn install(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            // Already present (racing install): just update.
            w.lru = clock;
            w.dirty |= dirty;
            return None;
        }
        let evicted = if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("set is full");
            let w = set.swap_remove(victim);
            Some(Eviction {
                line: w.line,
                dirty: w.dirty,
            })
        } else {
            None
        };
        set.push(Way {
            line,
            dirty,
            lru: clock,
        });
        evicted
    }

    /// Marks `line` clean (a CLWB flushed it; a clean copy is retained).
    pub fn mark_clean(&mut self, line: LineAddr) {
        let idx = self.set_index(line);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.line == line) {
            w.dirty = false;
        }
    }

    /// Removes `line` (coherence invalidation). Returns whether it was
    /// dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        if let Some(pos) = self.sets[idx].iter().position(|w| w.line == line) {
            self.sets[idx].swap_remove(pos).dirty
        } else {
            false
        }
    }
}

/// Tracks, per line, which core (if any) holds it dirty. Used to route
/// coherence steals; clean sharing needs no bookkeeping in this model
/// because clean copies can be dropped silently.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    dirty_owner: HashMap<LineAddr, usize>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The core currently holding `line` dirty, if any.
    pub fn dirty_owner(&self, line: LineAddr) -> Option<usize> {
        self.dirty_owner.get(&line).copied()
    }

    /// Records that `core` holds `line` dirty.
    pub fn set_dirty_owner(&mut self, line: LineAddr, core: usize) {
        self.dirty_owner.insert(line, core);
    }

    /// Records that no core holds `line` dirty (flush, writeback, or
    /// invalidation).
    pub fn clear_dirty_owner(&mut self, line: LineAddr) {
        self.dirty_owner.remove(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = L1Cache::new(4, 2);
        assert!(!c.access(l(1), false));
        c.install(l(1), false);
        assert!(c.access(l(1), false));
    }

    #[test]
    fn write_marks_dirty() {
        let mut c = L1Cache::new(4, 2);
        c.install(l(1), false);
        assert!(!c.is_dirty(l(1)));
        c.access(l(1), true);
        assert!(c.is_dirty(l(1)));
        c.mark_clean(l(1));
        assert!(!c.is_dirty(l(1)));
        assert!(c.contains(l(1)), "CLWB retains a clean copy");
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut c = L1Cache::new(1, 2);
        c.install(l(1), false);
        c.install(l(2), true);
        c.access(l(1), false); // make line 2 the LRU
        let ev = c.install(l(3), false).expect("set full");
        assert_eq!(ev.line, l(2));
        assert!(ev.dirty);
        assert!(c.contains(l(1)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = L1Cache::new(2, 1);
        c.install(l(0), false);
        c.install(l(1), false); // different set: no eviction
        assert!(c.contains(l(0)));
        assert!(c.contains(l(1)));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = L1Cache::new(4, 2);
        c.install(l(1), true);
        assert!(c.invalidate(l(1)));
        assert!(!c.contains(l(1)));
        assert!(!c.invalidate(l(1)));
    }

    #[test]
    fn reinstall_merges_dirty_bit() {
        let mut c = L1Cache::new(4, 2);
        c.install(l(1), false);
        assert!(c.install(l(1), true).is_none());
        assert!(c.is_dirty(l(1)));
    }

    #[test]
    fn directory_tracks_dirty_owner() {
        let mut d = Directory::new();
        assert_eq!(d.dirty_owner(l(1)), None);
        d.set_dirty_owner(l(1), 3);
        assert_eq!(d.dirty_owner(l(1)), Some(3));
        d.clear_dirty_owner(l(1));
        assert_eq!(d.dirty_owner(l(1)), None);
    }
}
