//! L1 data cache model (set-associative, write-back, write-allocate) and
//! the coherence directory.

use sw_pmem::{LineAddr, PmLayout};

/// One L1 way.
#[derive(Debug, Clone, Copy)]
struct Way {
    line: LineAddr,
    dirty: bool,
    lru: u64,
}

/// Result of installing a line into the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The line evicted to make room.
    pub line: LineAddr,
    /// Whether it held dirty data (needs a writeback).
    pub dirty: bool,
}

/// A private, set-associative, write-back L1 data cache.
#[derive(Debug, Clone)]
pub struct L1Cache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    clock: u64,
}

impl L1Cache {
    /// Creates an empty cache with `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0);
        Self {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            clock: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets.len() - 1)
    }

    /// Returns `true` if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|w| w.line == line)
    }

    /// Returns `true` if `line` is present and dirty.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|w| w.line == line && w.dirty)
    }

    /// Touches `line` for LRU and optionally marks it dirty. Returns `true`
    /// on hit.
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(line);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.line == line) {
            w.lru = clock;
            w.dirty |= write;
            true
        } else {
            false
        }
    }

    /// Installs `line` (after a miss), evicting the LRU way if the set is
    /// full. Returns the eviction, if any.
    pub fn install(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            // Already present (racing install): just update.
            w.lru = clock;
            w.dirty |= dirty;
            return None;
        }
        let evicted = if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("set is full");
            let w = set.swap_remove(victim);
            Some(Eviction {
                line: w.line,
                dirty: w.dirty,
            })
        } else {
            None
        };
        set.push(Way {
            line,
            dirty,
            lru: clock,
        });
        evicted
    }

    /// Marks `line` clean (a CLWB flushed it; a clean copy is retained).
    pub fn mark_clean(&mut self, line: LineAddr) {
        let idx = self.set_index(line);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.line == line) {
            w.dirty = false;
        }
    }

    /// Removes `line` (coherence invalidation). Returns whether it was
    /// dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        if let Some(pos) = self.sets[idx].iter().position(|w| w.line == line) {
            self.sets[idx].swap_remove(pos).dirty
        } else {
            false
        }
    }
}

/// Lines per directory page. Pages are allocated on first touch, so the
/// table is dense over the hot working set without paying for the whole
/// persistent range up front.
const DIR_PAGE_LINES: usize = 4096;

/// Sentinel for "no dirty owner" in the packed owner byte.
const NO_OWNER: u8 = u8::MAX;

/// Tracks, per line, which core (if any) holds it dirty. Used to route
/// coherence steals; clean sharing needs no bookkeeping in this model
/// because clean copies can be dropped silently.
///
/// Dirty ownership only ever applies to persistent lines (volatile dirty
/// data drains to DRAM without coherence bookkeeping — see
/// `Machine::install`), so the table is a dense, paged owner array over
/// the layout's persistent line range: lookups are two index operations
/// instead of a hash, and the steady-state loop never allocates.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Owner byte per line, paged; `None` pages are untouched (all clean).
    pages: Vec<Option<Box<[u8; DIR_PAGE_LINES]>>>,
    /// First line covered.
    base: u64,
    /// One past the last line covered.
    limit: u64,
}

impl Directory {
    /// Creates a directory covering the raw line range `[base, limit)`.
    pub fn new(base: LineAddr, limit: LineAddr) -> Self {
        assert!(base.raw() <= limit.raw());
        let lines = (limit.raw() - base.raw()) as usize;
        Self {
            pages: vec![None; lines.div_ceil(DIR_PAGE_LINES)],
            base: base.raw(),
            limit: limit.raw(),
        }
    }

    /// Creates a directory covering `layout`'s persistent line range
    /// (logs, metadata, and heap).
    pub fn for_layout(layout: &PmLayout) -> Self {
        let heap = layout.heap_region();
        let end = heap.base.raw() + heap.bytes;
        Self::new(
            sw_pmem::Addr(PmLayout::PM_BASE).line(),
            sw_pmem::Addr(end.next_multiple_of(64)).line(),
        )
    }

    /// Rebased index of `line`, or `None` when outside the covered range
    /// (volatile lines are never dirty-owned).
    #[inline]
    fn index(&self, line: LineAddr) -> Option<usize> {
        let raw = line.raw();
        (raw >= self.base && raw < self.limit).then(|| (raw - self.base) as usize)
    }

    /// The core currently holding `line` dirty, if any.
    #[inline]
    pub fn dirty_owner(&self, line: LineAddr) -> Option<usize> {
        let idx = self.index(line)?;
        let owner = *self.pages[idx / DIR_PAGE_LINES]
            .as_ref()?
            .get(idx % DIR_PAGE_LINES)?;
        (owner != NO_OWNER).then_some(owner as usize)
    }

    /// Records that `core` holds `line` dirty.
    ///
    /// # Panics
    ///
    /// Panics if `line` is outside the covered (persistent) range — the
    /// machine only dirty-tracks persistent lines.
    #[inline]
    pub fn set_dirty_owner(&mut self, line: LineAddr, core: usize) {
        debug_assert!(core < NO_OWNER as usize, "core index fits the owner byte");
        let idx = self
            .index(line)
            .expect("dirty ownership applies only to covered persistent lines");
        let page = self.pages[idx / DIR_PAGE_LINES]
            .get_or_insert_with(|| Box::new([NO_OWNER; DIR_PAGE_LINES]));
        page[idx % DIR_PAGE_LINES] = core as u8;
    }

    /// Records that no core holds `line` dirty (flush, writeback, or
    /// invalidation). A no-op for lines outside the covered range.
    #[inline]
    pub fn clear_dirty_owner(&mut self, line: LineAddr) {
        if let Some(idx) = self.index(line) {
            if let Some(page) = self.pages[idx / DIR_PAGE_LINES].as_mut() {
                page[idx % DIR_PAGE_LINES] = NO_OWNER;
            }
        }
    }
}

/// Lines per membership-set page (bitset pages: 4096 lines = 512 bytes).
const SET_PAGE_LINES: usize = 4096;

/// A paged bitset over the layout's persistent and volatile line ranges —
/// the shared-L2 membership set. Replaces a `HashSet<LineAddr>`: contains
/// and insert are two index operations and a bit test, with pages
/// allocated on first touch and nothing allocated per call.
#[derive(Debug, Clone)]
pub(crate) struct LineSet {
    pages: Vec<Option<Box<[u64; SET_PAGE_LINES / 64]>>>,
    /// Persistent range `[pm_base, pm_limit)` maps to index 0..; the
    /// volatile range follows it.
    pm_base: u64,
    pm_limit: u64,
    vol_base: u64,
    vol_limit: u64,
}

impl LineSet {
    pub(crate) fn for_layout(layout: &PmLayout) -> Self {
        let heap = layout.heap_region();
        let pm_base = sw_pmem::Addr(PmLayout::PM_BASE).line().raw();
        let pm_limit = sw_pmem::Addr((heap.base.raw() + heap.bytes).next_multiple_of(64))
            .line()
            .raw();
        let vol = layout.volatile_region();
        let vol_base = sw_pmem::Addr(vol.base.raw()).line().raw();
        let vol_limit = sw_pmem::Addr((vol.base.raw() + vol.bytes).next_multiple_of(64))
            .line()
            .raw();
        let lines = (pm_limit - pm_base) + (vol_limit - vol_base);
        Self {
            pages: vec![None; (lines as usize).div_ceil(SET_PAGE_LINES)],
            pm_base,
            pm_limit,
            vol_base,
            vol_limit,
        }
    }

    /// Rebased index of `line`.
    ///
    /// # Panics
    ///
    /// Panics when `line` lies outside both the persistent and volatile
    /// ranges — traces only address the layout's regions.
    #[inline]
    fn index(&self, line: LineAddr) -> usize {
        let raw = line.raw();
        if raw >= self.pm_base && raw < self.pm_limit {
            (raw - self.pm_base) as usize
        } else {
            assert!(
                raw >= self.vol_base && raw < self.vol_limit,
                "line {raw:#x} outside the layout's address ranges"
            );
            ((self.pm_limit - self.pm_base) + (raw - self.vol_base)) as usize
        }
    }

    #[inline]
    pub(crate) fn contains(&self, line: LineAddr) -> bool {
        let idx = self.index(line);
        self.pages[idx / SET_PAGE_LINES]
            .as_ref()
            .is_some_and(|p| p[(idx % SET_PAGE_LINES) / 64] & (1 << (idx % 64)) != 0)
    }

    #[inline]
    pub(crate) fn insert(&mut self, line: LineAddr) {
        let idx = self.index(line);
        let page = self.pages[idx / SET_PAGE_LINES]
            .get_or_insert_with(|| Box::new([0u64; SET_PAGE_LINES / 64]));
        page[(idx % SET_PAGE_LINES) / 64] |= 1 << (idx % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = L1Cache::new(4, 2);
        assert!(!c.access(l(1), false));
        c.install(l(1), false);
        assert!(c.access(l(1), false));
    }

    #[test]
    fn write_marks_dirty() {
        let mut c = L1Cache::new(4, 2);
        c.install(l(1), false);
        assert!(!c.is_dirty(l(1)));
        c.access(l(1), true);
        assert!(c.is_dirty(l(1)));
        c.mark_clean(l(1));
        assert!(!c.is_dirty(l(1)));
        assert!(c.contains(l(1)), "CLWB retains a clean copy");
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut c = L1Cache::new(1, 2);
        c.install(l(1), false);
        c.install(l(2), true);
        c.access(l(1), false); // make line 2 the LRU
        let ev = c.install(l(3), false).expect("set full");
        assert_eq!(ev.line, l(2));
        assert!(ev.dirty);
        assert!(c.contains(l(1)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = L1Cache::new(2, 1);
        c.install(l(0), false);
        c.install(l(1), false); // different set: no eviction
        assert!(c.contains(l(0)));
        assert!(c.contains(l(1)));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = L1Cache::new(4, 2);
        c.install(l(1), true);
        assert!(c.invalidate(l(1)));
        assert!(!c.contains(l(1)));
        assert!(!c.invalidate(l(1)));
    }

    #[test]
    fn reinstall_merges_dirty_bit() {
        let mut c = L1Cache::new(4, 2);
        c.install(l(1), false);
        assert!(c.install(l(1), true).is_none());
        assert!(c.is_dirty(l(1)));
    }

    #[test]
    fn directory_tracks_dirty_owner() {
        let mut d = Directory::new(l(100), l(200));
        assert_eq!(d.dirty_owner(l(101)), None);
        d.set_dirty_owner(l(101), 3);
        assert_eq!(d.dirty_owner(l(101)), Some(3));
        d.clear_dirty_owner(l(101));
        assert_eq!(d.dirty_owner(l(101)), None);
    }

    #[test]
    fn directory_ignores_lines_outside_the_range() {
        let mut d = Directory::new(l(100), l(200));
        assert_eq!(d.dirty_owner(l(5)), None, "below the range");
        assert_eq!(d.dirty_owner(l(1_000_000)), None, "above the range");
        d.clear_dirty_owner(l(5)); // must not panic
    }

    #[test]
    fn directory_for_layout_covers_the_persistent_range() {
        let layout = PmLayout::new(2, 64);
        let mut d = Directory::for_layout(&layout);
        let heap_line = layout.heap_base().line();
        d.set_dirty_owner(heap_line, 1);
        assert_eq!(d.dirty_owner(heap_line), Some(1));
        let vol_line = layout.volatile_region().base.line();
        assert_eq!(
            d.dirty_owner(vol_line),
            None,
            "volatile lines are never dirty-owned"
        );
    }

    #[test]
    fn line_set_membership_over_both_ranges() {
        let layout = PmLayout::new(2, 64);
        let mut s = LineSet::for_layout(&layout);
        let pm = layout.heap_base().line();
        let vol = layout.volatile_region().base.line();
        assert!(!s.contains(pm));
        s.insert(pm);
        assert!(s.contains(pm));
        assert!(!s.contains(vol));
        s.insert(vol);
        assert!(s.contains(vol));
    }
}
