//! Simulator configuration (paper Table I).

use sw_faults::DeviceFaultSchedule;
use sw_pmem::timing;

/// Machine configuration for the timing simulator.
///
/// Defaults reproduce the paper's Table I: an 8-core 2 GHz machine with
/// 32 KB 2-way L1s, a shared 28 MB L2, and an Optane-like PM device
/// (346 ns reads, 96 ns write-to-controller acknowledgement, 500 ns
/// write-to-media), plus the StrandWeaver structures: a 16-entry persist
/// queue and four 4-entry strand buffers per core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of cores (one hardware thread each).
    pub cores: usize,
    /// Store-queue entries per core.
    pub store_queue_entries: usize,
    /// Persist-queue entries per core (StrandWeaver design).
    pub persist_queue_entries: usize,
    /// Number of strand buffers per core.
    pub strand_buffers: usize,
    /// Entries per strand buffer.
    pub strand_buffer_entries: usize,
    /// Outstanding CLWB slots for the Intel design (bounded by the D-cache
    /// MSHRs in Table I).
    pub intel_flush_slots: usize,
    /// Entries in the HOPS per-core persist buffer.
    pub hops_buffer_entries: usize,
    /// Write-back buffer entries per core.
    pub writeback_buffer_entries: usize,
    /// L1 data cache sets.
    pub l1_sets: usize,
    /// L1 data cache ways.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: u64,
    /// DRAM access latency in cycles (volatile data).
    pub dram_cycles: u64,
    /// PM read latency in cycles.
    pub pm_read_cycles: u64,
    /// Cycles until the ADR PM controller acknowledges receipt of a write.
    pub pm_write_ack_cycles: u64,
    /// PM controller write-queue capacity.
    pub pm_write_queue: usize,
    /// Cycles between successive media writes draining the write queue.
    pub pm_drain_interval: u64,
    /// Minimum cycles between successive PM reads (read bandwidth pacing).
    pub pm_read_interval: u64,
    /// Extra latency for a dirty-line transfer between L1s (coherence
    /// steal).
    pub coherence_transfer_cycles: u64,
    /// Safety bound on simulated cycles; exceeding it indicates a deadlock
    /// and panics.
    pub max_cycles: u64,
    /// Jump over quiescent cycles (no architectural progress) straight to
    /// the next interesting cycle. Produces bit-identical `SimStats` to
    /// single-stepping (the skipped cycles' stall accounting is replayed);
    /// disable only to cross-check that invariant in tests.
    pub skip_ahead: bool,
    /// Online device-fault schedule executed by the PM controller.
    /// `None` (the default) keeps the fault layer entirely out of the
    /// write path; an empty schedule behaves identically.
    pub device_faults: Option<DeviceFaultSchedule>,
}

impl SimConfig {
    /// The paper's Table I configuration.
    pub fn table_i() -> Self {
        Self {
            cores: 8,
            store_queue_entries: 64,
            persist_queue_entries: 16,
            strand_buffers: 4,
            strand_buffer_entries: 4,
            intel_flush_slots: 6, // D-cache MSHRs
            hops_buffer_entries: 16,
            writeback_buffer_entries: 8,
            l1_sets: 256, // 32 KB / 64 B / 2 ways
            l1_ways: 2,
            l1_hit_cycles: timing::L1D_HIT_CYCLES,
            l2_hit_cycles: timing::L2_HIT_CYCLES,
            dram_cycles: timing::DRAM_ACCESS_CYCLES,
            pm_read_cycles: timing::PM_READ_CYCLES,
            pm_write_ack_cycles: timing::PM_WRITE_TO_CONTROLLER_CYCLES,
            pm_write_queue: 64,
            // The ADR controller "hides the write latency of the PM device"
            // (Section VI-B): the banked media sustains far more than one
            // line per 500 ns, so the write queue only back-pressures under
            // bursts. 8 cycles/line ≈ 16 GB/s aggregate.
            pm_drain_interval: 8,
            pm_read_interval: 16,
            coherence_transfer_cycles: 40,
            max_cycles: 20_000_000_000,
            skip_ahead: true,
            device_faults: None,
        }
    }

    /// A copy with quiescent-cycle skipping toggled (used by the
    /// skip-ahead == single-step equivalence tests).
    pub fn with_skip_ahead(mut self, skip_ahead: bool) -> Self {
        self.skip_ahead = skip_ahead;
        self
    }

    /// A copy with a different strand-buffer-unit shape — the Figure 9
    /// sensitivity axis `(number of buffers, entries per buffer)`.
    pub fn with_strand_buffers(mut self, buffers: usize, entries: usize) -> Self {
        assert!(buffers > 0 && entries > 0);
        self.strand_buffers = buffers;
        self.strand_buffer_entries = entries;
        self
    }

    /// A copy with a different core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0);
        self.cores = cores;
        self
    }

    /// A copy with an online device-fault schedule installed.
    pub fn with_device_faults(mut self, schedule: DeviceFaultSchedule) -> Self {
        self.device_faults = Some(schedule);
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table_i()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        let c = SimConfig::table_i();
        assert_eq!(c.cores, 8);
        assert_eq!(c.store_queue_entries, 64);
        assert_eq!(c.persist_queue_entries, 16);
        assert_eq!(c.strand_buffers, 4);
        assert_eq!(c.strand_buffer_entries, 4);
        assert_eq!(c.l1_sets * c.l1_ways * 64, 32 * 1024);
        assert_eq!(c.pm_read_cycles, 692);
        assert_eq!(c.pm_write_ack_cycles, 192);
    }

    #[test]
    fn strand_buffer_sweep() {
        let c = SimConfig::table_i().with_strand_buffers(8, 8);
        assert_eq!(c.strand_buffers, 8);
        assert_eq!(c.strand_buffer_entries, 8);
    }
}
