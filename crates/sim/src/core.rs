//! Per-core state: issue pipeline, store queue, persist queue, write-back
//! buffer, and slots for whichever persist structures the design's engine
//! attaches ([`crate::engines::PersistEngine::setup_core`]).

use sw_model::isa::IsaTrace;
use sw_pmem::LineAddr;

use crate::cache::L1Cache;
use crate::config::SimConfig;
use crate::persist::FlushEngine;
use crate::ring::Ring;
use crate::stats::CoreStats;
use crate::strand_buffer::{DrainTargets, Sbu};

/// An entry in the store queue. The no-persist-queue design routes persist
/// primitives through the store queue, so they appear here too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqOp {
    /// A retiring store to `line`.
    Store(LineAddr),
    /// A CLWB flowing through the store queue (no-persist-queue design).
    Clwb(LineAddr),
    /// A persist barrier in the store queue (no-persist-queue design).
    Pb,
    /// A `NewStrand` in the store queue (no-persist-queue design).
    Ns,
}

/// An entry in the persist queue (full StrandWeaver design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqOp {
    /// A CLWB awaiting issue to the strand buffer unit.
    Clwb(LineAddr),
    /// A persist barrier.
    Pb,
    /// A `NewStrand`.
    Ns,
}

/// A memory access in flight (load issue or store retirement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingAccess {
    /// The line being accessed.
    pub line: LineAddr,
    /// Whether the access writes.
    pub write: bool,
    /// Completion cycle once known; `None` while a coherence steal is in
    /// flight.
    pub ready_at: Option<u64>,
}

/// A write-back of a dirty persistent line, gated on the strand buffer
/// unit draining past the tail indexes recorded at initiation (Section IV,
/// "Managing cache writebacks").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Line being written back.
    pub line: LineAddr,
    /// Strand-buffer drain targets recorded when the write-back began
    /// (`None` when the design has no strand buffers).
    pub targets: Option<DrainTargets>,
}

/// One core of the simulated machine.
#[derive(Debug)]
pub struct Core {
    /// The dynamic instruction trace to replay.
    pub trace: IsaTrace,
    /// Next trace index to issue.
    pub pc: usize,
    /// The core cannot issue before this cycle (compute / load latency).
    pub busy_until: u64,
    /// In-flight load (at most one; loads block the pipeline).
    pub load_pending: Option<PendingAccess>,
    /// In-flight store retirement (head of the store queue).
    pub store_pending: Option<PendingAccess>,
    /// A completion fence (SFENCE / JoinStrand / dfence) whose condition is
    /// not yet met. Memory-ordering instructions (stores, CLWBs, fences,
    /// lock operations) stall behind it; compute and loads proceed, as on
    /// an out-of-order core where these fences order only stores.
    pub pending_fence: Option<sw_model::isa::FenceKind>,
    /// Store queue (fixed capacity: `SimConfig::store_queue_entries`).
    pub sq: Ring<SqOp>,
    /// Persist queue (StrandWeaver design only; empty otherwise; fixed
    /// capacity: `SimConfig::persist_queue_entries`).
    pub pq: Ring<PqOp>,
    /// Strand buffer unit (StrandWeaver / no-persist-queue / HOPS).
    pub sbu: Option<Sbu>,
    /// Outstanding-flush engine (Intel / non-atomic).
    pub flush: Option<FlushEngine>,
    /// Write-back buffer.
    pub wb: Vec<Writeback>,
    /// Private L1 data cache.
    pub l1: L1Cache,
    /// Counters.
    pub stats: CoreStats,
    /// Set once the trace has fully issued and all queues drained.
    pub done: bool,
}

impl Core {
    /// Creates a core for `trace` under `cfg`; the persist engines are
    /// attached by the machine according to the hardware design.
    pub fn new(cfg: &SimConfig, trace: IsaTrace) -> Self {
        Self {
            trace,
            pc: 0,
            busy_until: 0,
            load_pending: None,
            store_pending: None,
            pending_fence: None,
            sq: Ring::new(cfg.store_queue_entries, SqOp::Pb),
            pq: Ring::new(cfg.persist_queue_entries, PqOp::Pb),
            sbu: None,
            flush: None,
            wb: Vec::with_capacity(cfg.writeback_buffer_entries),
            l1: L1Cache::new(cfg.l1_sets, cfg.l1_ways),
            stats: CoreStats::default(),
            done: false,
        }
    }

    /// `true` if any store in the store queue targets `line` (used to hold
    /// CLWBs until elder same-line stores retire).
    pub fn sq_has_store_to(&self, line: LineAddr) -> bool {
        self.store_pending
            .is_some_and(|p| p.write && p.line == line)
            || self
                .sq
                .iter()
                .any(|op| matches!(op, SqOp::Store(l) if *l == line))
    }

    /// `true` when every persist-side structure has drained.
    pub fn persists_drained(&self) -> bool {
        self.pq.is_empty()
            && self.sbu.as_ref().is_none_or(Sbu::is_empty)
            && self.flush.as_ref().is_none_or(FlushEngine::is_empty)
    }

    /// `true` when the store queue (including the in-flight head) is empty.
    pub fn stores_drained(&self) -> bool {
        self.sq.is_empty() && self.store_pending.is_none()
    }

    /// `true` when the core has issued its whole trace and drained
    /// everything.
    pub fn fully_drained(&self) -> bool {
        self.pc >= self.trace.len()
            && self.stores_drained()
            && self.persists_drained()
            && self.load_pending.is_none()
            && self.pending_fence.is_none()
            && self.wb.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_model::isa::IsaOp;
    use sw_pmem::Addr;

    #[test]
    fn fresh_core_is_drained_but_not_done() {
        let cfg = SimConfig::table_i();
        let core = Core::new(&cfg, vec![IsaOp::Compute(5)]);
        assert!(!core.fully_drained(), "trace not yet issued");
        assert!(core.persists_drained());
        assert!(core.stores_drained());
    }

    #[test]
    fn sq_store_lookup_sees_pending_head() {
        let cfg = SimConfig::table_i();
        let mut core = Core::new(&cfg, vec![]);
        let line = Addr(0x1000_0000).line();
        assert!(!core.sq_has_store_to(line));
        core.sq.push_back(SqOp::Store(line));
        assert!(core.sq_has_store_to(line));
        core.sq.pop_front();
        core.store_pending = Some(PendingAccess {
            line,
            write: true,
            ready_at: Some(10),
        });
        assert!(core.sq_has_store_to(line));
    }

    #[test]
    fn clwb_in_sq_does_not_count_as_store() {
        let cfg = SimConfig::table_i();
        let mut core = Core::new(&cfg, vec![]);
        let line = LineAddr(5);
        core.sq.push_back(SqOp::Clwb(line));
        assert!(!core.sq_has_store_to(line));
    }
}
