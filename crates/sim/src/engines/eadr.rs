//! eADR: battery-backed caches inside the persistence domain.
//!
//! A store is durable the moment it becomes coherence-visible, so the
//! persist order *is* the visibility order (strict persistency —
//! `MemoryModel::Strict` in the formal model). The engine attaches no
//! persist structure: `CLWB` is architecturally a no-op accepted at issue,
//! ordering fences (`PersistBarrier`, `NewStrand`, `OFENCE`) vanish, and
//! completion fences (`SFENCE`, `JoinStrand`, `DFENCE`) degenerate to
//! store-queue drains. The machine core records the durability point at
//! store retirement ([`EngineMeta::persists_at_visibility`]).

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::Core;
use crate::machine::SimMachine;
use crate::stats::StallCause;

use super::{EngineMeta, PersistEngine};

/// The eADR engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Eadr;

impl EngineMeta for Eadr {
    fn design(&self) -> HwDesign {
        HwDesign::Eadr
    }

    fn persists_at_visibility(&self) -> bool {
        true
    }

    fn stall_causes(&self) -> &'static [StallCause] {
        // No persist structure means no persist-queue back-pressure, ever.
        &[
            StallCause::Fence,
            StallCause::StoreQueueFull,
            StallCause::Lock,
        ]
    }
}

impl PersistEngine for Eadr {
    fn setup_core(&self, _core: &mut Core, _cfg: &SimConfig) {
        // No persist structure: the caches themselves are persistent.
    }

    fn backend(&self, _m: &mut SimMachine<Self>, _i: usize) {}

    fn issue_clwb(&self, _m: &mut SimMachine<Self>, _i: usize, _line: LineAddr) -> bool {
        // A no-op: the line is already in the persistence domain.
        true
    }

    fn issue_fence(&self, m: &mut SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            // Any completion fence degenerates to a store-queue drain.
            FenceKind::Sfence | FenceKind::JoinStrand | FenceKind::Dfence => {
                m.issue_completion_fence(i, kind)
            }
            // Ordering fences are free: visibility order is persist order.
            FenceKind::PersistBarrier | FenceKind::NewStrand | FenceKind::Ofence => true,
        }
    }

    fn fence_condition_met(&self, m: &SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::Sfence | FenceKind::JoinStrand | FenceKind::Dfence => {
                m.cores[i].stores_drained()
            }
            _ => true,
        }
    }
}
