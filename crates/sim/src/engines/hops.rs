//! HOPS: delegated epoch persistency. CLWBs and lightweight `ofence`
//! epoch markers enter a single persist buffer at issue (modelled as a
//! one-buffer strand buffer unit whose barrier entries are the `ofence`
//! markers); only the durable `dfence` stalls the core, until the buffer
//! drains.

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::Core;
use crate::machine::SimMachine;
use crate::stats::StallCause;
use crate::strand_buffer::Sbu;

use super::{EngineMeta, PersistEngine};

/// The HOPS engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hops;

impl EngineMeta for Hops {
    fn design(&self) -> HwDesign {
        HwDesign::Hops
    }

    fn stall_causes(&self) -> &'static [StallCause] {
        &StallCause::ALL
    }
}

impl PersistEngine for Hops {
    fn setup_core(&self, core: &mut Core, cfg: &SimConfig) {
        core.sbu = Some(Sbu::new(1, cfg.hops_buffer_entries));
    }

    fn backend(&self, m: &mut SimMachine<Self>, i: usize) {
        m.backend_sbu(i);
    }

    fn issue_clwb(&self, m: &mut SimMachine<Self>, i: usize, line: LineAddr) -> bool {
        // HOPS inserts into the persist buffer at issue; the elder
        // same-line store must have retired (checked here, before
        // insertion, to preserve deadlock freedom).
        if m.cores[i].sq_has_store_to(line) {
            m.stall_persist_full(i);
            return false;
        }
        if !m.cores[i].sbu.as_ref().expect("hops sbu").has_space() {
            m.stall_persist_full(i);
            return false;
        }
        m.cores[i].sbu.as_mut().expect("checked").push_clwb(line);
        m.note_sb_enqueue(i);
        true
    }

    fn issue_fence(&self, m: &mut SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::Ofence => {
                // Lightweight: an epoch marker in the persist buffer.
                if !m.cores[i].sbu.as_ref().expect("hops sbu").has_space() {
                    m.stall_persist_full(i);
                    return false;
                }
                m.cores[i].sbu.as_mut().expect("checked").push_pb();
                m.note_sb_enqueue(i);
                true
            }
            FenceKind::Dfence => m.issue_completion_fence(i, kind),
            _ => true,
        }
    }

    fn fence_condition_met(&self, m: &SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            // dfence: the persist buffer must drain.
            FenceKind::Dfence => m.cores[i].sbu.as_ref().is_none_or(Sbu::is_empty),
            _ => true,
        }
    }
}
