//! Intel's existing ISA: `CLWB` + `SFENCE` epochs. CLWBs occupy a small
//! set of outstanding-flush slots (bounded by D-cache MSHRs) with no
//! ordering among them; `SFENCE` stalls subsequent memory-ordering
//! instructions until the set is empty.

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::Core;
use crate::machine::SimMachine;
use crate::persist::FlushEngine;
use crate::stats::StallCause;

use super::{EngineMeta, PersistEngine};

/// The Intel x86 engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Intel;

impl EngineMeta for Intel {
    fn design(&self) -> HwDesign {
        HwDesign::IntelX86
    }

    fn stall_causes(&self) -> &'static [StallCause] {
        &StallCause::ALL
    }
}

impl PersistEngine for Intel {
    fn setup_core(&self, core: &mut Core, cfg: &SimConfig) {
        core.flush = Some(FlushEngine::new(cfg.intel_flush_slots));
    }

    fn backend(&self, m: &mut SimMachine<Self>, i: usize) {
        m.backend_flush_engine(i);
    }

    fn issue_clwb(&self, m: &mut SimMachine<Self>, i: usize, line: LineAddr) -> bool {
        issue_clwb_to_flush_engine(m, i, line)
    }

    fn issue_fence(&self, m: &mut SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::Sfence => m.issue_completion_fence(i, kind),
            _ => true,
        }
    }

    fn fence_condition_met(&self, m: &SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        sfence_condition_met(m, i, kind)
    }
}

/// Shared with the non-atomic engine (same hardware, different lowering):
/// admit a CLWB into the outstanding-flush slots.
pub(super) fn issue_clwb_to_flush_engine<E: PersistEngine>(
    m: &mut SimMachine<E>,
    i: usize,
    line: LineAddr,
) -> bool {
    if !m.cores[i].flush.as_ref().expect("flush engine").has_space() {
        m.stall_persist_full(i);
        return false;
    }
    m.cores[i].flush.as_mut().expect("checked").push(line);
    true
}

/// SFENCE: prior CLWBs must complete.
pub(super) fn sfence_condition_met<E: PersistEngine>(
    m: &SimMachine<E>,
    i: usize,
    kind: FenceKind,
) -> bool {
    match kind {
        FenceKind::Sfence => m.cores[i].flush.as_ref().is_none_or(FlushEngine::is_empty),
        _ => true,
    }
}
