//! Intel's existing ISA: `CLWB` + `SFENCE` epochs. CLWBs occupy a small
//! set of outstanding-flush slots (bounded by D-cache MSHRs) with no
//! ordering among them; `SFENCE` stalls subsequent memory-ordering
//! instructions until the set is empty.

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::Core;
use crate::machine::Machine;
use crate::persist::FlushEngine;
use crate::stats::StallCause;

use super::PersistEngine;

/// The Intel x86 engine.
#[derive(Debug)]
pub struct Intel;

impl PersistEngine for Intel {
    fn design(&self) -> HwDesign {
        HwDesign::IntelX86
    }

    fn setup_core(&self, core: &mut Core, cfg: &SimConfig) {
        core.flush = Some(FlushEngine::new(cfg.intel_flush_slots));
    }

    fn backend(&self, m: &mut Machine, i: usize) {
        m.backend_flush_engine(i);
    }

    fn issue_clwb(&self, m: &mut Machine, i: usize, line: LineAddr) -> bool {
        issue_clwb_to_flush_engine(m, i, line)
    }

    fn issue_fence(&self, m: &mut Machine, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::Sfence => m.issue_completion_fence(i, kind),
            _ => true,
        }
    }

    fn fence_condition_met(&self, m: &Machine, i: usize, kind: FenceKind) -> bool {
        sfence_condition_met(m, i, kind)
    }

    fn stall_causes(&self) -> &'static [StallCause] {
        &StallCause::ALL
    }
}

/// Shared with the non-atomic engine (same hardware, different lowering):
/// admit a CLWB into the outstanding-flush slots.
pub(super) fn issue_clwb_to_flush_engine(m: &mut Machine, i: usize, line: LineAddr) -> bool {
    if !m.cores[i].flush.as_ref().expect("flush engine").has_space() {
        m.stall(i, StallCause::PersistQueueFull);
        return false;
    }
    m.cores[i].flush.as_mut().expect("checked").push(line);
    true
}

/// SFENCE: prior CLWBs must complete.
pub(super) fn sfence_condition_met(m: &Machine, i: usize, kind: FenceKind) -> bool {
    match kind {
        FenceKind::Sfence => m.cores[i].flush.as_ref().is_none_or(FlushEngine::is_empty),
        _ => true,
    }
}
