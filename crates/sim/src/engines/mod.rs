//! The per-design persist engines.
//!
//! Everything that makes one hardware design behave differently from
//! another — which structure buffers CLWBs, what a fence admits or waits
//! for, how store-queue persist ops drain, where the durability point sits
//! — lives behind the [`PersistEngine`] trait, one module per design. The
//! machine core (`machine.rs`) is design-agnostic: it owns the
//! pipeline, caches, coherence, and the DES loop, and calls into its
//! engine at the four dispatch points (`setup_core`, `backend`,
//! `issue_clwb`, `issue_fence`) plus the fence-condition and store-queue
//! drain hooks.
//!
//! Engines are stateless `Copy` unit structs (all per-core state lives in
//! the core). [`crate::SimMachine`] holds its engine *by value*, so every
//! per-cycle dispatch is a static, inlinable call; the design-indexed
//! metadata queries that don't need monomorphization (`design`,
//! `stall_causes`, `persists_at_visibility`) sit on the object-safe
//! [`EngineMeta`] supertrait, reachable through [`engine_for`].
//!
//! Adding a design: write one `DesignSpec` entry in `sw-model` (label,
//! formal memory model, runtime lowering), one engine module here, and
//! register it in [`engine_for`] plus the [`crate::Machine`] facade. The
//! litmus matrix and sim/model agreement suites pick the new design up
//! from `HwDesign::ALL` automatically.

mod eadr;
mod hops;
mod intel;
mod no_persist_queue;
mod non_atomic;
mod strandweaver;

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::{Core, SqOp};
use crate::machine::SimMachine;
use crate::persist::ClwbState;
use crate::stats::StallCause;
use crate::strand_buffer::SbuEntry;

pub use eadr::Eadr;
pub use hops::Hops;
pub use intel::Intel;
pub use no_persist_queue::NoPersistQueue;
pub use non_atomic::NonAtomic;
pub use strandweaver::StrandWeaver;

/// Design-indexed engine metadata. Object-safe so callers that only need
/// to *describe* a design (reports, tests, stat validation) can hold a
/// `&'static dyn EngineMeta` from [`engine_for`] without monomorphizing.
pub trait EngineMeta: std::fmt::Debug + Sync {
    /// The design this engine implements.
    fn design(&self) -> HwDesign;

    /// `true` when stores persist at coherence visibility (battery-backed
    /// caches): the machine then records the persist order at store
    /// retirement instead of at PM-controller acceptance.
    fn persists_at_visibility(&self) -> bool {
        false
    }

    /// The stall causes this design can actually produce. Causes outside
    /// this set stay zero in [`crate::CoreStats`] and in the metrics
    /// registry (which registers a counter per cause regardless, so
    /// snapshots always carry explicit zeros).
    fn stall_causes(&self) -> &'static [StallCause];
}

/// The timing semantics of one hardware persistency design.
///
/// Engines are pure behaviour: zero-sized `Copy` values held directly by
/// [`SimMachine`], so the per-cycle dispatch points below are static
/// calls. Every method receives the machine and a core index and
/// manipulates that core's queues and buffers.
pub trait PersistEngine: EngineMeta + Copy + Default + Send + 'static {
    /// Attaches the design's persist structures (strand buffer unit, flush
    /// engine, ...) to a freshly built core.
    fn setup_core(&self, core: &mut Core, cfg: &SimConfig);

    /// Runs the design's back-end structures for one cycle on core `i`
    /// (issue ready CLWBs, advance completions, retire). Called before the
    /// design-agnostic store-queue and write-back stages.
    fn backend(&self, m: &mut SimMachine<Self>, i: usize);

    /// Attempts to admit a CLWB for `line` on core `i`; returns `false`
    /// (after recording the stall) if the design's structure is full.
    fn issue_clwb(&self, m: &mut SimMachine<Self>, i: usize, line: LineAddr) -> bool;

    /// Attempts to execute a fence on core `i`; returns `false` (after
    /// recording the stall) while its admission condition is unmet. A
    /// *completion* fence that admits but has unmet drain conditions
    /// becomes the core's `pending_fence` (see
    /// `SimMachine::issue_completion_fence`).
    fn issue_fence(&self, m: &mut SimMachine<Self>, i: usize, kind: FenceKind) -> bool;

    /// `true` once the waiting condition of a completion fence is met.
    /// Fence kinds the design does not treat as completion fences always
    /// report `true`.
    fn fence_condition_met(&self, m: &SimMachine<Self>, i: usize, kind: FenceKind) -> bool;

    /// Drains one non-store persist op (`Clwb`/`Pb`/`Ns`) from the head of
    /// core `i`'s store queue. Returns `true` if the op was consumed (the
    /// machine pops it), `false` to stop draining this cycle. Only designs
    /// that route persist ops through the store queue see these entries;
    /// the default consumes them as no-ops.
    fn drain_sq_persist_op(&self, m: &mut SimMachine<Self>, i: usize, op: SqOp) -> bool {
        let _ = (m, i, op);
        true
    }
}

/// The metadata of the engine implementing `design`.
pub fn engine_for(design: HwDesign) -> &'static dyn EngineMeta {
    match design {
        HwDesign::IntelX86 => &Intel,
        HwDesign::Hops => &Hops,
        HwDesign::NoPersistQueue => &NoPersistQueue,
        HwDesign::StrandWeaver => &StrandWeaver,
        HwDesign::NonAtomic => &NonAtomic,
        HwDesign::Eadr => &Eadr,
    }
}

/// Every registered engine's metadata, in [`HwDesign::ALL`] order.
pub fn all_engines() -> impl Iterator<Item = &'static dyn EngineMeta> {
    HwDesign::ALL.into_iter().map(engine_for)
}

// Back-end helpers shared by several engines. They live here (not in the
// machine core) because which structure a design drains is design policy;
// the mechanics are common.
impl<E: PersistEngine> SimMachine<E> {
    /// Intel / non-atomic: issue waiting flush slots, retire completed
    /// ones. Slots wait for elder same-line stores to retire first.
    pub(crate) fn backend_flush_engine(&mut self, i: usize) {
        if self.cores[i].flush.is_none() {
            return;
        }
        let n = self.cores[i].flush.as_ref().expect("checked").len();
        for s in 0..n {
            let (line, waiting) = {
                let slot = self.cores[i].flush.as_ref().expect("checked").slots()[s];
                (slot.line, slot.state == ClwbState::Waiting)
            };
            if !waiting || self.cores[i].sq_has_store_to(line) {
                continue;
            }
            if let Some(done_at) = self.flush_access(i, line) {
                self.cores[i].flush.as_mut().expect("checked").slots_mut()[s].state =
                    ClwbState::Pending { done_at };
                self.progress = true;
            }
        }
        let cycle = self.cycle;
        let before = self.cores[i].flush.as_ref().expect("checked").len();
        self.cores[i]
            .flush
            .as_mut()
            .expect("checked")
            .tick_retire(cycle);
        if self.cores[i].flush.as_ref().expect("checked").len() != before {
            self.progress = true;
        }
    }

    /// Strand buffers (StrandWeaver, no-persist-queue, HOPS): issue the
    /// ready CLWBs, advance completions, retire in order.
    ///
    /// The `Sbu` is moved out of the core for the duration (and restored
    /// before returning) so the issue loop can call `flush_access` — which
    /// borrows the whole machine — without re-fetching the unit per entry.
    pub(crate) fn backend_sbu(&mut self, i: usize) {
        let Some(mut sbu) = self.cores[i].sbu.take() else {
            return;
        };
        for b in 0..sbu.num_buffers() {
            for k in 0..sbu.buffer_len(b) {
                match sbu.entry(b, k) {
                    SbuEntry::Pb => break,
                    SbuEntry::Clwb {
                        line,
                        state: ClwbState::Waiting,
                    } => {
                        // Note: no store-queue gate here — that check
                        // happened before insertion, preserving the
                        // paper's deadlock-freedom argument.
                        if let Some(done_at) = self.flush_access(i, line) {
                            sbu.mark_pending(b, k, done_at);
                            self.progress = true;
                        }
                    }
                    SbuEntry::Clwb { .. } => {}
                }
            }
        }
        let out = sbu.tick_retire(self.cycle);
        if out.changed() {
            self.progress = true;
        }
        if out.retired > 0 && self.observing() {
            let total = sbu.len() as u64;
            for b in 0..sbu.num_buffers() {
                if out.retired_mask & (1 << b) != 0 {
                    self.note_sb_retired(i, b, sbu.buffer_len(b) as u32, total);
                }
            }
        }
        self.cores[i].sbu = Some(sbu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_has_an_engine() {
        for d in HwDesign::ALL {
            assert_eq!(engine_for(d).design(), d);
        }
        assert_eq!(all_engines().count(), HwDesign::ALL.len());
    }

    #[test]
    fn stall_causes_are_subsets_of_all() {
        for e in all_engines() {
            for c in e.stall_causes() {
                assert!(StallCause::ALL.contains(c));
            }
            // Every design can at least stall on fences, full store
            // queues, and contended locks (the design-agnostic frontend
            // produces those).
            for c in [
                StallCause::Fence,
                StallCause::StoreQueueFull,
                StallCause::Lock,
            ] {
                assert!(
                    e.stall_causes().contains(&c),
                    "{:?} missing {c:?}",
                    e.design()
                );
            }
        }
    }

    #[test]
    fn only_eadr_persists_at_visibility() {
        for e in all_engines() {
            assert_eq!(
                e.persists_at_visibility(),
                e.design() == HwDesign::Eadr,
                "{:?}",
                e.design()
            );
        }
    }
}
