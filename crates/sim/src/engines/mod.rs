//! The per-design persist engines.
//!
//! Everything that makes one hardware design behave differently from
//! another — which structure buffers CLWBs, what a fence admits or waits
//! for, how store-queue persist ops drain, where the durability point sits
//! — lives behind the [`PersistEngine`] trait, one module per design. The
//! machine core (`machine.rs`) is design-agnostic: it owns the
//! pipeline, caches, coherence, and the DES loop, and calls into its
//! engine at the four dispatch points (`setup_core`, `backend`,
//! `issue_clwb`, `issue_fence`) plus the fence-condition and store-queue
//! drain hooks.
//!
//! Engines are stateless unit structs (all per-core state lives in the
//! core), so the machine holds a `&'static dyn PersistEngine` and call
//! sites copy the reference before re-borrowing the machine mutably.
//!
//! Adding a design: write one `DesignSpec` entry in `sw-model` (label,
//! formal memory model, runtime lowering), one engine module here, and
//! register it in [`engine_for`]. The litmus matrix and sim/model
//! agreement suites pick the new design up from `HwDesign::ALL`
//! automatically.

mod eadr;
mod hops;
mod intel;
mod no_persist_queue;
mod non_atomic;
mod strandweaver;

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::{Core, SqOp};
use crate::machine::Machine;
use crate::persist::ClwbState;
use crate::stats::StallCause;

pub use eadr::Eadr;
pub use hops::Hops;
pub use intel::Intel;
pub use no_persist_queue::NoPersistQueue;
pub use non_atomic::NonAtomic;
pub use strandweaver::StrandWeaver;

/// The timing semantics of one hardware persistency design.
///
/// Engines are pure behaviour: they carry no state and are shared as
/// `&'static` references. Every method receives the [`Machine`] and a core
/// index and manipulates that core's queues and buffers.
pub trait PersistEngine: std::fmt::Debug + Sync {
    /// The design this engine implements.
    fn design(&self) -> HwDesign;

    /// Attaches the design's persist structures (strand buffer unit, flush
    /// engine, ...) to a freshly built core.
    fn setup_core(&self, core: &mut Core, cfg: &SimConfig);

    /// Runs the design's back-end structures for one cycle on core `i`
    /// (issue ready CLWBs, advance completions, retire). Called before the
    /// design-agnostic store-queue and write-back stages.
    fn backend(&self, m: &mut Machine, i: usize);

    /// Attempts to admit a CLWB for `line` on core `i`; returns `false`
    /// (after recording the stall) if the design's structure is full.
    fn issue_clwb(&self, m: &mut Machine, i: usize, line: LineAddr) -> bool;

    /// Attempts to execute a fence on core `i`; returns `false` (after
    /// recording the stall) while its admission condition is unmet. A
    /// *completion* fence that admits but has unmet drain conditions
    /// becomes the core's `pending_fence` (see
    /// `Machine::issue_completion_fence`).
    fn issue_fence(&self, m: &mut Machine, i: usize, kind: FenceKind) -> bool;

    /// `true` once the waiting condition of a completion fence is met.
    /// Fence kinds the design does not treat as completion fences always
    /// report `true`.
    fn fence_condition_met(&self, m: &Machine, i: usize, kind: FenceKind) -> bool;

    /// Drains one non-store persist op (`Clwb`/`Pb`/`Ns`) from the head of
    /// core `i`'s store queue. Returns `true` if the op was consumed (the
    /// machine pops it), `false` to stop draining this cycle. Only designs
    /// that route persist ops through the store queue see these entries;
    /// the default consumes them as no-ops.
    fn drain_sq_persist_op(&self, m: &mut Machine, i: usize, op: SqOp) -> bool {
        let _ = (m, i, op);
        true
    }

    /// `true` when stores persist at coherence visibility (battery-backed
    /// caches): the machine then records the persist order at store
    /// retirement instead of at PM-controller acceptance.
    fn persists_at_visibility(&self) -> bool {
        false
    }

    /// The stall causes this design can actually produce. Causes outside
    /// this set stay zero in [`crate::CoreStats`] and in the metrics
    /// registry (which registers a counter per cause regardless, so
    /// snapshots always carry explicit zeros).
    fn stall_causes(&self) -> &'static [StallCause];
}

/// The engine implementing `design`.
pub fn engine_for(design: HwDesign) -> &'static dyn PersistEngine {
    match design {
        HwDesign::IntelX86 => &Intel,
        HwDesign::Hops => &Hops,
        HwDesign::NoPersistQueue => &NoPersistQueue,
        HwDesign::StrandWeaver => &StrandWeaver,
        HwDesign::NonAtomic => &NonAtomic,
        HwDesign::Eadr => &Eadr,
    }
}

/// Every registered engine, in [`HwDesign::ALL`] order.
pub fn all_engines() -> impl Iterator<Item = &'static dyn PersistEngine> {
    HwDesign::ALL.into_iter().map(engine_for)
}

// Back-end helpers shared by several engines. They live here (not in the
// machine core) because which structure a design drains is design policy;
// the mechanics are common.
impl Machine {
    /// Intel / non-atomic: issue waiting flush slots, retire completed
    /// ones. Slots wait for elder same-line stores to retire first.
    pub(crate) fn backend_flush_engine(&mut self, i: usize) {
        if self.cores[i].flush.is_none() {
            return;
        }
        let n = self.cores[i].flush.as_ref().expect("checked").len();
        for s in 0..n {
            let (line, waiting) = {
                let slot = self.cores[i].flush.as_ref().expect("checked").slots()[s];
                (slot.line, slot.state == ClwbState::Waiting)
            };
            if !waiting || self.cores[i].sq_has_store_to(line) {
                continue;
            }
            if let Some(done_at) = self.flush_access(i, line) {
                self.cores[i].flush.as_mut().expect("checked").slots_mut()[s].state =
                    ClwbState::Pending { done_at };
            }
        }
        let cycle = self.cycle;
        self.cores[i]
            .flush
            .as_mut()
            .expect("checked")
            .tick_retire(cycle);
    }

    /// Strand buffers (StrandWeaver, no-persist-queue, HOPS): issue the
    /// ready CLWBs, advance completions, retire in order.
    pub(crate) fn backend_sbu(&mut self, i: usize) {
        if self.cores[i].sbu.is_none() {
            return;
        }
        let issuable = self.cores[i].sbu.as_ref().expect("checked").issuable();
        for (b, e, line) in issuable {
            // Note: no store-queue gate here — that check happened before
            // insertion, preserving the paper's deadlock-freedom argument.
            if let Some(done_at) = self.flush_access(i, line) {
                self.cores[i]
                    .sbu
                    .as_mut()
                    .expect("checked")
                    .mark_pending(b, e, done_at);
            }
        }
        let cycle = self.cycle;
        let before = if self.observing() {
            Some(self.cores[i].sbu.as_ref().expect("checked").occupancies())
        } else {
            None
        };
        self.cores[i]
            .sbu
            .as_mut()
            .expect("checked")
            .tick_retire(cycle);
        if let Some(before) = before {
            let after = self.cores[i].sbu.as_ref().expect("checked").occupancies();
            for (b, (&was, &now)) in before.iter().zip(&after).enumerate() {
                if now < was {
                    self.note_sb(i, b, false);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_has_an_engine() {
        for d in HwDesign::ALL {
            assert_eq!(engine_for(d).design(), d);
        }
        assert_eq!(all_engines().count(), HwDesign::ALL.len());
    }

    #[test]
    fn stall_causes_are_subsets_of_all() {
        for e in all_engines() {
            for c in e.stall_causes() {
                assert!(StallCause::ALL.contains(c));
            }
            // Every design can at least stall on fences, full store
            // queues, and contended locks (the design-agnostic frontend
            // produces those).
            for c in [
                StallCause::Fence,
                StallCause::StoreQueueFull,
                StallCause::Lock,
            ] {
                assert!(
                    e.stall_causes().contains(&c),
                    "{:?} missing {c:?}",
                    e.design()
                );
            }
        }
    }

    #[test]
    fn only_eadr_persists_at_visibility() {
        for e in all_engines() {
            assert_eq!(
                e.persists_at_visibility(),
                e.design() == HwDesign::Eadr,
                "{:?}",
                e.design()
            );
        }
    }
}
