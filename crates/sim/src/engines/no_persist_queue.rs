//! StrandWeaver without the persist queue (the intermediate design of
//! Section VI-B): strand primitives flow through the store queue, so a
//! head-of-line CLWB blocks the stores behind it until the strand buffer
//! unit has space.

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::{Core, SqOp};
use crate::machine::SimMachine;
use crate::stats::StallCause;
use crate::strand_buffer::Sbu;

use super::{EngineMeta, PersistEngine};

/// The no-persist-queue engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPersistQueue;

impl EngineMeta for NoPersistQueue {
    fn design(&self) -> HwDesign {
        HwDesign::NoPersistQueue
    }

    fn stall_causes(&self) -> &'static [StallCause] {
        // No persist queue: CLWB back-pressure surfaces as store-queue
        // pressure, so `PersistQueueFull` can never occur.
        &[
            StallCause::Fence,
            StallCause::StoreQueueFull,
            StallCause::Lock,
        ]
    }
}

impl PersistEngine for NoPersistQueue {
    fn setup_core(&self, core: &mut Core, cfg: &SimConfig) {
        core.sbu = Some(Sbu::new(cfg.strand_buffers, cfg.strand_buffer_entries));
    }

    fn backend(&self, m: &mut SimMachine<Self>, i: usize) {
        m.backend_sbu(i);
    }

    fn issue_clwb(&self, m: &mut SimMachine<Self>, i: usize, line: LineAddr) -> bool {
        if m.cores[i].sq.len() >= m.cfg.store_queue_entries {
            m.stall(i, StallCause::StoreQueueFull);
            return false;
        }
        m.cores[i].sq.push_back(SqOp::Clwb(line));
        true
    }

    fn issue_fence(&self, m: &mut SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::PersistBarrier | FenceKind::NewStrand => {
                if m.cores[i].sq.len() >= m.cfg.store_queue_entries {
                    m.stall(i, StallCause::StoreQueueFull);
                    return false;
                }
                let op = if kind == FenceKind::PersistBarrier {
                    SqOp::Pb
                } else {
                    SqOp::Ns
                };
                m.cores[i].sq.push_back(op);
                true
            }
            FenceKind::JoinStrand => m.issue_completion_fence(i, kind),
            _ => true,
        }
    }

    fn fence_condition_met(&self, m: &SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::JoinStrand => m.cores[i].stores_drained() && m.cores[i].persists_drained(),
            _ => true,
        }
    }

    fn drain_sq_persist_op(&self, m: &mut SimMachine<Self>, i: usize, op: SqOp) -> bool {
        match op {
            SqOp::Clwb(line) => {
                // Head-of-line CLWB blocks the stores behind it until the
                // strand buffer has space (and never overtakes an in-flight
                // same-line store).
                if m.cores[i]
                    .store_pending
                    .as_ref()
                    .is_some_and(|p| p.line == line)
                {
                    return false;
                }
                let sbu = m.cores[i].sbu.as_ref().expect("no-pq design has sbu");
                if !sbu.has_space() {
                    return false;
                }
                m.cores[i].sbu.as_mut().expect("checked").push_clwb(line);
                m.note_sb_enqueue(i);
                true
            }
            SqOp::Pb => {
                let sbu = m.cores[i].sbu.as_ref().expect("no-pq design has sbu");
                if !sbu.has_space() {
                    return false;
                }
                m.cores[i].sbu.as_mut().expect("checked").push_pb();
                m.note_sb_enqueue(i);
                true
            }
            SqOp::Ns => {
                m.cores[i]
                    .sbu
                    .as_mut()
                    .expect("no-pq design has sbu")
                    .new_strand();
                true
            }
            SqOp::Store(_) => unreachable!("stores drain in the machine core"),
        }
    }
}
