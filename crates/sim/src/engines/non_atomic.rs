//! The paper's NON-ATOMIC upper bound: Intel hardware with the pairwise
//! log→update `SFENCE`s removed by the runtime. The engine itself is
//! Intel's, except the flush slots get the persist queue's capacity so
//! the design is limited by the device, not by MSHRs.

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::Core;
use crate::machine::SimMachine;
use crate::persist::FlushEngine;
use crate::stats::StallCause;

use super::intel::{issue_clwb_to_flush_engine, sfence_condition_met};
use super::{EngineMeta, PersistEngine};

/// The non-atomic engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonAtomic;

impl EngineMeta for NonAtomic {
    fn design(&self) -> HwDesign {
        HwDesign::NonAtomic
    }

    fn stall_causes(&self) -> &'static [StallCause] {
        &StallCause::ALL
    }
}

impl PersistEngine for NonAtomic {
    fn setup_core(&self, core: &mut Core, cfg: &SimConfig) {
        // Buffers CLWBs without any ordering; give it the persist queue's
        // capacity so it is limited by the device, not by MSHRs.
        core.flush = Some(FlushEngine::new(cfg.persist_queue_entries));
    }

    fn backend(&self, m: &mut SimMachine<Self>, i: usize) {
        m.backend_flush_engine(i);
    }

    fn issue_clwb(&self, m: &mut SimMachine<Self>, i: usize, line: LineAddr) -> bool {
        issue_clwb_to_flush_engine(m, i, line)
    }

    fn issue_fence(&self, m: &mut SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::Sfence => m.issue_completion_fence(i, kind),
            _ => true,
        }
    }

    fn fence_condition_met(&self, m: &SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        sfence_condition_met(m, i, kind)
    }
}
