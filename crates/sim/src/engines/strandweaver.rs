//! Full StrandWeaver: a persist queue in front of the strand buffer unit.
//!
//! CLWBs, persist barriers, and `NewStrand`s enter the 16-entry persist
//! queue at issue, keeping long-latency flushes out of the store queue;
//! the back-end moves them to the strand buffer unit in order, holding a
//! CLWB at the queue head until its elder same-line store retires (the
//! paper's deadlock-freedom argument). `JoinStrand` is the only
//! core-visible wait: it retires once stores and persists have drained.

use sw_model::isa::FenceKind;
use sw_model::HwDesign;
use sw_pmem::LineAddr;

use crate::config::SimConfig;
use crate::core::{Core, PqOp};
use crate::machine::SimMachine;
use crate::stats::StallCause;
use crate::strand_buffer::Sbu;

use super::{EngineMeta, PersistEngine};

/// How many persist-queue entries may move to the strand buffer unit per
/// cycle.
const PQ_ISSUE_WIDTH: usize = 4;

/// The full StrandWeaver engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrandWeaver;

impl EngineMeta for StrandWeaver {
    fn design(&self) -> HwDesign {
        HwDesign::StrandWeaver
    }

    fn stall_causes(&self) -> &'static [StallCause] {
        &StallCause::ALL
    }
}

impl PersistEngine for StrandWeaver {
    fn setup_core(&self, core: &mut Core, cfg: &SimConfig) {
        core.sbu = Some(Sbu::new(cfg.strand_buffers, cfg.strand_buffer_entries));
    }

    fn backend(&self, m: &mut SimMachine<Self>, i: usize) {
        m.backend_sbu(i);
        backend_pq(m, i);
    }

    fn issue_clwb(&self, m: &mut SimMachine<Self>, i: usize, line: LineAddr) -> bool {
        if m.cores[i].pq.len() >= m.cfg.persist_queue_entries {
            m.stall_persist_full(i);
            return false;
        }
        m.cores[i].pq.push_back(PqOp::Clwb(line));
        m.note_pq(i, true);
        true
    }

    fn issue_fence(&self, m: &mut SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            FenceKind::PersistBarrier | FenceKind::NewStrand => {
                if m.cores[i].pq.len() >= m.cfg.persist_queue_entries {
                    m.stall_persist_full(i);
                    return false;
                }
                let op = if kind == FenceKind::PersistBarrier {
                    PqOp::Pb
                } else {
                    PqOp::Ns
                };
                m.cores[i].pq.push_back(op);
                m.note_pq(i, true);
                true
            }
            FenceKind::JoinStrand => m.issue_completion_fence(i, kind),
            // Fences of other designs are no-ops here (traces are lowered
            // per design, so this only happens in hand-written tests).
            _ => true,
        }
    }

    fn fence_condition_met(&self, m: &SimMachine<Self>, i: usize, kind: FenceKind) -> bool {
        match kind {
            // JoinStrand: prior CLWBs and stores must complete.
            FenceKind::JoinStrand => m.cores[i].stores_drained() && m.cores[i].persists_drained(),
            _ => true,
        }
    }
}

/// Moves persist-queue entries to the strand buffer unit in order.
fn backend_pq(m: &mut SimMachine<StrandWeaver>, i: usize) {
    for _ in 0..PQ_ISSUE_WIDTH {
        let Some(&op) = m.cores[i].pq.front() else {
            break;
        };
        match op {
            PqOp::Clwb(line) => {
                let has_space = m.cores[i]
                    .sbu
                    .as_ref()
                    .expect("strandweaver has sbu")
                    .has_space();
                if !has_space || m.cores[i].sq_has_store_to(line) {
                    break;
                }
                m.cores[i].sbu.as_mut().expect("checked").push_clwb(line);
                m.note_sb_enqueue(i);
            }
            PqOp::Pb => {
                if !m.cores[i].sbu.as_ref().expect("checked").has_space() {
                    break;
                }
                m.cores[i].sbu.as_mut().expect("checked").push_pb();
                m.note_sb_enqueue(i);
            }
            PqOp::Ns => m.cores[i].sbu.as_mut().expect("checked").new_strand(),
        }
        m.cores[i].pq.pop_front();
        m.progress = true;
        m.note_pq(i, false);
    }
}
