//! Discrete-event (cycle-stepped) multicore timing simulator for the
//! StrandWeaver reproduction (paper Sections IV and VI).
//!
//! The simulator replays per-thread ISA traces (produced by the `sw-lang`
//! runtimes) under one of the registered hardware persistency designs —
//! the paper's five plus a battery-backed eADR extension, each implemented
//! as a [`PersistEngine`] in [`engines`] — and models the structures whose
//! interplay produces the paper's results:
//!
//! * per-core **store queues** (64 entries) and, for StrandWeaver, the
//!   16-entry **persist queue** that keeps long-latency CLWBs out of the
//!   store queue;
//! * the **strand buffer unit** — four 4-entry strand buffers by default —
//!   that drains CLWBs from different strands concurrently while persist
//!   barriers order each strand internally;
//! * Intel's `SFENCE` semantics (stall issue until prior CLWBs complete),
//!   HOPS's delegated `ofence`/`dfence` persist buffer, and eADR's
//!   persistence domain that makes stores durable at visibility;
//! * private L1s with a dirty-owner directory, snoop-buffer stalls on
//!   read-exclusive steals, write-back buffers with per-strand-buffer tail
//!   indexes, and an ADR PM controller with a bounded write queue (Table I
//!   latencies).
//!
//! # Example
//!
//! ```
//! use sw_model::isa::{FenceKind, IsaOp};
//! use sw_model::HwDesign;
//! use sw_pmem::PmLayout;
//! use sw_sim::{Machine, SimConfig};
//!
//! let layout = PmLayout::new(1, 64);
//! let a = layout.heap_base();
//! let trace = vec![
//!     IsaOp::Store(a),
//!     IsaOp::Clwb(a),
//!     IsaOp::Fence(FenceKind::JoinStrand),
//! ];
//! let m = Machine::new(SimConfig::table_i().with_cores(1), HwDesign::StrandWeaver,
//!                      layout, vec![trace]);
//! let stats = m.run();
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.total_clwbs(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod core;
pub mod engines;
mod machine;
mod memctrl;
mod persist;
mod pipeline;
mod ring;
mod stats;
mod strand_buffer;
mod writeback;

pub use cache::{Directory, Eviction, L1Cache};
pub use config::SimConfig;
pub use engines::{engine_for, EngineMeta, PersistEngine};
pub use machine::{Machine, SimMachine};
pub use memctrl::{DramController, PmController};
pub use persist::{ClwbState, FlushEngine};
pub use ring::Ring;
pub use stats::{CoreStats, EventCounts, SimStats, StallCause};
pub use strand_buffer::{DrainTargets, RetireOutcome, Sbu, SbuEntry, MAX_STRAND_BUFFERS};
