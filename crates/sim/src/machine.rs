//! The cycle-stepped multicore machine core.
//!
//! The machine replays one ISA trace per core under a chosen hardware
//! design and reports cycle counts and stall breakdowns. Everything
//! design-specific — fence admission and retirement semantics, CLWB
//! enqueue policy, persist scheduling, drain conditions — lives behind the
//! [`PersistEngine`] trait ([`crate::engines`], one module per design);
//! this module owns the design-agnostic substrate: the DES loop, caches
//! and coherence, locks, observability, and the PM/DRAM controllers. The
//! front-end issue stage is in [`crate::pipeline`], the store-queue and
//! write-back drains in [`crate::writeback`].
//!
//! The machine is monomorphized per design: [`SimMachine<E>`] holds its
//! engine as a zero-sized value, so the two engine calls per core per
//! cycle are statically dispatched and inlinable. The [`Machine`] enum is
//! the design-erased facade — one variant per design — that `swctl`, the
//! experiment harness, and tests construct from a runtime [`HwDesign`].
//!
//! Each cycle:
//!
//! 1. the PM controller drains its ADR write queue;
//! 2. coherence steals whose snoop-buffer drain condition is met resolve;
//! 3. every core's back-end runs — the design's persist engine issues and
//!    retires CLWBs, then the store queue retires stores and write-backs
//!    drain;
//! 4. every core's front-end issues at most one trace operation, honoring
//!    the engine's fence semantics and queue capacities.
//!
//! When a whole tick makes no architectural progress, the machine jumps
//! straight to the next cycle at which anything can happen (the minimum
//! over memory-controller drains, in-flight access completions, and
//! persist-structure acknowledgements), replaying the skipped cycles'
//! stall accounting so `SimStats` stay bit-identical to single-stepping
//! (`SimConfig::skip_ahead` disables the jump for equivalence tests).
//!
//! Deadlock freedom follows the paper's argument: CLWBs wait for elder
//! same-line stores *before* entering the strand buffer unit (at the
//! persist-queue head), never inside it, so strand buffers always drain,
//! which unblocks snoop stalls, which unblocks store retirement.

use sw_model::isa::{FenceKind, IsaTrace, LockId};
use sw_model::HwDesign;
use sw_perf::{Lap, Phase, Profiler};
use sw_pmem::{LineAddr, PmLayout};
use sw_trace::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, StallKind, TraceEvent, TraceSink,
};

use crate::cache::{Directory, LineSet};
use crate::config::SimConfig;
use crate::core::{Core, PendingAccess, Writeback};
use crate::engines::{Eadr, Hops, Intel, NoPersistQueue, NonAtomic, PersistEngine, StrandWeaver};
use crate::memctrl::{DramController, PmController, WriteOutcome};
use crate::ring::Ring;
use crate::stats::{EventCounts, SimStats, StallCause};
use crate::strand_buffer::Sbu;

/// Short fence mnemonic used in trace exports.
fn fence_label(kind: FenceKind) -> &'static str {
    match kind {
        FenceKind::PersistBarrier => "pb",
        FenceKind::NewStrand => "ns",
        FenceKind::JoinStrand => "js",
        FenceKind::Sfence => "sfence",
        FenceKind::Ofence => "ofence",
        FenceKind::Dfence => "dfence",
    }
}

#[derive(Debug)]
pub(crate) struct LockState {
    pub(crate) holder: Option<usize>,
    pub(crate) waiters: Ring<usize>,
}

impl LockState {
    fn new(waiter_capacity: usize) -> Self {
        Self {
            holder: None,
            waiters: Ring::new(waiter_capacity, 0),
        }
    }
}

/// What a core's frontend charged this cycle. Exactly one note per core
/// per tick (the frontend returns after its first stall or wait), recorded
/// so [`SimMachine::skip_quiescent`] can replay the same accounting across
/// every skipped cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TickNote {
    /// Nothing charged (core done, or idling below `busy_until`).
    Idle,
    /// One `mem_busy` cycle (load outstanding).
    MemBusy,
    /// One stall cycle for the given cause.
    Stalled(StallCause),
}

#[derive(Debug)]
struct Steal {
    line: LineAddr,
    owner: usize,
    requester: usize,
    write: bool,
    /// Strand-buffer drain targets recorded at the owner when the steal
    /// arrived (the snoop-buffer tail indexes of Section IV).
    targets: Option<crate::strand_buffer::DrainTargets>,
}

/// Metric IDs registered by [`SimMachine::enable_metrics`], kept alongside
/// the registry so hot-path updates are plain vector writes.
#[derive(Debug)]
struct MachineMetrics {
    reg: MetricsRegistry,
    pm_writes: CounterId,
    pm_visible: CounterId,
    pq_enqueues: CounterId,
    sb_enqueues: CounterId,
    fence_retires: CounterId,
    /// One counter per [`StallCause`], indexed by the cause's discriminant.
    /// Registered up front for *every* cause, so snapshots carry explicit
    /// zeros for causes a design can never produce.
    stalls: Vec<CounterId>,
    pm_queue_depth: GaugeId,
    pq_depth: Vec<GaugeId>,
    sb_occupancy: Vec<GaugeId>,
    pq_depth_hist: HistogramId,
    sb_occupancy_hist: HistogramId,
    /// Online device-fault counters (`faults.online.*`), registered up
    /// front so fault-free runs report explicit zeros.
    fault_device: CounterId,
    fault_retries: CounterId,
    fault_remaps: CounterId,
    fault_poisons: CounterId,
    fault_spares_exhausted: CounterId,
}

/// The simulated machine, monomorphized over its design's persist engine.
///
/// `E` is a zero-sized [`PersistEngine`]; every design-dispatch point in
/// the cycle loop is a static call. Use the [`Machine`] facade to pick the
/// design at runtime.
#[derive(Debug)]
pub struct SimMachine<E: PersistEngine> {
    pub(crate) cfg: SimConfig,
    /// The design's persist engine: all design dispatch goes through it.
    pub(crate) engine: E,
    layout: PmLayout,
    pub(crate) cycle: u64,
    pub(crate) cores: Vec<Core>,
    pub(crate) pm: PmController,
    dram: DramController,
    /// Lines present somewhere in the (effectively unbounded) shared L2.
    l2: LineSet,
    pub(crate) dir: Directory,
    /// Lock table indexed by `LockId`, grown on first touch.
    pub(crate) locks: Vec<LockState>,
    steals: Vec<Steal>,
    /// Optional event sink; `None` keeps every emit site to one branch.
    trace: Option<Box<dyn TraceSink>>,
    metrics: Option<MachineMetrics>,
    /// Self-profiler timing the tick phases; `None` is the disabled path
    /// (one branch per phase boundary, no clock reads).
    prof: Option<Box<Profiler>>,
    /// Discrete-event totals, counted unconditionally (identical with and
    /// without observability attached).
    pub(crate) events: EventCounts,
    /// Stall cause recorded by the frontend this cycle, per core.
    stall_now: Vec<Option<StallKind>>,
    /// Stall interval currently open in the trace, per core.
    stall_active: Vec<Option<StallKind>>,
    /// Persist order recorded at store retirement — populated only when
    /// the engine persists at coherence visibility (eADR).
    pub(crate) visibility_order: Vec<LineAddr>,
    /// Set by any state mutation during the current tick; a tick that
    /// leaves it clear is quiescent and eligible for skip-ahead.
    pub(crate) progress: bool,
    /// Per-core accounting note for the current tick (see [`TickNote`]).
    pub(crate) tick_note: Vec<TickNote>,
}

impl<E: PersistEngine> SimMachine<E> {
    /// Builds a machine for this engine's design and one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if more traces than configured cores are supplied, or if the
    /// core count exceeds the directory's owner encoding (254).
    pub fn new(cfg: SimConfig, layout: PmLayout, traces: Vec<IsaTrace>) -> Self {
        assert!(traces.len() <= cfg.cores, "more traces than cores");
        assert!(
            cfg.cores < 255,
            "directory owner encoding supports at most 254 cores"
        );
        let engine = E::default();
        let mut cores: Vec<Core> = traces.into_iter().map(|t| Core::new(&cfg, t)).collect();
        while cores.len() < cfg.cores {
            cores.push(Core::new(&cfg, Vec::new()));
        }
        for core in &mut cores {
            engine.setup_core(core, &cfg);
        }
        let mut pm = PmController::new(
            cfg.pm_write_queue,
            cfg.pm_write_ack_cycles,
            cfg.pm_drain_interval,
            cfg.pm_read_cycles,
            cfg.pm_read_interval,
        );
        // An empty schedule installs nothing: `DeviceFaultSchedule::none()`
        // must be observationally identical to no fault layer at all.
        if let Some(schedule) = cfg.device_faults.clone() {
            if !schedule.is_empty() {
                pm.install_faults(schedule);
            }
        }
        let dram = DramController::new(cfg.dram_cycles);
        let n = cores.len();
        Self {
            cfg,
            engine,
            cycle: 0,
            cores,
            pm,
            dram,
            l2: LineSet::for_layout(&layout),
            dir: Directory::for_layout(&layout),
            layout,
            locks: Vec::new(),
            steals: Vec::new(),
            trace: None,
            metrics: None,
            prof: sw_perf::global_enabled().then(|| Box::new(Profiler::new())),
            events: EventCounts::default(),
            stall_now: vec![None; n],
            stall_active: vec![None; n],
            visibility_order: Vec::new(),
            progress: false,
            tick_note: vec![TickNote::Idle; n],
        }
    }

    /// The design this machine simulates.
    pub fn design(&self) -> HwDesign {
        self.engine.design()
    }

    /// Attaches a trace sink; every subsequent event is recorded into it.
    /// Pass a cloned [`sw_trace::RingRecorder`] handle to read the events
    /// back after [`SimMachine::run`] consumes the machine.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Enables the metrics registry; its snapshot lands in
    /// [`SimStats::metrics`] when the run finishes.
    pub fn enable_metrics(&mut self) {
        let mut reg = MetricsRegistry::new();
        let pm_writes = reg.counter("pm.writes_accepted");
        let pm_visible = reg.counter("pm.persists_visible");
        let pq_enqueues = reg.counter("pq.enqueues");
        let sb_enqueues = reg.counter("sb.enqueues");
        let fence_retires = reg.counter("fence.retires");
        let stalls = StallCause::ALL
            .iter()
            .map(|c| reg.counter(&format!("stalls.{}", c.label())))
            .collect();
        let pm_queue_depth = reg.gauge("pm.write_queue_depth");
        let pq_depth = (0..self.cores.len())
            .map(|i| reg.gauge(&format!("core{i}.pq_depth")))
            .collect();
        let sb_occupancy = (0..self.cores.len())
            .map(|i| reg.gauge(&format!("core{i}.sb_occupancy")))
            .collect();
        let pq_depth_hist = reg.histogram("pq.depth");
        let sb_occupancy_hist = reg.histogram("sb.occupancy");
        let fault_device = reg.counter("faults.online.device_faults");
        let fault_retries = reg.counter("faults.online.persist_retries");
        let fault_remaps = reg.counter("faults.online.lines_remapped");
        let fault_poisons = reg.counter("faults.online.reads_poisoned");
        let fault_spares_exhausted = reg.counter("faults.online.spares_exhausted");
        self.metrics = Some(MachineMetrics {
            reg,
            pm_writes,
            pm_visible,
            pq_enqueues,
            sb_enqueues,
            fence_retires,
            stalls,
            pm_queue_depth,
            pq_depth,
            sb_occupancy,
            pq_depth_hist,
            sb_occupancy_hist,
            fault_device,
            fault_retries,
            fault_remaps,
            fault_poisons,
            fault_spares_exhausted,
        });
    }

    /// Installs a self-profiler for this machine regardless of the
    /// ambient [`sw_perf::set_global_enabled`] flag; the snapshot lands in
    /// [`SimStats::perf`] when the run finishes. Profiling only reads the
    /// monotonic clock — simulated results are bit-identical with and
    /// without it.
    pub fn enable_profiler(&mut self) {
        self.prof = Some(Box::new(Profiler::new()));
    }

    /// `true` when any observability consumer is attached. The disabled
    /// path costs exactly this check at each note site.
    #[inline]
    pub(crate) fn observing(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Closes the current profiling lap, attributing it to `phase`. One
    /// branch when profiling is off; one clock read when on.
    #[inline]
    fn lap(&mut self, lap: &mut Lap, phase: Phase) {
        if let Some(prof) = self.prof.as_mut() {
            lap.mark(prof, phase);
        }
    }

    #[inline]
    pub(crate) fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(self.cycle, event);
        }
    }

    /// The lock table entry for `l`, grown on first touch.
    pub(crate) fn lock_state(&mut self, l: LockId) -> &mut LockState {
        let idx = l.0 as usize;
        if idx >= self.locks.len() {
            let cores = self.cfg.cores;
            self.locks.resize_with(idx + 1, || LockState::new(cores));
        }
        &mut self.locks[idx]
    }

    /// Records that core `i` spent this cycle stalled for `cause`: bumps
    /// the core's stall counter, the per-cause metrics counter, and the
    /// per-cycle note that becomes a begin/end trace interval (and the
    /// skip-ahead replay record).
    #[inline]
    pub(crate) fn stall(&mut self, i: usize, cause: StallCause) {
        self.cores[i].stats.record_stall(cause);
        self.tick_note[i] = TickNote::Stalled(cause);
        if self.observing() {
            self.stall_now[i] = Some(cause.kind());
            if let Some(m) = self.metrics.as_mut() {
                m.reg.inc(m.stalls[cause as usize]);
            }
        }
    }

    /// Records that core `i` stalled at a persist-admission point whose
    /// structure is full, attributing the cycle to the *root* cause: a
    /// fault-retry backoff at the PM controller, device write-queue
    /// back-pressure, or — absent both — the design's own persist
    /// structure. All three feed [`CoreStats::persist_stall_cycles`], so
    /// the Figure 8 aggregate is unchanged; the breakdown stays honest
    /// under faults. The attribution inputs only change at PM drains and
    /// fault-unit transitions, both of which bound a quiescent span, so
    /// skip-ahead replay of the recorded cause is exact.
    ///
    /// [`CoreStats::persist_stall_cycles`]: crate::stats::CoreStats::persist_stall_cycles
    #[inline]
    pub(crate) fn stall_persist_full(&mut self, i: usize) {
        let cause = if self.pm.retry_pending() {
            StallCause::RetryWait
        } else if self.pm.write_queue_full() {
            StallCause::PmWriteQueueFull
        } else {
            StallCause::PersistQueueFull
        };
        self.stall(i, cause);
    }

    /// Records the result of offering a write to the PM controller:
    /// acceptance flows into the usual accept accounting (plus retry /
    /// remap events when the acceptance closes a fault episode), a device
    /// fault emits a `DeviceFault` event on first failure. Returns the
    /// acknowledgement cycle when accepted.
    pub(crate) fn note_pm_outcome(&mut self, line: LineAddr, outcome: WriteOutcome) -> Option<u64> {
        match outcome {
            WriteOutcome::Accepted {
                ack_at,
                retried,
                remapped,
            } => {
                if retried.is_some() || remapped.is_some() {
                    self.note_fault_recovery(line, retried, remapped);
                }
                self.note_pm_accept(line);
                Some(ack_at)
            }
            WriteOutcome::QueueFull | WriteOutcome::RetryWait { .. } => None,
            WriteOutcome::RemapExhausted { line } => {
                // The device failed the line permanently: surface the
                // typed event so the layer above can fail the device
                // over (the write itself parks, exactly like RetryWait
                // at u64::MAX).
                if let Some(m) = self.metrics.as_mut() {
                    m.reg.inc(m.fault_device);
                    m.reg.inc(m.fault_spares_exhausted);
                }
                self.emit(TraceEvent::SparesExhausted { line: line.0 });
                None
            }
            WriteOutcome::Faulted { attempts, .. } => {
                if attempts == 1 {
                    // First failure of the episode: the fault itself.
                    if let Some(m) = self.metrics.as_mut() {
                        m.reg.inc(m.fault_device);
                    }
                    self.emit(TraceEvent::DeviceFault {
                        line: line.0,
                        class: "transient",
                    });
                }
                None
            }
        }
    }

    /// Records an acceptance that closed a fault episode: a successful
    /// retry, a newly created remap, or a write following an existing
    /// redirect.
    fn note_fault_recovery(
        &mut self,
        line: LineAddr,
        retried: Option<u32>,
        remapped: Option<(LineAddr, bool)>,
    ) {
        if let Some(attempts) = retried {
            if let Some(m) = self.metrics.as_mut() {
                m.reg.inc(m.fault_retries);
            }
            self.emit(TraceEvent::PersistRetried {
                line: line.0,
                attempts,
            });
        }
        if let Some((spare, newly)) = remapped {
            if newly {
                if let Some(m) = self.metrics.as_mut() {
                    m.reg.inc(m.fault_device);
                    m.reg.inc(m.fault_remaps);
                }
                self.emit(TraceEvent::DeviceFault {
                    line: line.0,
                    class: "permanent",
                });
                self.emit(TraceEvent::LineRemapped {
                    from: line.0,
                    to: spare.0,
                });
            }
        }
    }

    /// Records a poisoned PM read (MCE-style uncorrectable error).
    pub(crate) fn note_read_poisoned(&mut self, line: LineAddr) {
        if let Some(m) = self.metrics.as_mut() {
            m.reg.inc(m.fault_device);
            m.reg.inc(m.fault_poisons);
        }
        self.emit(TraceEvent::DeviceFault {
            line: line.0,
            class: "read_poison",
        });
    }

    /// Records that core `i` spent this cycle waiting on an outstanding
    /// load (one `mem_busy` cycle, replayed across skip-ahead jumps).
    #[inline]
    pub(crate) fn note_mem_busy_wait(&mut self, i: usize) {
        self.cores[i].stats.mem_busy += 1;
        self.tick_note[i] = TickNote::MemBusy;
    }

    /// Records a persist-queue occupancy change on core `i`.
    pub(crate) fn note_pq(&mut self, i: usize, enqueue: bool) {
        self.events.pq_events += 1;
        if !self.observing() {
            return;
        }
        let depth = self.cores[i].pq.len() as u32;
        if let Some(m) = self.metrics.as_mut() {
            if enqueue {
                m.reg.inc(m.pq_enqueues);
            }
            m.reg.set(m.pq_depth[i], depth.into());
            m.reg.observe(m.pq_depth_hist, depth.into());
        }
        let core = i as u32;
        self.emit(if enqueue {
            TraceEvent::PqEnqueue { core, depth }
        } else {
            TraceEvent::PqDequeue { core, depth }
        });
    }

    /// Records an append to core `i`'s ongoing strand buffer.
    pub(crate) fn note_sb_enqueue(&mut self, i: usize) {
        self.events.sb_enqueues += 1;
        if !self.observing() {
            return;
        }
        let Some(sbu) = self.cores[i].sbu.as_ref() else {
            return;
        };
        let buffer = sbu.ongoing_index();
        let occupancy = sbu.buffer_len(buffer) as u32;
        let total = sbu.len() as u64;
        if let Some(m) = self.metrics.as_mut() {
            m.reg.inc(m.sb_enqueues);
            m.reg.set(m.sb_occupancy[i], total);
            m.reg.observe(m.sb_occupancy_hist, occupancy.into());
        }
        self.emit(TraceEvent::SbEnqueue {
            core: i as u32,
            buffer: buffer as u32,
            occupancy,
        });
    }

    /// Records a strand-buffer retirement on core `i`. `occupancy` and
    /// `total` are the post-retirement buffer and unit occupancies, passed
    /// explicitly because the engine back-end holds the `Sbu` out of the
    /// core while retiring.
    pub(crate) fn note_sb_retired(&mut self, i: usize, buffer: usize, occupancy: u32, total: u64) {
        if !self.observing() {
            return;
        }
        if let Some(m) = self.metrics.as_mut() {
            m.reg.set(m.sb_occupancy[i], total);
            m.reg.observe(m.sb_occupancy_hist, occupancy.into());
        }
        self.emit(TraceEvent::SbRetire {
            core: i as u32,
            buffer: buffer as u32,
            occupancy,
        });
    }

    /// Records an ADR PM controller acceptance of `line` — the durability
    /// point of controller-ordered designs.
    pub(crate) fn note_pm_accept(&mut self, line: LineAddr) {
        self.events.pm_writes += 1;
        if !self.observing() {
            return;
        }
        let queue_depth = self.pm.write_queue_len() as u32;
        if let Some(m) = self.metrics.as_mut() {
            m.reg.inc(m.pm_writes);
            m.reg.set(m.pm_queue_depth, queue_depth.into());
        }
        self.emit(TraceEvent::AdrAccept {
            line: line.0,
            queue_depth,
        });
    }

    /// Records a store becoming durable at coherence visibility — the
    /// durability point of battery-backed (eADR) designs.
    pub(crate) fn note_persist_visible(&mut self, i: usize, line: LineAddr) {
        self.events.persists_visible += 1;
        if !self.observing() {
            return;
        }
        if let Some(m) = self.metrics.as_mut() {
            m.reg.inc(m.pm_visible);
        }
        self.emit(TraceEvent::PersistVisible {
            core: i as u32,
            line: line.0,
        });
    }

    /// Records that a fence's issue condition was satisfied on core `i`.
    pub(crate) fn note_fence_retire(&mut self, i: usize, kind: FenceKind) {
        if !self.observing() {
            return;
        }
        if let Some(m) = self.metrics.as_mut() {
            m.reg.inc(m.fence_retires);
        }
        self.emit(TraceEvent::FenceRetire {
            core: i as u32,
            kind: fence_label(kind),
        });
    }

    /// Turns this cycle's stall notes into `StallBegin` / `StallEnd`
    /// interval events.
    fn reconcile_stalls(&mut self) {
        for i in 0..self.cores.len() {
            let now = self.stall_now[i].take();
            if now == self.stall_active[i] {
                continue;
            }
            if let Some(prev) = self.stall_active[i] {
                self.emit(TraceEvent::StallEnd {
                    core: i as u32,
                    cause: prev,
                });
            }
            if let Some(cause) = now {
                self.emit(TraceEvent::StallBegin {
                    core: i as u32,
                    cause,
                });
            }
            self.stall_active[i] = now;
        }
    }

    /// Preloads lines into the shared L2 (e.g. the lines a setup phase
    /// wrote), so a steady-state timing run does not pay cold-device
    /// latencies for data that would be cache-resident after warmup.
    pub fn preload_l2<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) {
        for line in lines {
            self.l2.insert(line);
        }
    }

    /// Runs to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the configured cycle bound is exceeded (indicates a
    /// modelling deadlock — a bug).
    pub fn run(mut self) -> SimStats {
        while !self.cores.iter().all(|c| c.done) {
            self.progress = false;
            self.tick_note.fill(TickNote::Idle);
            self.tick();
            assert!(
                self.cycle < self.cfg.max_cycles,
                "simulation exceeded cycle bound"
            );
            if self.cfg.skip_ahead && !self.progress {
                self.skip_quiescent();
            }
        }
        let cycles = self
            .cores
            .iter()
            .map(|c| c.stats.done_cycle)
            .max()
            .unwrap_or(0);
        // Close any stall interval still open when the machine drained.
        if self.observing() {
            for i in 0..self.cores.len() {
                if let Some(cause) = self.stall_active[i].take() {
                    self.emit(TraceEvent::StallEnd {
                        core: i as u32,
                        cause,
                    });
                }
            }
        }
        let pm_write_order = if self.engine.persists_at_visibility() {
            std::mem::take(&mut self.visibility_order)
        } else {
            std::mem::take(&mut self.pm.write_order)
        };
        self.events.frontend_ops = self.cores.iter().map(|c| c.stats.ops).sum();
        let perf = self.prof.take().map(|p| p.snapshot());
        if let Some(snap) = &perf {
            // Sweep-cell worker threads all merge into the ambient
            // aggregate, so `swctl bench`/`swctl perf` can attribute a
            // whole sweep without plumbing a handle per machine.
            if sw_perf::global_enabled() {
                sw_perf::global_merge(snap);
            }
            for p in snap.phases.clone() {
                self.emit(TraceEvent::PerfPhase {
                    phase: p.phase,
                    nanos: p.nanos,
                    calls: p.calls,
                });
            }
            if let Some(m) = self.metrics.as_mut() {
                for p in &snap.phases {
                    let nanos = m.reg.counter(&format!("perf.{}.nanos", p.phase));
                    let calls = m.reg.counter(&format!("perf.{}.calls", p.phase));
                    m.reg.add(nanos, p.nanos);
                    m.reg.add(calls, p.calls);
                }
            }
        }
        SimStats {
            cycles,
            cores: self.cores.into_iter().map(|c| c.stats).collect(),
            pm_write_order,
            metrics: self
                .metrics
                .as_ref()
                .map(|m| m.reg.snapshot())
                .unwrap_or_default(),
            events: self.events,
            online_faults: self.pm.online_stats(),
            perf,
        }
    }

    pub(crate) fn is_persistent_line(&self, line: LineAddr) -> bool {
        self.layout.is_persistent(line.base())
    }

    fn tick(&mut self) {
        // Phase boundaries mirror the statement order below; the lap chain
        // costs one clock read per boundary when profiling, one branch on
        // the `prof` discriminant when not. The phases never reorder or
        // gate any simulation work, so results are bit-identical either
        // way.
        let mut lap = Lap::begin(self.prof.is_some());
        if self.pm.tick(self.cycle) > 0 {
            self.progress = true;
        }
        self.lap(&mut lap, Phase::Memctrl);
        self.process_steals();
        self.lap(&mut lap, Phase::Coherence);
        let engine = self.engine;
        for i in 0..self.cores.len() {
            engine.backend(self, i);
            self.lap(&mut lap, Phase::Engine);
            self.backend_sq(i);
            self.lap(&mut lap, Phase::StoreQueue);
            self.backend_wb(i);
            self.lap(&mut lap, Phase::Writeback);
        }
        for i in 0..self.cores.len() {
            self.frontend(i);
        }
        self.lap(&mut lap, Phase::Frontend);
        if self.observing() {
            self.reconcile_stalls();
        }
        self.lap(&mut lap, Phase::Observe);
        for i in 0..self.cores.len() {
            if !self.cores[i].done
                && self.cores[i].fully_drained()
                && self.cycle >= self.cores[i].busy_until
            {
                self.cores[i].done = true;
                self.cores[i].stats.done_cycle = self.cycle;
                self.progress = true;
            }
        }
        self.cycle += 1;
        self.lap(&mut lap, Phase::Retire);
    }

    // ------------------------------------------------------------------
    // Skip-ahead scheduling.
    // ------------------------------------------------------------------

    /// Jumps over quiescent cycles after a tick that made no progress:
    /// advances the clock to [`SimMachine::next_event_cycle`] and replays
    /// each core's per-cycle accounting ([`TickNote`]) across the skipped
    /// span, so counters and metrics are bit-identical to single-stepping.
    fn skip_quiescent(&mut self) {
        let target = self
            .next_event_cycle()
            .unwrap_or(self.cfg.max_cycles)
            .min(self.cfg.max_cycles);
        if target <= self.cycle {
            return;
        }
        let n = target - self.cycle;
        for i in 0..self.cores.len() {
            match self.tick_note[i] {
                TickNote::Idle => {}
                TickNote::MemBusy => self.cores[i].stats.mem_busy += n,
                TickNote::Stalled(cause) => {
                    self.cores[i].stats.record_stall_n(cause, n);
                    if let Some(m) = self.metrics.as_mut() {
                        m.reg.add(m.stalls[cause as usize], n);
                    }
                }
            }
        }
        self.cycle = target;
    }

    /// The earliest future cycle at which any scheduled event fires: a PM
    /// write-queue drain, a core coming off `busy_until`, an in-flight
    /// access completing, or a persist-structure acknowledgement arriving.
    /// `None` means nothing is scheduled (a genuine deadlock: the caller
    /// jumps to the cycle bound and the next tick panics, exactly as
    /// single-stepping eventually would).
    ///
    /// Soundness: after a tick with no progress, every other wake-up
    /// source — steal resolution, fence conditions, queue drains — is
    /// itself blocked on one of the timestamps listed here, so nothing can
    /// happen strictly before the returned cycle.
    fn next_event_cycle(&self) -> Option<u64> {
        let now = self.cycle;
        let mut next = u64::MAX;
        let mut consider = |t: u64| {
            if t >= now && t < next {
                next = t;
            }
        };
        if self.pm.write_queue_len() > 0 {
            consider(self.pm.next_drain());
        }
        if let Some(t) = self.pm.next_retry_at() {
            // A line parked in fault-retry back-off wakes its holder.
            consider(t);
        }
        for core in &self.cores {
            if core.done {
                continue;
            }
            consider(core.busy_until);
            if let Some(t) = core.load_pending.and_then(|p| p.ready_at) {
                consider(t);
            }
            if let Some(t) = core.store_pending.and_then(|p| p.ready_at) {
                consider(t);
            }
            if let Some(t) = core.sbu.as_ref().and_then(Sbu::min_pending_done_at) {
                consider(t);
            }
            if let Some(t) = core.flush.as_ref().and_then(|f| f.min_pending_done_at()) {
                consider(t);
            }
        }
        (next != u64::MAX).then_some(next)
    }

    // ------------------------------------------------------------------
    // Coherence.
    // ------------------------------------------------------------------

    /// Begins a fetch of `line` for core `i`. Returns the completion cycle,
    /// or `None` if a coherence steal is in flight (the caller's pending
    /// access resolves later).
    pub(crate) fn start_fetch(&mut self, i: usize, line: LineAddr, write: bool) -> Option<u64> {
        if let Some(owner) = self.dir.dirty_owner(line) {
            if owner != i {
                let targets = self.cores[owner].sbu.as_ref().map(Sbu::drain_targets);
                self.steals.push(Steal {
                    line,
                    owner,
                    requester: i,
                    write,
                    targets,
                });
                return None;
            }
        }
        let latency = if self.l2.contains(line) {
            self.cfg.l2_hit_cycles
        } else {
            self.l2.insert(line);
            if self.is_persistent_line(line) {
                // Cold write-allocations stream from the controller (see
                // DESIGN.md): reads pay the device latency, stores do not.
                if write {
                    self.cfg.l2_hit_cycles
                } else {
                    let r = self.pm.read(line, self.cycle);
                    if r.poisoned {
                        self.note_read_poisoned(line);
                    }
                    r.done_at - self.cycle
                }
            } else {
                self.dram.access(self.cycle) - self.cycle
            }
        };
        self.install(i, line, write);
        Some(self.cycle + latency)
    }

    /// Installs `line` in core `i`'s L1 and handles the eviction.
    fn install(&mut self, i: usize, line: LineAddr, dirty: bool) {
        if dirty && self.is_persistent_line(line) {
            self.dir.set_dirty_owner(line, i);
        }
        if let Some(ev) = self.cores[i].l1.install(line, dirty) {
            if ev.dirty {
                self.dir.clear_dirty_owner(ev.line);
                if self.is_persistent_line(ev.line) {
                    let targets = self.cores[i].sbu.as_ref().map(Sbu::drain_targets);
                    self.cores[i].wb.push(Writeback {
                        line: ev.line,
                        targets,
                    });
                }
                // Volatile dirty evictions drain to DRAM for free.
            }
        }
    }

    fn process_steals(&mut self) {
        if self.steals.is_empty() {
            return;
        }
        // Take the vector (keeping its allocation) so resolution can
        // borrow the machine mutably; unresolved steals are retained in
        // arrival order.
        let mut steals = std::mem::take(&mut self.steals);
        steals.retain(|s| {
            let drained = match (&s.targets, self.cores[s.owner].sbu.as_ref()) {
                (Some(t), Some(sbu)) => sbu.drained_past(t),
                _ => true,
            };
            if !drained {
                return true;
            }
            self.progress = true;
            self.events.steals += 1;
            let was_dirty = self.cores[s.owner].l1.invalidate(s.line);
            self.dir.clear_dirty_owner(s.line);
            self.l2.insert(s.line);
            self.install(s.requester, s.line, was_dirty || s.write);
            let ready = self.cycle + self.cfg.coherence_transfer_cycles + self.cfg.l1_hit_cycles;
            let core = &mut self.cores[s.requester];
            let matches_pending = |p: &PendingAccess| p.line == s.line && p.ready_at.is_none();
            if core.load_pending.as_ref().is_some_and(matches_pending) {
                core.load_pending.as_mut().expect("checked").ready_at = Some(ready);
            } else if core.store_pending.as_ref().is_some_and(matches_pending) {
                core.store_pending.as_mut().expect("checked").ready_at = Some(ready);
            }
            false
        });
        self.steals = steals;
    }
}

/// The design-erased machine facade: one variant per [`HwDesign`], each
/// holding the monomorphized [`SimMachine`] for that design's engine.
///
/// Construction picks the variant from a runtime design value; every
/// method is a single `match` that forwards to the statically dispatched
/// machine inside, so the dynamic dispatch cost is paid once per call into
/// the facade, not twice per core per simulated cycle.
#[derive(Debug)]
pub enum Machine {
    /// StrandWeaver (full design: persist queue + strand buffer unit).
    StrandWeaver(SimMachine<StrandWeaver>),
    /// Intel x86 baseline (CLWB + SFENCE through the flush engine).
    IntelX86(SimMachine<Intel>),
    /// HOPS (per-core persist buffer with ofence/dfence).
    Hops(SimMachine<Hops>),
    /// StrandWeaver without a persist queue (persist ops ride the store
    /// queue).
    NoPersistQueue(SimMachine<NoPersistQueue>),
    /// Non-atomic strands (no intra-strand ordering enforcement).
    NonAtomic(SimMachine<NonAtomic>),
    /// Battery-backed caches (eADR): persists at coherence visibility.
    Eadr(SimMachine<Eadr>),
}

/// Forwards `$body` to the active variant's [`SimMachine`].
macro_rules! for_each_machine {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            Machine::StrandWeaver($m) => $body,
            Machine::IntelX86($m) => $body,
            Machine::Hops($m) => $body,
            Machine::NoPersistQueue($m) => $body,
            Machine::NonAtomic($m) => $body,
            Machine::Eadr($m) => $body,
        }
    };
}

impl Machine {
    /// Builds a machine for `design` and one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if more traces than configured cores are supplied.
    pub fn new(cfg: SimConfig, design: HwDesign, layout: PmLayout, traces: Vec<IsaTrace>) -> Self {
        match design {
            HwDesign::StrandWeaver => Machine::StrandWeaver(SimMachine::new(cfg, layout, traces)),
            HwDesign::IntelX86 => Machine::IntelX86(SimMachine::new(cfg, layout, traces)),
            HwDesign::Hops => Machine::Hops(SimMachine::new(cfg, layout, traces)),
            HwDesign::NoPersistQueue => {
                Machine::NoPersistQueue(SimMachine::new(cfg, layout, traces))
            }
            HwDesign::NonAtomic => Machine::NonAtomic(SimMachine::new(cfg, layout, traces)),
            HwDesign::Eadr => Machine::Eadr(SimMachine::new(cfg, layout, traces)),
        }
    }

    /// The design this machine simulates.
    pub fn design(&self) -> HwDesign {
        for_each_machine!(self, m => m.design())
    }

    /// Attaches a trace sink; see [`SimMachine::set_trace_sink`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        for_each_machine!(self, m => m.set_trace_sink(sink))
    }

    /// Enables the metrics registry; see [`SimMachine::enable_metrics`].
    pub fn enable_metrics(&mut self) {
        for_each_machine!(self, m => m.enable_metrics())
    }

    /// Installs a self-profiler; see [`SimMachine::enable_profiler`].
    pub fn enable_profiler(&mut self) {
        for_each_machine!(self, m => m.enable_profiler())
    }

    /// Preloads lines into the shared L2; see [`SimMachine::preload_l2`].
    pub fn preload_l2<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) {
        for_each_machine!(self, m => m.preload_l2(lines))
    }

    /// Runs to completion and returns the statistics; see
    /// [`SimMachine::run`].
    pub fn run(self) -> SimStats {
        for_each_machine!(self, m => m.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::engine_for;
    use sw_model::isa::IsaOp;
    use sw_pmem::Addr;

    fn layout() -> PmLayout {
        PmLayout::new(2, 64)
    }

    fn cfg(cores: usize) -> SimConfig {
        SimConfig::table_i().with_cores(cores)
    }

    fn run(design: HwDesign, traces: Vec<IsaTrace>) -> SimStats {
        let n = traces.len();
        Machine::new(cfg(n), design, layout(), traces).run()
    }

    fn heap(k: u64) -> Addr {
        layout().heap_base().offset_words(8 * k)
    }

    /// `n` log/update pairs lowered the way `sw-lang` lowers them for each
    /// design (straight from the design's `DesignLowering` table), with
    /// distinct log and data lines per pair.
    fn pair_trace(design: HwDesign, n: u64) -> IsaTrace {
        let low = design.lowering();
        let mut t = Vec::new();
        for k in 0..n {
            let log = heap(1000 + 8 * k);
            let data = heap(8 * k);
            t.push(IsaOp::Store(log));
            t.push(IsaOp::Clwb(log));
            if let Some(f) = low.pairwise {
                t.push(IsaOp::Fence(f));
            }
            t.push(IsaOp::Store(data));
            t.push(IsaOp::Clwb(data));
            if let Some(f) = low.after_update {
                t.push(IsaOp::Fence(f));
            }
        }
        if let Some(f) = low.drain {
            t.push(IsaOp::Fence(f));
        }
        t
    }

    #[test]
    fn empty_machine_finishes() {
        let stats = run(HwDesign::StrandWeaver, vec![vec![]]);
        assert_eq!(stats.cores[0].ops, 0);
    }

    #[test]
    fn compute_trace_takes_expected_cycles() {
        let stats = run(HwDesign::StrandWeaver, vec![vec![IsaOp::Compute(100)]]);
        assert!(
            stats.cycles >= 100 && stats.cycles < 110,
            "cycles = {}",
            stats.cycles
        );
    }

    #[test]
    fn single_persist_completes_after_controller_ack() {
        let a = heap(0);
        let t = vec![
            IsaOp::Store(a),
            IsaOp::Clwb(a),
            IsaOp::Fence(FenceKind::JoinStrand),
        ];
        let stats = run(HwDesign::StrandWeaver, vec![t]);
        assert_eq!(stats.total_clwbs(), 1);
        assert!(
            stats.cycles >= SimConfig::table_i().pm_write_ack_cycles,
            "JoinStrand must wait out the controller acknowledgement; cycles = {}",
            stats.cycles
        );
    }

    #[test]
    fn sfence_stalls_until_flush_completes() {
        let a = heap(0);
        let b = heap(8);
        let t = vec![
            IsaOp::Store(a),
            IsaOp::Clwb(a),
            IsaOp::Fence(FenceKind::Sfence),
            IsaOp::Store(b),
            IsaOp::Clwb(b),
            IsaOp::Fence(FenceKind::Sfence),
        ];
        let stats = run(HwDesign::IntelX86, vec![t]);
        assert!(stats.cycles >= 2 * SimConfig::table_i().pm_write_ack_cycles);
        assert!(stats.cores[0].stall_fence > 100);
    }

    #[test]
    fn figure4_running_example() {
        // CLWB(A); PB; CLWB(B); NS; CLWB(C); JS; CLWB(D) — C drains
        // concurrently with A; B waits for A; D waits for all.
        let (a, b, c, d) = (heap(0), heap(8), heap(16), heap(24));
        let mut t = Vec::new();
        for &x in &[a, b, c, d] {
            t.push(IsaOp::Store(x));
        }
        t.extend([
            IsaOp::Clwb(a),
            IsaOp::Fence(FenceKind::PersistBarrier),
            IsaOp::Clwb(b),
            IsaOp::Fence(FenceKind::NewStrand),
            IsaOp::Clwb(c),
            IsaOp::Fence(FenceKind::JoinStrand),
            IsaOp::Clwb(d),
            IsaOp::Fence(FenceKind::JoinStrand),
        ]);
        let stats = run(HwDesign::StrandWeaver, vec![t]);
        assert_eq!(stats.total_clwbs(), 4);
        // A and C overlap; B is serialized after A; D after everything:
        // roughly 3 acks of latency, definitely less than 4 serial acks.
        let ack = SimConfig::table_i().pm_write_ack_cycles;
        assert!(stats.cycles >= 3 * ack, "cycles = {}", stats.cycles);
        assert!(stats.cycles < 4 * ack + 200, "cycles = {}", stats.cycles);
    }

    #[test]
    fn design_performance_ordering_on_pair_workload() {
        let n = 64;
        let cycles: Vec<(HwDesign, u64)> = HwDesign::ALL
            .iter()
            .map(|&d| (d, run(d, vec![pair_trace(d, n)]).cycles))
            .collect();
        let get = |d: HwDesign| cycles.iter().find(|(x, _)| *x == d).expect("present").1;
        let intel = get(HwDesign::IntelX86);
        let hops = get(HwDesign::Hops);
        let nopq = get(HwDesign::NoPersistQueue);
        let sw = get(HwDesign::StrandWeaver);
        let non_atomic = get(HwDesign::NonAtomic);
        let eadr = get(HwDesign::Eadr);
        assert!(sw < hops, "strands beat epochs: sw={sw} hops={hops}");
        assert!(
            hops < intel,
            "delegated ordering beats core stalls: hops={hops} intel={intel}"
        );
        assert!(
            non_atomic <= sw,
            "no ordering is the lower bound: na={non_atomic} sw={sw}"
        );
        assert!(
            nopq <= intel,
            "intermediate design still beats intel: nopq={nopq}"
        );
        assert!(
            eadr <= non_atomic,
            "free durability beats buffered flushes: eadr={eadr} na={non_atomic}"
        );
        // On this store-light microtrace the persist queue's advantage over
        // the store-queue path is marginal (it shows up under store-heavy
        // workloads — see the bench harness); allow a small tolerance.
        assert!(sw <= nopq + nopq / 50, "sw={sw} nopq={nopq}");
    }

    #[test]
    fn strandweaver_outperformance_is_substantial() {
        let n = 64;
        let intel = run(HwDesign::IntelX86, vec![pair_trace(HwDesign::IntelX86, n)]).cycles;
        let sw = run(
            HwDesign::StrandWeaver,
            vec![pair_trace(HwDesign::StrandWeaver, n)],
        )
        .cycles;
        let speedup = intel as f64 / sw as f64;
        assert!(
            speedup > 1.2,
            "expected a material speedup, got {speedup:.2}x"
        );
    }

    #[test]
    fn eadr_persist_order_is_store_visibility_order() {
        let (a, b, c) = (heap(0), heap(8), heap(16));
        let t = vec![
            IsaOp::Store(a),
            IsaOp::Clwb(a), // architectural no-op
            IsaOp::Store(b),
            IsaOp::Clwb(b),
            IsaOp::Store(c),
            IsaOp::Fence(FenceKind::JoinStrand), // degenerates to a SQ drain
        ];
        let stats = run(HwDesign::Eadr, vec![t]);
        assert_eq!(
            stats.pm_write_order,
            vec![a.line(), b.line(), c.line()],
            "persist order is the store visibility order"
        );
        assert_eq!(stats.total_clwbs(), 2, "CLWBs still count as issued");
        assert_eq!(stats.cores[0].stall_pq_full, 0, "no persist structure");
    }

    #[test]
    fn eadr_emits_persist_visible_events() {
        use sw_trace::RingRecorder;
        let t = pair_trace(HwDesign::Eadr, 8);
        let mut m = Machine::new(cfg(1), HwDesign::Eadr, layout(), vec![t]);
        let rec = RingRecorder::new(1 << 16);
        m.set_trace_sink(Box::new(rec.clone()));
        let stats = m.run();
        let visible = rec
            .events()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::PersistVisible { .. }))
            .count();
        assert_eq!(
            visible,
            stats.pm_write_order.len(),
            "one PersistVisible per recorded persist"
        );
        assert_eq!(visible, 16, "8 pairs, two persistent stores each");
    }

    #[test]
    fn lock_contention_serializes() {
        let mk = || {
            vec![
                IsaOp::Lock(LockId(0)),
                IsaOp::Compute(500),
                IsaOp::Unlock(LockId(0)),
            ]
        };
        let stats = run(HwDesign::StrandWeaver, vec![mk(), mk()]);
        assert!(
            stats.cycles >= 1000,
            "critical sections serialized; cycles = {}",
            stats.cycles
        );
        assert!(stats.lock_stall_cycles() >= 400);
    }

    #[test]
    fn uncontended_locks_are_cheap() {
        let t = vec![IsaOp::Lock(LockId(1)), IsaOp::Unlock(LockId(1))];
        let stats = run(HwDesign::StrandWeaver, vec![t]);
        assert!(stats.cycles < 20);
        assert_eq!(stats.lock_stall_cycles(), 0);
    }

    #[test]
    fn cross_core_conflicts_run_to_completion() {
        // Two cores hammer the same lines with stores and CLWBs under
        // strand primitives: exercises steals, snoop waits, and the
        // deadlock-freedom argument.
        let mk = |seed: u64| {
            let mut t = Vec::new();
            for k in 0..40u64 {
                let x = heap((seed + k) % 8);
                t.push(IsaOp::Store(x));
                t.push(IsaOp::Clwb(x));
                t.push(IsaOp::Fence(FenceKind::PersistBarrier));
                if k % 4 == 0 {
                    t.push(IsaOp::Fence(FenceKind::NewStrand));
                }
            }
            t.push(IsaOp::Fence(FenceKind::JoinStrand));
            t
        };
        let stats = run(HwDesign::StrandWeaver, vec![mk(0), mk(3)]);
        assert_eq!(stats.total_clwbs(), 80);
    }

    #[test]
    fn hops_ofence_does_not_stall_core() {
        let a = heap(0);
        let t = vec![
            IsaOp::Store(a),
            IsaOp::Clwb(a),
            IsaOp::Fence(FenceKind::Ofence),
            IsaOp::Compute(10),
        ];
        let stats = run(HwDesign::Hops, vec![t]);
        assert_eq!(stats.cores[0].stall_fence, 0, "ofence is lightweight");
    }

    #[test]
    fn pm_loads_pay_device_latency() {
        let a = heap(0);
        let stats = run(HwDesign::StrandWeaver, vec![vec![IsaOp::Load(a)]]);
        assert!(
            stats.cycles >= SimConfig::table_i().pm_read_cycles,
            "cold PM load: cycles = {}",
            stats.cycles
        );
        let warm = run(
            HwDesign::StrandWeaver,
            vec![vec![IsaOp::Load(a), IsaOp::Load(a), IsaOp::Load(a)]],
        );
        // Second and third loads hit L1.
        assert!(warm.cycles < stats.cycles + 20);
    }

    #[test]
    fn volatile_accesses_use_dram() {
        let v = layout().volatile_region().base;
        let stats = run(HwDesign::StrandWeaver, vec![vec![IsaOp::Load(v)]]);
        let t = SimConfig::table_i();
        assert!(stats.cycles >= t.dram_cycles && stats.cycles < t.pm_read_cycles);
    }

    #[test]
    fn store_queue_backpressure_counts_stalls() {
        // More stores than SQ entries to lines that miss: the SQ fills.
        let mut t = Vec::new();
        for k in 0..200u64 {
            t.push(IsaOp::Store(heap(8 * k)));
        }
        let stats = run(HwDesign::StrandWeaver, vec![t]);
        assert!(stats.cores[0].stall_sq_full > 0);
    }

    #[test]
    fn stall_breakdown_bounded_by_done_cycle() {
        // A core records at most one stall cause per cycle, so the four
        // counters can never sum past the cycle it finished at.
        for &design in &HwDesign::ALL {
            let traces = vec![pair_trace(design, 48), pair_trace(design, 48)];
            let stats = Machine::new(cfg(2), design, layout(), traces).run();
            for (i, c) in stats.cores.iter().enumerate() {
                let stalls = c.stall_fence
                    + c.stall_sq_full
                    + c.stall_pq_full
                    + c.stall_lock
                    + c.stall_pm_wq_full
                    + c.stall_retry_wait;
                let done = c.done_cycle;
                assert!(
                    stalls <= done,
                    "{design:?} core{i}: stalls {stalls} > done_cycle {done}"
                );
            }
        }
    }

    #[test]
    fn stall_causes_outside_the_engine_set_stay_zero() {
        for &design in &HwDesign::ALL {
            let stats = run(design, vec![pair_trace(design, 48)]);
            let allowed = engine_for(design).stall_causes();
            for cause in StallCause::ALL {
                if !allowed.contains(&cause) {
                    assert_eq!(
                        stats.cores[0].stall_cycles(cause),
                        0,
                        "{design:?} must never stall on {cause:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stall_counters_report_explicit_zeros() {
        // Satellite of the engine refactor: causes a design can never
        // produce still appear in the metrics snapshot, as zeros, instead
        // of being silently absent.
        let mut m = Machine::new(
            cfg(1),
            HwDesign::Eadr,
            layout(),
            vec![pair_trace(HwDesign::Eadr, 8)],
        );
        m.enable_metrics();
        let stats = m.run();
        for cause in StallCause::ALL {
            let name = format!("stalls.{}", cause.label());
            assert!(
                stats.metrics.counter(&name).is_some(),
                "{name} must be registered even if unused"
            );
        }
        assert_eq!(
            stats.metrics.counter("stalls.pq_full"),
            Some(0),
            "eADR has no persist queue"
        );
        assert_eq!(
            stats.metrics.counter("pm.persists_visible"),
            Some(stats.pm_write_order.len() as u64)
        );
    }

    #[test]
    fn metrics_snapshot_matches_run_stats() {
        let mut m = Machine::new(
            cfg(1),
            HwDesign::StrandWeaver,
            layout(),
            vec![pair_trace(HwDesign::StrandWeaver, 16)],
        );
        m.enable_metrics();
        let stats = m.run();
        assert_eq!(
            stats.metrics.counter("pm.writes_accepted"),
            Some(stats.pm_write_order.len() as u64),
            "every controller accept must be counted"
        );
        assert!(stats.metrics.gauge("core0.pq_depth").is_some());
        let h = stats.metrics.histogram("pq.depth").expect("registered");
        assert!(h.count > 0, "persist-queue traffic must be sampled");
    }

    #[test]
    fn disabled_machine_records_no_metrics() {
        let stats = run(
            HwDesign::StrandWeaver,
            vec![pair_trace(HwDesign::StrandWeaver, 4)],
        );
        assert!(stats.metrics.is_empty());
    }

    #[test]
    fn perfetto_round_trip_matches_recorder() {
        use sw_trace::{Json, RingRecorder, TraceEvent};
        let traces = vec![
            pair_trace(HwDesign::StrandWeaver, 32),
            pair_trace(HwDesign::StrandWeaver, 32),
        ];
        let mut m = Machine::new(cfg(2), HwDesign::StrandWeaver, layout(), traces);
        let rec = RingRecorder::new(1 << 20);
        m.set_trace_sink(Box::new(rec.clone()));
        let _ = m.run();
        assert_eq!(rec.dropped(), 0, "ring sized for the whole run");
        let events = rec.events();
        assert!(!events.is_empty());

        let doc = sw_trace::perfetto::chrome_trace(&events);
        let parsed = sw_trace::json::parse(&doc.render()).expect("exporter output is valid JSON");
        let arr = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");

        // Replay the exporter's per-event fan-out against the raw recording:
        // AdrAccept produces two trace objects (instant + counter), an
        // unmatched StallEnd produces none, everything else exactly one.
        let mut open = std::collections::HashSet::new();
        let mut expected = 0usize;
        for te in &events {
            expected += match te.event {
                TraceEvent::AdrAccept { .. } => 2,
                TraceEvent::StallBegin { core, cause } => {
                    open.insert((core, cause));
                    1
                }
                TraceEvent::StallEnd { core, cause } => usize::from(open.remove(&(core, cause))),
                _ => 1,
            };
        }
        expected += open.len(); // dangling closes (none: run() closes all)
        let non_meta = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .count();
        assert_eq!(non_meta, expected);
    }

    #[test]
    fn ckc_reflects_write_intensity() {
        let d = HwDesign::NonAtomic;
        let dense = run(d, vec![pair_trace(d, 64)]);
        let mut sparse_trace = pair_trace(d, 64);
        for _ in 0..64 {
            sparse_trace.push(IsaOp::Compute(500));
        }
        let sparse = run(d, vec![sparse_trace]);
        assert!(dense.ckc() > sparse.ckc());
    }

    fn profiled_run(design: HwDesign, traces: Vec<IsaTrace>) -> SimStats {
        let n = traces.len();
        let mut m = Machine::new(cfg(n), design, layout(), traces);
        m.enable_profiler();
        m.run()
    }

    #[test]
    fn profiled_phase_nanos_sum_to_at_most_wall_time() {
        let stats = profiled_run(
            HwDesign::StrandWeaver,
            vec![pair_trace(HwDesign::StrandWeaver, 32)],
        );
        let perf = stats.perf.expect("profiler installed");
        assert!(
            perf.phase_nanos_total() <= perf.wall_nanos,
            "laps are disjoint sub-intervals of the run: {} > {}",
            perf.phase_nanos_total(),
            perf.wall_nanos
        );
        // Every phase ran at least once per simulated cycle.
        for p in &perf.phases {
            assert!(p.calls > 0, "phase {} never crossed", p.phase);
        }
    }

    #[test]
    fn profiling_does_not_change_simulated_results() {
        for &design in &HwDesign::ALL {
            let plain = run(design, vec![pair_trace(design, 32)]);
            let profiled = profiled_run(design, vec![pair_trace(design, 32)]);
            assert_eq!(plain.cycles, profiled.cycles, "{design:?}");
            assert_eq!(plain.cores, profiled.cores, "{design:?}");
            assert_eq!(plain.pm_write_order, profiled.pm_write_order, "{design:?}");
            assert_eq!(plain.events, profiled.events, "{design:?}");
        }
    }

    #[test]
    fn event_counts_report_explicit_zeros_per_design() {
        let stats_of = |d: HwDesign| run(d, vec![pair_trace(d, 16)]);

        let sw = stats_of(HwDesign::StrandWeaver);
        assert!(sw.events.pq_events > 0, "StrandWeaver moves pq entries");
        assert!(
            sw.events.sb_enqueues > 0,
            "StrandWeaver fills strand buffers"
        );
        assert_eq!(sw.events.persists_visible, 0, "ADR design");

        let intel = stats_of(HwDesign::IntelX86);
        assert_eq!(intel.events.pq_events, 0, "no persist queue on Intel");
        assert_eq!(intel.events.sb_enqueues, 0, "no strand buffers on Intel");
        assert!(intel.events.pm_writes > 0);

        let eadr = stats_of(HwDesign::Eadr);
        assert_eq!(eadr.events.pq_events, 0);
        assert_eq!(eadr.events.sb_enqueues, 0);
        assert!(
            eadr.events.persists_visible > 0,
            "eADR persists at visibility"
        );

        for &d in &HwDesign::ALL {
            let s = stats_of(d);
            assert!(s.events.frontend_ops > 0, "{d:?} ran the trace");
            assert!(s.events.store_retires > 0, "{d:?} retired stores");
            assert!(s.events.total() >= s.events.frontend_ops);
        }
    }

    #[test]
    fn events_are_identical_with_and_without_observability() {
        let d = HwDesign::StrandWeaver;
        let plain = run(d, vec![pair_trace(d, 16)]);
        let mut m = Machine::new(cfg(1), d, layout(), vec![pair_trace(d, 16)]);
        m.enable_metrics();
        let observed = m.run();
        assert_eq!(plain.events, observed.events);
    }

    #[test]
    fn profiled_run_with_observability_exports_perf_counters_and_events() {
        use sw_trace::RingRecorder;
        let d = HwDesign::StrandWeaver;
        let mut m = Machine::new(cfg(1), d, layout(), vec![pair_trace(d, 8)]);
        m.enable_profiler();
        m.enable_metrics();
        let rec = RingRecorder::new(1 << 16);
        m.set_trace_sink(Box::new(rec.clone()));
        let stats = m.run();
        assert!(stats.metrics.counter("perf.engine.calls").unwrap_or(0) > 0);
        let perf_events = rec
            .events()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::PerfPhase { .. }))
            .count();
        assert_eq!(perf_events, sw_perf::Phase::ALL.len());
    }
}
